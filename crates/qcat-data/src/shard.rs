//! Horizontal sharding of a frozen relation.
//!
//! Columns stay physically contiguous; a [`ShardMap`] overlays them
//! with fixed-size row ranges. A shard of a contiguous column *is* the
//! slice `column[start..end]`, so the single-shard layout (the
//! default) is byte-for-byte the pre-shard layout — no accessor pays
//! anything when sharding is off.
//!
//! Sharding exists so the data plane can be driven as per-shard
//! morsels through `qcat-pool` (index build, scan/filter), and so
//! queries can *skip* shards outright via [`ShardSummaries`]: a
//! per-shard min/max for every numeric column and a code-presence
//! bitmap for every categorical column. Summaries are conservative —
//! they only ever prove "no row in this shard can match", never the
//! converse — so pruning can change how much work runs but never which
//! rows come back.

use crate::column::Column;

/// Fixed-size horizontal partitioning of `rows` rows.
///
/// Every shard spans `shard_rows` consecutive rows except the last,
/// which holds the remainder. An empty relation has exactly one empty
/// shard so shard index 0 is always valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shard_rows: usize,
    rows: usize,
}

impl ShardMap {
    /// One shard covering all `rows` — the default layout.
    pub fn single(rows: usize) -> ShardMap {
        ShardMap {
            shard_rows: rows.max(1),
            rows,
        }
    }

    /// `rows` rows split into shards of `shard_rows`. A `shard_rows`
    /// of 0 means "unsharded" and collapses to [`ShardMap::single`].
    pub fn new(shard_rows: usize, rows: usize) -> ShardMap {
        if shard_rows == 0 {
            return ShardMap::single(rows);
        }
        ShardMap { shard_rows, rows }
    }

    /// Rows per shard (the last shard may hold fewer).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Total rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shards (≥ 1; an empty relation has one empty shard).
    pub fn shard_count(&self) -> usize {
        if self.rows == 0 {
            1
        } else {
            self.rows.div_ceil(self.shard_rows)
        }
    }

    /// True when the map is a single shard — the fast path everywhere.
    pub fn is_single(&self) -> bool {
        self.shard_count() == 1
    }

    /// Half-open row range `[start, end)` of shard `shard`.
    ///
    /// Out-of-range shard indices yield an empty range at the end of
    /// the relation rather than panicking.
    pub fn bounds(&self, shard: usize) -> (usize, usize) {
        let start = (shard * self.shard_rows).min(self.rows);
        let end = (start + self.shard_rows).min(self.rows);
        (start, end)
    }
}

/// Per-shard, per-attribute pruning summary.
#[derive(Debug, Clone)]
enum AttrSummary {
    /// Closed numeric bounds of the shard's values.
    Numeric {
        /// Smallest value in the shard.
        min: f64,
        /// Largest value in the shard.
        max: f64,
    },
    /// Dictionary-code presence bitmap (bit `c` set ⇔ some row of the
    /// shard holds code `c`).
    Codes(Vec<u64>),
    /// The shard holds no rows: nothing can match.
    Empty,
}

/// Pruning summaries for every (shard, attribute) pair.
///
/// Built in one pass over the columns at freeze time for sharded
/// relations. All queries are value-level — the SQL layer owns the
/// decision logic, this type only answers "could a row with this
/// code / in this interval exist in shard `s`?".
#[derive(Debug, Clone)]
pub struct ShardSummaries {
    /// `per_shard[s][a]` summarizes attribute `a` within shard `s`.
    per_shard: Vec<Vec<AttrSummary>>,
}

impl ShardSummaries {
    /// Summarize every column of every shard of `map`.
    pub fn build(columns: &[Column], map: &ShardMap) -> ShardSummaries {
        let per_shard = (0..map.shard_count())
            .map(|s| {
                let (start, end) = map.bounds(s);
                columns
                    .iter()
                    .map(|col| summarize(col, start, end))
                    .collect()
            })
            .collect();
        ShardSummaries { per_shard }
    }

    /// Summarize rows `[start, end)` of `columns` as one synthetic
    /// shard — the per-column min/max/code-presence digest of an
    /// append delta. Query it through the usual conservative accessors
    /// with `shard = 0`: "could any appended row match?".
    pub fn build_range(columns: &[Column], start: usize, end: usize) -> ShardSummaries {
        ShardSummaries {
            per_shard: vec![columns
                .iter()
                .map(|col| summarize(col, start, end))
                .collect()],
        }
    }

    /// Summaries for `map` after an append: shards below `first_dirty`
    /// carry over verbatim (their rows did not change — a carried code
    /// bitmap stays conservative under dictionary growth because
    /// [`ShardSummaries::may_have_code`] reads absent high words as
    /// "absent"), the rest are summarized fresh from `columns`.
    pub(crate) fn extended(
        &self,
        columns: &[Column],
        map: &ShardMap,
        first_dirty: usize,
    ) -> ShardSummaries {
        let per_shard = (0..map.shard_count())
            .map(|s| {
                if s < first_dirty {
                    if let Some(existing) = self.per_shard.get(s) {
                        return existing.clone();
                    }
                }
                let (start, end) = map.bounds(s);
                columns
                    .iter()
                    .map(|col| summarize(col, start, end))
                    .collect()
            })
            .collect();
        ShardSummaries { per_shard }
    }

    /// Number of shards summarized.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Closed `[min, max]` of a numeric attribute within a shard;
    /// `None` for categorical attributes, empty shards, or
    /// out-of-range indices (callers must treat `None` as "cannot
    /// prune" unless the shard is provably empty).
    pub fn numeric_bounds(&self, shard: usize, attr: usize) -> Option<(f64, f64)> {
        match self.per_shard.get(shard)?.get(attr)? {
            AttrSummary::Numeric { min, max } => Some((*min, *max)),
            _ => None,
        }
    }

    /// Could a row of `shard` hold dictionary code `code` on `attr`?
    ///
    /// Conservative: `true` whenever the summary cannot prove absence
    /// (numeric attribute, out-of-range indices). Empty shards prove
    /// absence of everything.
    pub fn may_have_code(&self, shard: usize, attr: usize, code: u32) -> bool {
        match self.per_shard.get(shard).and_then(|s| s.get(attr)) {
            Some(AttrSummary::Codes(words)) => {
                let (w, b) = (code as usize / 64, code as usize % 64);
                words.get(w).is_some_and(|word| word & (1 << b) != 0)
            }
            Some(AttrSummary::Empty) => false,
            _ => true,
        }
    }

    /// Could a row of `shard` hold *any* of `codes` on `attr`?
    pub fn may_have_any_code(&self, shard: usize, attr: usize, codes: &[u32]) -> bool {
        codes.iter().any(|&c| self.may_have_code(shard, attr, c))
    }

    /// Could a row of `shard` fall inside the interval described by
    /// `(lo, lo_inclusive, hi, hi_inclusive)` on numeric `attr`?
    ///
    /// Conservative: `true` when no numeric bounds are known, unless
    /// the shard is provably empty.
    pub fn may_overlap_range(
        &self,
        shard: usize,
        attr: usize,
        lo: f64,
        lo_inclusive: bool,
        hi: f64,
        hi_inclusive: bool,
    ) -> bool {
        match self.per_shard.get(shard).and_then(|s| s.get(attr)) {
            Some(AttrSummary::Numeric { min, max }) => {
                let below = hi < *min || (hi == *min && !hi_inclusive);
                let above = lo > *max || (lo == *max && !lo_inclusive);
                !(below || above)
            }
            Some(AttrSummary::Empty) => false,
            _ => true,
        }
    }

    /// Could a row of `shard` hold any of `values` exactly on numeric
    /// `attr`? Conservative like [`ShardSummaries::may_overlap_range`].
    pub fn may_have_value(&self, shard: usize, attr: usize, values: &[f64]) -> bool {
        match self.per_shard.get(shard).and_then(|s| s.get(attr)) {
            Some(AttrSummary::Numeric { min, max }) => {
                values.iter().any(|v| *min <= *v && *v <= *max)
            }
            Some(AttrSummary::Empty) => false,
            _ => true,
        }
    }

    /// Heap bytes held by the summaries.
    pub fn heap_bytes(&self) -> usize {
        self.per_shard
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|s| match s {
                AttrSummary::Codes(words) => words.len() * std::mem::size_of::<u64>(),
                _ => std::mem::size_of::<AttrSummary>(),
            })
            .sum()
    }
}

/// Summarize one column over rows `[start, end)`.
fn summarize(col: &Column, start: usize, end: usize) -> AttrSummary {
    if start >= end {
        return AttrSummary::Empty;
    }
    match col {
        Column::Categorical { dict, codes } => {
            let mut words = vec![0u64; dict.len().div_ceil(64)];
            for &c in &codes[start..end] {
                words[c as usize / 64] |= 1 << (c as usize % 64);
            }
            AttrSummary::Codes(words)
        }
        Column::Int(v) => {
            let slice = &v[start..end];
            let (mut min, mut max) = (slice[0], slice[0]);
            for &x in &slice[1..] {
                min = min.min(x);
                max = max.max(x);
            }
            AttrSummary::Numeric {
                min: min as f64,
                max: max as f64,
            }
        }
        Column::Float(v) => {
            let slice = &v[start..end];
            let (mut min, mut max) = (slice[0], slice[0]);
            for &x in &slice[1..] {
                if x < min {
                    min = x;
                }
                if x > max {
                    max = x;
                }
            }
            AttrSummary::Numeric { min, max }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::types::AttrType;

    #[test]
    fn single_map_is_one_shard() {
        let m = ShardMap::single(100);
        assert_eq!(m.shard_count(), 1);
        assert!(m.is_single());
        assert_eq!(m.bounds(0), (0, 100));
        assert_eq!(m.bounds(1), (100, 100));
    }

    #[test]
    fn zero_shard_rows_collapses_to_single() {
        let m = ShardMap::new(0, 50);
        assert!(m.is_single());
        assert_eq!(m.bounds(0), (0, 50));
    }

    #[test]
    fn exact_division() {
        let m = ShardMap::new(10, 30);
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.bounds(0), (0, 10));
        assert_eq!(m.bounds(2), (20, 30));
        assert_eq!(m.bounds(3), (30, 30));
    }

    #[test]
    fn remainder_shard() {
        let m = ShardMap::new(10, 31);
        assert_eq!(m.shard_count(), 4);
        assert_eq!(m.bounds(3), (30, 31), "last shard holds 1 row");
    }

    #[test]
    fn empty_relation_has_one_empty_shard() {
        let m = ShardMap::new(10, 0);
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.bounds(0), (0, 0));
        assert_eq!(ShardMap::single(0).shard_count(), 1);
    }

    fn cat(vals: &[&str]) -> Column {
        let mut b = ColumnBuilder::with_capacity(AttrType::Categorical, vals.len());
        for v in vals {
            b.push_str(v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn summaries_prune_codes_and_ranges() {
        let cols = vec![
            cat(&["a", "a", "b", "c", "c", "c"]),
            Column::Int(vec![1, 2, 3, 10, 11, 12]),
        ];
        let map = ShardMap::new(3, 6);
        let s = ShardSummaries::build(&cols, &map);
        assert_eq!(s.shard_count(), 2);
        // Codes: shard 0 holds {a=0, b=1}, shard 1 holds {c=2}.
        assert!(s.may_have_code(0, 0, 0));
        assert!(s.may_have_code(0, 0, 1));
        assert!(!s.may_have_code(0, 0, 2));
        assert!(!s.may_have_code(1, 0, 0));
        assert!(s.may_have_any_code(1, 0, &[0, 2]));
        assert!(!s.may_have_any_code(1, 0, &[0, 1]));
        // Numeric bounds: shard 0 = [1,3], shard 1 = [10,12].
        assert_eq!(s.numeric_bounds(0, 1), Some((1.0, 3.0)));
        assert_eq!(s.numeric_bounds(1, 1), Some((10.0, 12.0)));
        assert!(s.may_overlap_range(0, 1, 2.0, true, 100.0, true));
        assert!(!s.may_overlap_range(0, 1, 4.0, true, 9.0, true));
        assert!(s.may_have_value(1, 1, &[11.0]));
        assert!(!s.may_have_value(1, 1, &[1.0, 9.5]));
        // Categorical attr has no numeric bounds; numeric attr cannot
        // prove code absence — both stay conservative.
        assert_eq!(s.numeric_bounds(0, 0), None);
        assert!(s.may_overlap_range(0, 0, 0.0, true, 0.0, true));
        assert!(s.may_have_code(0, 1, 7));
        assert!(s.heap_bytes() > 0);
    }

    #[test]
    fn range_boundary_exclusivity() {
        let cols = vec![Column::Float(vec![5.0, 7.0])];
        let s = ShardSummaries::build(&cols, &ShardMap::single(2));
        // Interval touching max only at an exclusive endpoint prunes.
        assert!(!s.may_overlap_range(0, 0, 7.0, false, 9.0, true));
        assert!(s.may_overlap_range(0, 0, 7.0, true, 9.0, true));
        assert!(!s.may_overlap_range(0, 0, 1.0, true, 5.0, false));
        assert!(s.may_overlap_range(0, 0, 1.0, true, 5.0, true));
    }

    #[test]
    fn empty_shard_prunes_everything() {
        let cols = vec![cat(&[]), Column::Int(vec![])];
        let s = ShardSummaries::build(&cols, &ShardMap::single(0));
        assert!(!s.may_have_code(0, 0, 0));
        assert!(!s.may_overlap_range(0, 1, f64::NEG_INFINITY, true, f64::INFINITY, true));
        assert!(!s.may_have_value(0, 1, &[0.0]));
    }

    #[test]
    fn out_of_range_lookups_stay_conservative() {
        let cols = vec![Column::Int(vec![1])];
        let s = ShardSummaries::build(&cols, &ShardMap::single(1));
        assert!(s.may_have_code(5, 0, 0), "unknown shard: cannot prune");
        assert!(s.may_overlap_range(0, 9, 0.0, true, 0.0, true));
        assert_eq!(s.numeric_bounds(9, 0), None);
    }
}
