//! Per-column string interning.

use std::collections::HashMap;
use std::sync::Arc;

/// An append-only string dictionary mapping categorical values to dense
/// `u32` codes.
///
/// Codes are assigned in first-seen order and are stable for the life
/// of the dictionary. All categorical set logic in the categorizer
/// (IN-clause overlap, single-value categories) works on codes; strings
/// are only touched when rendering labels.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    codes: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its code (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.codes.get(s) {
            return code;
        }
        let arc: Arc<str> = Arc::from(s);
        let code = self.values.len() as u32;
        self.values.push(arc.clone());
        self.codes.insert(arc, code);
        code
    }

    /// Code for `s` if already interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// The string for `code`, if in range.
    pub fn value(&self, code: u32) -> Option<&Arc<str>> {
        self.values.get(code as usize)
    }

    /// The string for `code`; panics on an out-of-range code (codes
    /// produced by this dictionary are always in range).
    pub fn value_unchecked(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in code order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Bellevue");
        let b = d.intern("Redmond");
        assert_eq!(d.intern("Bellevue"), a);
        assert_eq!(d.intern("Redmond"), b);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn codes_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for (i, s) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(d.intern(s), i as u32);
        }
    }

    #[test]
    fn lookup_and_value_roundtrip() {
        let mut d = Dictionary::new();
        let code = d.intern("Issaquah");
        assert_eq!(d.lookup("Issaquah"), Some(code));
        assert_eq!(d.lookup("Sammamish"), None);
        assert_eq!(d.value(code).unwrap().as_ref(), "Issaquah");
        assert_eq!(d.value(999), None);
        assert_eq!(d.value_unchecked(code), "Issaquah");
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.values().is_empty());
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Interning any sequence of strings round-trips: every string
            /// maps to a code whose stored value equals the string.
            #[test]
            fn prop_roundtrip(strings in proptest::collection::vec(".{0,12}", 0..64)) {
                let mut d = Dictionary::new();
                let codes: Vec<u32> = strings.iter().map(|s| d.intern(s)).collect();
                for (s, c) in strings.iter().zip(&codes) {
                    prop_assert_eq!(d.value_unchecked(*c), s.as_str());
                    prop_assert_eq!(d.lookup(s), Some(*c));
                }
                // Distinct strings get distinct codes.
                let uniq: std::collections::HashSet<_> = strings.iter().collect();
                prop_assert_eq!(d.len(), uniq.len());
            }
        }
    }
}
