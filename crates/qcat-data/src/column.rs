//! Typed columnar storage.
//!
//! Columns are non-nullable: the paper's evaluation dataset uses the
//! non-null attributes of the listing table, and categorization labels
//! partition the full domain, so the storage layer rejects nulls at
//! build time rather than threading validity bitmaps through every
//! partitioner.

use crate::dictionary::Dictionary;
use crate::error::DataError;
use crate::types::AttrType;
use crate::value::Value;

/// One column of a relation.
#[derive(Debug, Clone)]
pub enum Column {
    /// Dictionary-encoded strings.
    Categorical {
        /// Distinct values of the column.
        dict: Dictionary,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// Integer data.
    Int(Vec<i64>),
    /// Float data.
    Float(Vec<f64>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Declared type of the column.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Column::Categorical { .. } => AttrType::Categorical,
            Column::Int(_) => AttrType::Int,
            Column::Float(_) => AttrType::Float,
        }
    }

    /// Cell value at `row` (clones out of the dictionary cheaply).
    pub fn get(&self, row: usize) -> Option<Value> {
        match self {
            Column::Categorical { dict, codes } => codes
                .get(row)
                .and_then(|&c| dict.value(c))
                .map(|s| Value::Str(s.clone())),
            Column::Int(v) => v.get(row).map(|&i| Value::Int(i)),
            Column::Float(v) => v.get(row).map(|&x| Value::Float(x)),
        }
    }

    /// Numeric value at `row` (`Int` widens to `f64`); `None` for
    /// categorical columns or out-of-range rows.
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Categorical { .. } => None,
            Column::Int(v) => v.get(row).map(|&i| i as f64),
            Column::Float(v) => v.get(row).copied(),
        }
    }

    /// Dictionary code at `row` for categorical columns.
    #[inline]
    pub fn code_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Categorical { codes, .. } => codes.get(row).copied(),
            _ => None,
        }
    }

    /// Dictionary + codes view for categorical columns.
    pub fn categorical(&self) -> Option<(&Dictionary, &[u32])> {
        match self {
            Column::Categorical { dict, codes } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Integer slice view.
    pub fn ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Float slice view.
    pub fn floats(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Minimum and maximum numeric value over a set of rows.
    ///
    /// Returns `None` for categorical columns or an empty row set.
    pub fn numeric_min_max(&self, rows: &[u32]) -> Option<(f64, f64)> {
        let mut it = rows.iter().filter_map(|&r| self.numeric_at(r as usize));
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Number of distinct values over a set of rows.
    pub fn distinct_count(&self, rows: &[u32]) -> usize {
        match self {
            Column::Categorical { dict, codes } => {
                let mut seen = vec![false; dict.len()];
                let mut n = 0;
                for &r in rows {
                    let c = codes[r as usize] as usize;
                    if !seen[c] {
                        seen[c] = true;
                        n += 1;
                    }
                }
                n
            }
            Column::Int(v) => {
                let mut vals: Vec<i64> = rows.iter().map(|&r| v[r as usize]).collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            }
            Column::Float(v) => {
                let mut vals: Vec<f64> = rows.iter().map(|&r| v[r as usize]).collect();
                vals.sort_unstable_by(f64::total_cmp);
                vals.dedup_by(|a, b| a == b);
                vals.len()
            }
        }
    }
}

/// Incremental, type-checked column construction.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// Builds a [`Column::Categorical`].
    Categorical {
        /// Dictionary under construction.
        dict: Dictionary,
        /// Codes appended so far.
        codes: Vec<u32>,
    },
    /// Builds a [`Column::Int`].
    Int(Vec<i64>),
    /// Builds a [`Column::Float`].
    Float(Vec<f64>),
}

impl ColumnBuilder {
    /// Builder for the given type, pre-sized for `capacity` rows.
    pub fn with_capacity(ty: AttrType, capacity: usize) -> Self {
        match ty {
            AttrType::Categorical => ColumnBuilder::Categorical {
                dict: Dictionary::new(),
                codes: Vec::with_capacity(capacity),
            },
            AttrType::Int => ColumnBuilder::Int(Vec::with_capacity(capacity)),
            AttrType::Float => ColumnBuilder::Float(Vec::with_capacity(capacity)),
        }
    }

    /// Append one value, checking type compatibility.
    ///
    /// `Int` values are accepted into `Float` columns (widening);
    /// everything else must match exactly. Nulls are rejected — see the
    /// module docs.
    pub fn push(&mut self, attribute: &str, v: &Value) -> Result<(), DataError> {
        let mismatch = |expected: &'static str| DataError::TypeMismatch {
            attribute: attribute.to_string(),
            expected,
            actual: v.type_name(),
        };
        match self {
            ColumnBuilder::Categorical { dict, codes } => match v {
                Value::Str(s) => {
                    codes.push(dict.intern(s));
                    Ok(())
                }
                _ => Err(mismatch("categorical")),
            },
            ColumnBuilder::Int(out) => match v {
                Value::Int(i) => {
                    out.push(*i);
                    Ok(())
                }
                _ => Err(mismatch("int")),
            },
            ColumnBuilder::Float(out) => match v.as_f64() {
                Some(x) if !x.is_nan() => {
                    out.push(x);
                    Ok(())
                }
                Some(_) => Err(DataError::TypeMismatch {
                    attribute: attribute.to_string(),
                    expected: "float",
                    actual: "NaN (not storable: labels partition a totally ordered domain)",
                }),
                None => Err(mismatch("float")),
            },
        }
    }

    /// Typed fast path: append a string to a categorical builder.
    pub fn push_str(&mut self, s: &str) -> Result<(), DataError> {
        match self {
            ColumnBuilder::Categorical { dict, codes } => {
                codes.push(dict.intern(s));
                Ok(())
            }
            _ => Err(DataError::TypeMismatch {
                attribute: String::new(),
                expected: "categorical",
                actual: "string push on numeric column",
            }),
        }
    }

    /// Typed fast path: append an integer.
    pub fn push_i64(&mut self, v: i64) -> Result<(), DataError> {
        match self {
            ColumnBuilder::Int(out) => {
                out.push(v);
                Ok(())
            }
            ColumnBuilder::Float(out) => {
                out.push(v as f64);
                Ok(())
            }
            _ => Err(DataError::TypeMismatch {
                attribute: String::new(),
                expected: "numeric",
                actual: "int push on categorical column",
            }),
        }
    }

    /// Typed fast path: append a float (NaN rejected — numeric labels
    /// partition a totally ordered domain).
    pub fn push_f64(&mut self, v: f64) -> Result<(), DataError> {
        if v.is_nan() {
            return Err(DataError::TypeMismatch {
                attribute: String::new(),
                expected: "float",
                actual: "NaN",
            });
        }
        match self {
            ColumnBuilder::Float(out) => {
                out.push(v);
                Ok(())
            }
            _ => Err(DataError::TypeMismatch {
                attribute: String::new(),
                expected: "float",
                actual: "float push on non-float column",
            }),
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Categorical { codes, .. } => codes.len(),
            ColumnBuilder::Int(v) => v.len(),
            ColumnBuilder::Float(v) => v.len(),
        }
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish building.
    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::Categorical { dict, codes } => Column::Categorical { dict, codes },
            ColumnBuilder::Int(v) => Column::Int(v),
            ColumnBuilder::Float(v) => Column::Float(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_column(vals: &[&str]) -> Column {
        let mut b = ColumnBuilder::with_capacity(AttrType::Categorical, vals.len());
        for v in vals {
            b.push_str(v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn categorical_roundtrip() {
        let c = cat_column(&["a", "b", "a", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.attr_type(), AttrType::Categorical);
        assert_eq!(c.get(0), Some(Value::from("a")));
        assert_eq!(c.get(2), Some(Value::from("a")));
        assert_eq!(c.code_at(0), c.code_at(2));
        assert_ne!(c.code_at(0), c.code_at(1));
        assert_eq!(c.get(9), None);
        let (dict, codes) = c.categorical().unwrap();
        assert_eq!(dict.len(), 3);
        assert_eq!(codes.len(), 4);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut b = ColumnBuilder::with_capacity(AttrType::Float, 2);
        b.push("price", &Value::Int(200_000)).unwrap();
        b.push("price", &Value::Float(250_000.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.numeric_at(0), Some(200_000.0));
        assert_eq!(c.numeric_at(1), Some(250_000.5));
        assert_eq!(c.floats().unwrap().len(), 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBuilder::with_capacity(AttrType::Int, 1);
        let err = b.push("beds", &Value::from("three")).unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        let err = b.push("beds", &Value::Null).unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        let err = b.push("beds", &Value::Float(3.0)).unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
    }

    #[test]
    fn numeric_min_max_over_rows() {
        let c = Column::Int(vec![5, 1, 9, 3]);
        assert_eq!(c.numeric_min_max(&[0, 1, 2, 3]), Some((1.0, 9.0)));
        assert_eq!(c.numeric_min_max(&[2]), Some((9.0, 9.0)));
        assert_eq!(c.numeric_min_max(&[]), None);
        let cat = cat_column(&["a"]);
        assert_eq!(cat.numeric_min_max(&[0]), None);
    }

    #[test]
    fn distinct_counts() {
        let c = cat_column(&["a", "b", "a", "c", "b"]);
        assert_eq!(c.distinct_count(&[0, 1, 2, 3, 4]), 3);
        assert_eq!(c.distinct_count(&[0, 2]), 1);
        let i = Column::Int(vec![1, 1, 2, 3]);
        assert_eq!(i.distinct_count(&[0, 1, 2, 3]), 3);
        let f = Column::Float(vec![1.5, 1.5, 2.0]);
        assert_eq!(f.distinct_count(&[0, 1, 2]), 2);
    }

    #[test]
    fn nan_rejected() {
        let mut b = ColumnBuilder::with_capacity(AttrType::Float, 1);
        assert!(b.push("price", &Value::Float(f64::NAN)).is_err());
        assert!(b.push_f64(f64::NAN).is_err());
        assert!(b.push_f64(f64::INFINITY).is_ok(), "infinities are ordered");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn typed_push_fast_paths() {
        let mut b = ColumnBuilder::with_capacity(AttrType::Int, 2);
        b.push_i64(7).unwrap();
        assert!(b.push_f64(1.0).is_err());
        assert!(b.push_str("x").is_err());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        let c = b.finish();
        assert_eq!(c.ints().unwrap(), &[7]);
        assert!(c.floats().is_none());
        assert!(c.categorical().is_none());
    }
}
