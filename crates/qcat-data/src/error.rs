//! Error type shared by the data layer.

use std::fmt;

/// Errors raised while building or accessing relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was not present in the schema.
    UnknownAttribute(String),
    /// An attribute id was out of range for the schema.
    AttributeIdOutOfRange(usize),
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Attribute the value was destined for.
        attribute: String,
        /// Declared type of the column.
        expected: &'static str,
        /// Type of the offending value.
        actual: &'static str,
    },
    /// Two columns of the same relation had different lengths.
    ColumnLengthMismatch {
        /// Attribute whose length disagreed.
        attribute: String,
        /// Length of the first column.
        expected: usize,
        /// Length found.
        actual: usize,
    },
    /// A row index was past the end of the relation.
    RowOutOfRange {
        /// Requested row.
        row: usize,
        /// Number of rows in the relation.
        len: usize,
    },
    /// A duplicate attribute name appeared in a schema.
    DuplicateAttribute(String),
    /// A table name was not present in the catalog.
    UnknownTable(String),
    /// A table name was already present in the catalog.
    DuplicateTable(String),
    /// Malformed input while parsing external data (e.g. CSV).
    Malformed(String),
    /// A deterministic fault-injection point fired (`QCAT_FAULT`).
    Fault {
        /// The `qcat-fault` site that fired (e.g. `data.append`).
        site: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::AttributeIdOutOfRange(id) => {
                write!(f, "attribute id {id} out of range for schema")
            }
            DataError::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on `{attribute}`: expected {expected}, got {actual}"
            ),
            DataError::ColumnLengthMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "column `{attribute}` has {actual} rows but relation has {expected}"
            ),
            DataError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range for relation of {len} rows")
            }
            DataError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}` in schema")
            }
            DataError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DataError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DataError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            DataError::Fault { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::UnknownAttribute("price".into());
        assert_eq!(e.to_string(), "unknown attribute `price`");
        let e = DataError::TypeMismatch {
            attribute: "price".into(),
            expected: "float",
            actual: "string",
        };
        assert!(e.to_string().contains("price"));
        assert!(e.to_string().contains("float"));
        let e = DataError::RowOutOfRange { row: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DataError>();
    }
}
