//! Transactional append ingest with snapshot-isolated readers.
//!
//! [`IngestTable`] wraps a [`Relation`] behind a generation counter.
//! The protocol is shadow paging over the already-immutable relation:
//!
//! - **Readers** call [`IngestTable::pin`] once at query start and run
//!   the whole query against the pinned [`IngestSnapshot`]. The
//!   snapshot is two `Arc` clones — the relation handle and its
//!   generation — so a pin is cheap and never blocks behind an append
//!   for longer than the swap itself.
//! - **Writers** call [`IngestTable::append_rows`]. Appends serialize
//!   on one mutex; each builds a *new* relation via
//!   [`Relation::begin_append`] → [`TailAppend::commit`] and swaps it
//!   in together with `generation + 1` as a single assignment.
//!
//! Atomicity falls out of immutability: the visible relation is never
//! mutated, so a half-applied batch is unrepresentable. A mid-batch
//! failure (type error, or the `data.append` / `data.index.delta`
//! fault sites) returns before the swap, leaving the visible state —
//! and every pinned snapshot — byte-identical to pre-batch. There is
//! nothing to roll back.

use crate::error::DataError;
use crate::relation::{AppendCommit, Relation};
use crate::value::Value;
use std::sync::{Mutex, MutexGuard};

/// A pinned view of an ingest table: one relation at one generation.
///
/// Everything a query touches (rows, indexes, summaries) hangs off the
/// snapshot's relation handle, so a reader holding a snapshot is fully
/// isolated from later commits.
#[derive(Debug, Clone)]
pub struct IngestSnapshot {
    relation: Relation,
    generation: u64,
}

impl IngestSnapshot {
    /// The pinned relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The generation at which this snapshot was taken. Generation 0
    /// is the initial relation; each committed batch adds one.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A receipt for one committed batch: the new snapshot plus the
/// change digest callers need for selective cache invalidation.
#[derive(Debug)]
pub struct AppendReceipt {
    /// The table state after the commit (relation + generation).
    pub snapshot: IngestSnapshot,
    /// What the batch changed; see [`AppendCommit`].
    pub commit: AppendCommit,
}

/// A relation that takes transactional appends while being read.
#[derive(Debug)]
pub struct IngestTable {
    state: Mutex<IngestSnapshot>,
}

/// Take the lock, recovering a poisoned mutex. Safe here because the
/// guarded snapshot is only ever replaced by whole-value assignment
/// *after* a batch fully commits — a panic mid-append (e.g. an
/// injected `panic` fault inside [`TailAppend::commit`]) poisons the
/// lock while the snapshot still holds consistent pre-batch state.
///
/// [`TailAppend::commit`]: crate::relation::TailAppend::commit
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl IngestTable {
    /// Wrap `relation` as generation 0.
    pub fn new(relation: Relation) -> IngestTable {
        IngestTable {
            state: Mutex::new(IngestSnapshot {
                relation,
                generation: 0,
            }),
        }
    }

    /// Pin the current snapshot. Queries resolve every read against
    /// the returned snapshot's relation, never the table, so a commit
    /// racing with the query cannot change what it sees.
    pub fn pin(&self) -> IngestSnapshot {
        lock_recover(&self.state).clone()
    }

    /// The current generation (equals `pin().generation()`).
    pub fn generation(&self) -> u64 {
        lock_recover(&self.state).generation
    }

    /// Append a batch of rows with all-or-nothing visibility.
    ///
    /// Appends serialize: the batch is staged and committed under the
    /// table lock, then swapped in with `generation + 1`. On any error
    /// — a row failing validation, or the `data.append` /
    /// `data.index.delta` fault sites firing — nothing becomes
    /// visible and the generation does not advance.
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<AppendReceipt, DataError> {
        let mut guard = lock_recover(&self.state);
        let mut tail = guard.relation.begin_append();
        for row in rows {
            tail.push_row(row)?;
        }
        let commit = tail.commit()?;
        let snapshot = IngestSnapshot {
            relation: commit.relation.clone(),
            generation: guard.generation + 1,
        };
        *guard = snapshot.clone();
        qcat_obs::counter("data.append.committed", 1);
        Ok(AppendReceipt { snapshot, commit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::types::{AttrId, AttrType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("city", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap()
    }

    fn seed(rows: usize) -> Relation {
        let mut b = RelationBuilder::with_capacity(schema(), rows);
        for i in 0..rows {
            b.push_row(&[
                if i % 2 == 0 { "redmond" } else { "seattle" }.into(),
                (1000.0 + i as f64).into(),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    fn row(city: &str, price: f64) -> Vec<Value> {
        vec![city.into(), price.into()]
    }

    #[test]
    fn commit_advances_generation_and_grows_rows() {
        let table = IngestTable::new(seed(4));
        assert_eq!(table.generation(), 0);
        let receipt = table
            .append_rows(&[row("kirkland", 5000.0), row("redmond", 6000.0)])
            .unwrap();
        assert_eq!(receipt.snapshot.generation(), 1);
        assert_eq!(receipt.snapshot.relation().len(), 6);
        assert_eq!(receipt.commit.first_row, 4);
        assert_eq!(receipt.commit.added, 2);
        assert_eq!(table.generation(), 1);
        assert_eq!(table.pin().relation().len(), 6);
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_later_commits() {
        let table = IngestTable::new(seed(3));
        let pinned = table.pin();
        table.append_rows(&[row("kirkland", 9.0)]).unwrap();
        assert_eq!(pinned.generation(), 0);
        assert_eq!(pinned.relation().len(), 3, "pin sees pre-batch rows");
        assert_eq!(table.pin().relation().len(), 4);
        assert!(
            !pinned.relation().same_table(table.pin().relation()),
            "commit swapped in a new relation"
        );
    }

    #[test]
    fn failed_batch_is_invisible_and_generation_holds() {
        let table = IngestTable::new(seed(3));
        let before = table.pin();
        // Second row fails validation: the first must not leak.
        let err = table
            .append_rows(&[row("kirkland", 9.0), vec!["x".into(), "oops".into()]])
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        let after = table.pin();
        assert_eq!(after.generation(), 0);
        assert!(after.relation().same_table(before.relation()));
    }

    #[test]
    fn injected_append_fault_rolls_back() {
        let table = IngestTable::new(seed(3));
        for site in ["data.append", "data.index.delta"] {
            // data.index.delta only fires when the base carries indexes.
            table.pin().relation().build_indexes();
            let plan = qcat_fault::FaultPlan::parse(&format!("{site}:error")).unwrap();
            let err = qcat_fault::with_plan(&plan, || {
                table.append_rows(&[row("kirkland", 9.0)]).unwrap_err()
            });
            assert_eq!(err, DataError::Fault { site });
            assert_eq!(table.generation(), 0, "{site}: generation holds");
            assert_eq!(table.pin().relation().len(), 3, "{site}: rows hold");
        }
        // Without the fault the same batch commits.
        assert!(table.append_rows(&[row("kirkland", 9.0)]).is_ok());
    }

    #[test]
    fn delta_digest_summarizes_only_the_batch() {
        let table = IngestTable::new(seed(4));
        let receipt = table
            .append_rows(&[row("kirkland", 50.0), row("kirkland", 60.0)])
            .unwrap();
        let delta = &receipt.commit.delta;
        // Numeric attr 1: bounds cover only appended prices.
        assert_eq!(delta.numeric_bounds(0, 1), Some((50.0, 60.0)));
        // Categorical attr 0: only "kirkland"'s code is present.
        let (dict, _) = receipt
            .snapshot
            .relation()
            .column(AttrId(0))
            .categorical()
            .unwrap();
        let kirkland = dict.lookup("kirkland").unwrap();
        let redmond = dict.lookup("redmond").unwrap();
        assert!(delta.may_have_code(0, 0, kirkland));
        assert!(!delta.may_have_code(0, 0, redmond));
    }

    #[test]
    fn empty_batch_commits_without_visible_change() {
        let table = IngestTable::new(seed(2));
        let receipt = table.append_rows(&[]).unwrap();
        assert_eq!(receipt.commit.added, 0);
        assert_eq!(receipt.snapshot.generation(), 1);
        assert_eq!(receipt.snapshot.relation().len(), 2);
    }
}
