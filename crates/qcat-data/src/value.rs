//! Dynamically-typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single cell value.
///
/// `Value` is used at API boundaries (row construction, literals coming
/// out of the SQL parser, label rendering). Hot paths operate on the
/// typed columnar storage instead.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value. Predicates never match nulls (simplified SQL
    /// three-valued logic collapsed to false).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string; `Arc` so values can be cloned cheaply out of
    /// dictionaries.
    Str(Arc<str>),
}

impl Value {
    /// Human-readable name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers widen to `f64`, floats pass through,
    /// everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (no float truncation; a float is not an int).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-ish comparison between two values.
    ///
    /// Numeric values compare numerically across `Int`/`Float`. Strings
    /// compare lexicographically. Nulls and cross-kind comparisons
    /// (string vs number) return `None`, which predicate evaluation
    /// treats as "no match".
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Whole floats print without a trailing `.0` so labels
                // like `Price: 200000-225000` stay readable.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }

    #[test]
    fn cross_kind_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::from("3"), Value::Int(3));
    }

    #[test]
    fn null_never_equals_anything_but_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::from(""));
    }

    #[test]
    fn sql_comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).partial_cmp_sql(&Value::Int(2)), Some(Less));
        assert_eq!(
            Value::Int(3).partial_cmp_sql(&Value::Float(2.5)),
            Some(Greater)
        );
        assert_eq!(
            Value::from("a").partial_cmp_sql(&Value::from("b")),
            Some(Less)
        );
        assert_eq!(Value::from("a").partial_cmp_sql(&Value::Int(1)), None);
        assert_eq!(Value::Null.partial_cmp_sql(&Value::Int(1)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(42.0).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::from("Bellevue").to_string(), "Bellevue");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::Float(0.0).type_name(), "float");
        assert_eq!(Value::from("").type_name(), "string");
    }
}
