//! A small thread-safe table catalog.

use crate::error::DataError;
use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Name → relation registry.
///
/// Tables are registered once and read many times (every query
/// execution resolves the `FROM` table here), so a `RwLock` around a
/// `HashMap` of cheaply-cloneable [`Relation`] handles suffices.
/// Lookups are case-insensitive, matching the SQL layer.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Relation>>,
}

impl Catalog {
    /// Read access, recovering from poisoning: a panicking writer can
    /// at worst leave a fully-applied insert/remove behind, and every
    /// mutation keeps the map valid, so the data is safe to read.
    fn read_tables(&self) -> RwLockReadGuard<'_, HashMap<String, Relation>> {
        self.tables.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access with the same poison recovery as `read_tables`.
    fn write_tables(&self) -> RwLockWriteGuard<'_, HashMap<String, Relation>> {
        self.tables.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `relation` under `name`; errors if the name is taken.
    pub fn register(&self, name: &str, relation: Relation) -> Result<(), DataError> {
        let key = name.to_ascii_lowercase();
        qcat_obs::event!("data.catalog.register", table = key.as_str(), rows = relation.len());
        let mut tables = self.write_tables();
        if tables.contains_key(&key) {
            return Err(DataError::DuplicateTable(name.to_string()));
        }
        tables.insert(key, relation);
        Ok(())
    }

    /// Replace or insert `relation` under `name`.
    pub fn register_or_replace(&self, name: &str, relation: Relation) {
        self.write_tables()
            .insert(name.to_ascii_lowercase(), relation);
    }

    /// Fetch a handle to the named table.
    pub fn get(&self, name: &str) -> Result<Relation, DataError> {
        qcat_obs::counter("data.catalog.lookups", 1);
        self.read_tables()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Remove a table, returning it if present.
    pub fn drop_table(&self, name: &str) -> Option<Relation> {
        self.write_tables().remove(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_tables().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.read_tables().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.read_tables().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::types::{AttrType, Field, Schema};

    fn tiny() -> Relation {
        let schema = Schema::new(vec![Field::new("x", AttrType::Int)]).unwrap();
        let mut b = RelationBuilder::new(schema);
        b.push_row(&[1.into()]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn register_and_get_case_insensitive() {
        let cat = Catalog::new();
        cat.register("ListProperty", tiny()).unwrap();
        assert_eq!(cat.get("listproperty").unwrap().len(), 1);
        assert_eq!(cat.get("LISTPROPERTY").unwrap().len(), 1);
        assert!(cat.get("other").is_err());
    }

    #[test]
    fn duplicate_register_rejected_replace_allowed() {
        let cat = Catalog::new();
        cat.register("t", tiny()).unwrap();
        assert!(matches!(
            cat.register("T", tiny()),
            Err(DataError::DuplicateTable(_))
        ));
        cat.register_or_replace("T", tiny());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn drop_table_removes() {
        let cat = Catalog::new();
        cat.register("t", tiny()).unwrap();
        assert!(cat.drop_table("T").is_some());
        assert!(cat.drop_table("t").is_none());
        assert!(cat.is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        cat.register("b", tiny()).unwrap();
        cat.register("a", tiny()).unwrap();
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn catalog_is_sync_and_shareable() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Catalog>();
        let cat = std::sync::Arc::new(Catalog::new());
        cat.register("t", tiny()).unwrap();
        let cat2 = cat.clone();
        let handle = std::thread::spawn(move || cat2.get("t").unwrap().len());
        assert_eq!(handle.join().unwrap(), 1);
    }
}
