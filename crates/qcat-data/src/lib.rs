#![warn(missing_docs)]

//! In-memory data substrate for the qcat workspace.
//!
//! This crate provides the storage layer that the SIGMOD 2004 paper
//! *Automatic Categorization of Query Results* assumes from the host
//! DBMS: typed schemas, dictionary-encoded categorical columns, numeric
//! columns, immutable columnar relations addressed by row id, and a
//! small thread-safe catalog.
//!
//! Design notes:
//! - Relations are **immutable once built** ([`RelationBuilder`] /
//!   [`Relation::freeze`]); every downstream structure (result sets,
//!   category trees) refers to rows by `u32` row id, so categorization
//!   never copies tuples. Growth happens by shadow paging:
//!   [`Relation::begin_append`] stages a tail batch and commits it as
//!   a *new* relation, and [`IngestTable`] (see the [`ingest`] module)
//!   layers a generation counter on top for snapshot-isolated readers
//!   and all-or-nothing batch visibility.
//! - Categorical values are interned per column in a [`Dictionary`];
//!   all set operations in the categorizer work on `u32` codes.
//! - Numeric attributes may be integer- or float-typed; both expose an
//!   `f64` view because splitpoint partitioning operates on a numeric
//!   line.
//! - Relations can carry an opt-in [`IndexSet`] (postings per
//!   categorical code, a sorted projection per numeric column) so the
//!   executor can answer selective predicates without scanning; see
//!   the [`index`] module.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod index;
pub mod ingest;
pub mod relation;
pub mod shard;
pub mod types;
pub mod value;

pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder};
pub use dictionary::Dictionary;
pub use error::DataError;
pub use index::{
    intersect_sorted, union_sorted, AttrIndex, IndexSet, PostingsIndex, ShardIndexes, SortedIndex,
};
pub use ingest::{AppendReceipt, IngestSnapshot, IngestTable};
pub use relation::{AppendCommit, Relation, RelationBuilder, TailAppend};
pub use shard::{ShardMap, ShardSummaries};
pub use types::{AttrId, AttrType, Field, Schema};
pub use value::Value;
