#![warn(missing_docs)]

//! In-memory data substrate for the qcat workspace.
//!
//! This crate provides the storage layer that the SIGMOD 2004 paper
//! *Automatic Categorization of Query Results* assumes from the host
//! DBMS: typed schemas, dictionary-encoded categorical columns, numeric
//! columns, immutable columnar relations addressed by row id, and a
//! small thread-safe catalog.
//!
//! Design notes:
//! - Relations are **immutable once built** ([`RelationBuilder`] /
//!   [`Relation::freeze`]); every downstream structure (result sets,
//!   category trees) refers to rows by `u32` row id, so categorization
//!   never copies tuples.
//! - Categorical values are interned per column in a [`Dictionary`];
//!   all set operations in the categorizer work on `u32` codes.
//! - Numeric attributes may be integer- or float-typed; both expose an
//!   `f64` view because splitpoint partitioning operates on a numeric
//!   line.

pub mod catalog;
pub mod column;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod relation;
pub mod types;
pub mod value;

pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder};
pub use dictionary::Dictionary;
pub use error::DataError;
pub use relation::{Relation, RelationBuilder};
pub use types::{AttrId, AttrType, Field, Schema};
pub use value::Value;
