//! Minimal CSV/TSV import and export.
//!
//! Good enough to round-trip generated datasets and to let examples
//! load ad-hoc files. Supports a configurable delimiter, a header row,
//! and double-quote escaping (`""` inside a quoted field). No external
//! dependency is warranted for this subset.

use crate::error::DataError;
use crate::relation::{Relation, RelationBuilder};
use crate::types::{AttrType, Schema};
use crate::value::Value;
use std::io::{BufRead, Write};

/// Options for CSV reading/writing.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first row is a header (default true). On read the
    /// header is validated against the schema order.
    pub header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: true,
        }
    }
}

/// Split one CSV record honoring double-quote escaping.
fn split_record(line: &str, delim: char) -> Result<Vec<String>, DataError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err(DataError::Malformed(format!(
            "unterminated quoted field in record: {line:?}"
        )));
    }
    fields.push(field);
    Ok(fields)
}

/// Quote a field if it contains the delimiter, a quote, or whitespace
/// padding that must survive.
fn quote_field(s: &str, delim: char) -> String {
    if s.contains(delim) || s.contains('"') || s.contains('\n') {
        let escaped = s.replace('"', "\"\"");
        format!("\"{escaped}\"")
    } else {
        s.to_string()
    }
}

/// Read a relation with the given schema from CSV text.
pub fn read_csv<R: BufRead>(
    reader: R,
    schema: Schema,
    opts: CsvOptions,
) -> Result<Relation, DataError> {
    let mut builder = RelationBuilder::new(schema.clone());
    let mut lines = reader.lines();
    if opts.header {
        let header = lines
            .next()
            .ok_or_else(|| DataError::Malformed("missing header row".into()))?
            .map_err(|e| DataError::Malformed(e.to_string()))?;
        let names = split_record(&header, opts.delimiter)?;
        if names.len() != schema.len() {
            return Err(DataError::Malformed(format!(
                "header has {} fields, schema has {}",
                names.len(),
                schema.len()
            )));
        }
        for (name, field) in names.iter().zip(schema.fields()) {
            if !name.eq_ignore_ascii_case(&field.name) {
                return Err(DataError::Malformed(format!(
                    "header field `{name}` does not match schema field `{}`",
                    field.name
                )));
            }
        }
    }
    let mut row_values: Vec<Value> = Vec::with_capacity(schema.len());
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| DataError::Malformed(e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let raw = split_record(&line, opts.delimiter)?;
        if raw.len() != schema.len() {
            return Err(DataError::Malformed(format!(
                "record {} has {} fields, expected {}",
                lineno + 1,
                raw.len(),
                schema.len()
            )));
        }
        row_values.clear();
        for (text, field) in raw.iter().zip(schema.fields()) {
            let v = match field.ty {
                AttrType::Categorical => Value::from(text.as_str()),
                AttrType::Int => Value::Int(text.trim().parse::<i64>().map_err(|_| {
                    DataError::Malformed(format!(
                        "record {}: `{text}` is not an int for `{}`",
                        lineno + 1,
                        field.name
                    ))
                })?),
                AttrType::Float => Value::Float(text.trim().parse::<f64>().map_err(|_| {
                    DataError::Malformed(format!(
                        "record {}: `{text}` is not a float for `{}`",
                        lineno + 1,
                        field.name
                    ))
                })?),
            };
            row_values.push(v);
        }
        builder.push_row(&row_values)?;
    }
    builder.finish()
}

/// Write a relation as CSV text.
pub fn write_csv<W: Write>(
    writer: &mut W,
    relation: &Relation,
    opts: CsvOptions,
) -> Result<(), DataError> {
    let io_err = |e: std::io::Error| DataError::Malformed(e.to_string());
    let delim = opts.delimiter;
    if opts.header {
        let header: Vec<String> = relation
            .schema()
            .fields()
            .iter()
            .map(|f| quote_field(&f.name, delim))
            .collect();
        writeln!(writer, "{}", header.join(&delim.to_string())).map_err(io_err)?;
    }
    for row in 0..relation.len() {
        let values = relation.row(row)?;
        let fields: Vec<String> = values
            .iter()
            .map(|v| quote_field(&v.to_string(), delim))
            .collect();
        writeln!(writer, "{}", fields.join(&delim.to_string())).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("beds", AttrType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let csv = "neighborhood,price,beds\nRedmond,250000,3\n\"Queen Anne, North\",300000.5,4\n";
        let rel = read_csv(csv.as_bytes(), schema(), CsvOptions::default()).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.value(1, crate::types::AttrId(0)).unwrap(),
            Value::from("Queen Anne, North")
        );
        let mut out = Vec::new();
        write_csv(&mut out, &rel, CsvOptions::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let rel2 = read_csv(text.as_bytes(), schema(), CsvOptions::default()).unwrap();
        assert_eq!(rel2.len(), 2);
        assert_eq!(
            rel2.value(1, crate::types::AttrId(0)).unwrap(),
            Value::from("Queen Anne, North")
        );
        assert_eq!(
            rel2.value(1, crate::types::AttrId(1)).unwrap(),
            Value::Float(300000.5)
        );
    }

    #[test]
    fn quote_escaping() {
        let fields = split_record("a,\"b\"\"c\",d", ',').unwrap();
        assert_eq!(fields, vec!["a", "b\"c", "d"]);
        assert_eq!(quote_field("plain", ','), "plain");
        assert_eq!(quote_field("a,b", ','), "\"a,b\"");
        assert_eq!(quote_field("say \"hi\"", ','), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(split_record("\"oops", ',').is_err());
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "a,b,c\nRedmond,1,2\n";
        let err = read_csv(csv.as_bytes(), schema(), CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Malformed(_)));
    }

    #[test]
    fn bad_number_reports_record() {
        let csv = "neighborhood,price,beds\nRedmond,abc,3\n";
        let err = read_csv(csv.as_bytes(), schema(), CsvOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 1"), "{msg}");
        assert!(msg.contains("price"), "{msg}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "neighborhood,price,beds\nRedmond,1\n";
        assert!(read_csv(csv.as_bytes(), schema(), CsvOptions::default()).is_err());
    }

    #[test]
    fn tsv_delimiter() {
        let opts = CsvOptions {
            delimiter: '\t',
            header: false,
        };
        let rel = read_csv("Redmond\t1\t2\n".as_bytes(), schema(), opts).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "neighborhood,price,beds\nRedmond,1,2\n\nBellevue,2,3\n";
        let rel = read_csv(csv.as_bytes(), schema(), CsvOptions::default()).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
