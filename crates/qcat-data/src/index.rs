//! Per-relation secondary indexes and sorted row-id set kernels.
//!
//! The paper assumes the host DBMS executes the selection query
//! cheaply (Section 5); this module is our access-path layer. A
//! frozen relation can carry an [`IndexSet`] — one [`ShardIndexes`]
//! per horizontal shard of the relation, each holding:
//!
//! - one **postings index** per categorical column: for every
//!   dictionary code, the ascending list of row ids holding that code
//!   (CSR layout — one `u32` per row plus one offset per code);
//! - one **sorted projection** per numeric column: `(value, row id)`
//!   pairs sorted by value, so any interval maps to a contiguous
//!   slice found by binary search.
//!
//! Row ids are **global** (table row ids, not shard-relative), so a
//! shard's lists concatenate in shard order into globally ascending
//! lists with no merge step: shard row ranges are disjoint and
//! increasing. The single-shard build is exactly the pre-shard index —
//! same arrays, same bytes.
//!
//! Shards build independently, so [`IndexSet::build_sharded`] fans the
//! per-shard builds out as `qcat-pool` morsels: budget `Gas` is polled
//! before each shard, the caller's recorder/trace context propagates
//! into workers, and results collect deterministically by shard index.
//!
//! All set algebra happens on ascending `u32` row-id lists via the
//! first-party kernels [`intersect_sorted`] (galloping for skewed
//! sizes) and [`union_sorted`] (k-way merge). Row-id order equals
//! table order, so index-produced results are bit-compatible with a
//! full scan's.

use crate::column::Column;
use crate::shard::ShardMap;
use crate::types::AttrId;
use qcat_pool::{PoolError, ThreadPool};
use std::sync::Arc;

/// How much larger one list must be before intersection switches
/// from linear merging to galloping probes into the larger list.
const GALLOP_RATIO: usize = 8;

/// Postings index over one categorical column: row ids grouped by
/// dictionary code, each group ascending.
#[derive(Debug, Clone)]
pub struct PostingsIndex {
    /// `offsets[c]..offsets[c + 1]` bounds code `c`'s rows.
    offsets: Vec<u32>,
    /// Row ids, grouped by code, ascending within each group.
    rows: Vec<u32>,
}

impl PostingsIndex {
    /// Build from per-row dictionary codes (`dict_len` distinct
    /// codes); stored row ids are offset by `base` so a shard built
    /// from `codes[start..end]` emits global table row ids.
    fn build(codes: &[u32], dict_len: usize, base: u32) -> PostingsIndex {
        let mut counts = vec![0u32; dict_len + 1];
        for &c in codes {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut rows = vec![0u32; codes.len()];
        for (row, &c) in codes.iter().enumerate() {
            rows[cursor[c as usize] as usize] = base + row as u32;
            cursor[c as usize] += 1;
        }
        PostingsIndex { offsets, rows }
    }

    /// Ascending row ids holding dictionary code `code` (empty for
    /// out-of-range codes).
    pub fn rows_for_code(&self, code: u32) -> &[u32] {
        let c = code as usize;
        if c + 1 >= self.offsets.len() {
            return &[];
        }
        &self.rows[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Number of rows holding `code` — an exact per-value cardinality,
    /// free of charge for the access-path planner.
    pub fn count_for_code(&self, code: u32) -> usize {
        self.rows_for_code(code).len()
    }

    /// Number of distinct codes the index covers.
    pub fn distinct(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Heap bytes held by this index.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.rows.len()) * std::mem::size_of::<u32>()
    }
}

/// Sorted projection of one numeric column: values ascending, row id
/// as tiebreak, answerable by binary search.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    vals: Vec<f64>,
    rows: Vec<u32>,
}

impl SortedIndex {
    /// Build from an `f64` view of the column (NaN is unrepresentable
    /// in qcat columns, so `total_cmp` agrees with `<` here); stored
    /// row ids are offset by `base` for shard builds.
    fn build(values: impl Iterator<Item = f64>, base: u32) -> SortedIndex {
        let mut pairs: Vec<(f64, u32)> = values
            .enumerate()
            .map(|(row, v)| (v, base + row as u32))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        SortedIndex {
            vals: pairs.iter().map(|p| p.0).collect(),
            rows: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Bounds of the slice whose values lie inside the interval
    /// described by `(lo, lo_inclusive, hi, hi_inclusive)`.
    fn bounds(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> (usize, usize) {
        let start = if lo_inclusive {
            self.vals.partition_point(|&v| v < lo)
        } else {
            self.vals.partition_point(|&v| v <= lo)
        };
        let end = if hi_inclusive {
            self.vals.partition_point(|&v| v <= hi)
        } else {
            self.vals.partition_point(|&v| v < hi)
        };
        (start, end.max(start))
    }

    /// Exact number of rows inside the interval — two binary searches.
    pub fn count_in(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> usize {
        let (start, end) = self.bounds(lo, lo_inclusive, hi, hi_inclusive);
        end - start
    }

    /// The contiguous projection slice of rows inside the interval,
    /// **borrowed** — no allocation per probe. The slice is ordered by
    /// `(value, row id)`, so it is row-ascending only when it spans a
    /// single value; callers that need table order over a multi-value
    /// interval copy and sort once per probe (see `qcat-exec::plan`).
    pub fn slice_in(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> &[u32] {
        let (start, end) = self.bounds(lo, lo_inclusive, hi, hi_inclusive);
        &self.rows[start..end]
    }

    /// Exact number of rows equal to `v`.
    pub fn count_eq(&self, v: f64) -> usize {
        self.count_in(v, true, v, true)
    }

    /// Row ids equal to `v`, borrowed. Within one value the sort
    /// tiebreaks on row id, so an equal-range slice is already
    /// **ascending row ids** — usable directly by the merge kernels.
    pub fn slice_eq(&self, v: f64) -> &[u32] {
        self.slice_in(v, true, v, true)
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the column had no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Heap bytes held by this index.
    pub fn heap_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<f64>()
            + self.rows.len() * std::mem::size_of::<u32>()
    }
}

/// Per-attribute index, matching the column's physical type.
#[derive(Debug, Clone)]
pub enum AttrIndex {
    /// Postings over a categorical column.
    Postings(PostingsIndex),
    /// Sorted projection over a numeric column.
    Sorted(SortedIndex),
}

/// The indexes of one horizontal shard: one [`AttrIndex`] per column,
/// covering the shard's row range with global row ids.
#[derive(Debug, Clone)]
pub struct ShardIndexes {
    per_attr: Vec<AttrIndex>,
}

impl ShardIndexes {
    /// Index rows `[start, end)` of every column. Crate-visible so the
    /// ingest layer can build indexes for just the shards an append
    /// dirtied, carrying the untouched shards' indexes by `Arc`.
    pub(crate) fn build(columns: &[Column], start: usize, end: usize) -> ShardIndexes {
        let base = start as u32;
        let per_attr = columns
            .iter()
            .map(|col| match col {
                Column::Categorical { dict, codes } => {
                    AttrIndex::Postings(PostingsIndex::build(&codes[start..end], dict.len(), base))
                }
                Column::Int(v) => AttrIndex::Sorted(SortedIndex::build(
                    v[start..end].iter().map(|&i| i as f64),
                    base,
                )),
                Column::Float(v) => {
                    AttrIndex::Sorted(SortedIndex::build(v[start..end].iter().copied(), base))
                }
            })
            .collect();
        ShardIndexes { per_attr }
    }

    /// The index on attribute `id`, if `id` is in range.
    pub fn attr(&self, id: AttrId) -> Option<&AttrIndex> {
        self.per_attr.get(id.index())
    }

    /// The postings index on `id`, when `id` is a categorical column.
    pub fn postings(&self, id: AttrId) -> Option<&PostingsIndex> {
        match self.per_attr.get(id.index()) {
            Some(AttrIndex::Postings(p)) => Some(p),
            _ => None,
        }
    }

    /// The sorted projection on `id`, when `id` is a numeric column.
    pub fn sorted(&self, id: AttrId) -> Option<&SortedIndex> {
        match self.per_attr.get(id.index()) {
            Some(AttrIndex::Sorted(s)) => Some(s),
            _ => None,
        }
    }

    /// Heap bytes held by this shard's indexes.
    pub fn heap_bytes(&self) -> usize {
        self.per_attr
            .iter()
            .map(|a| match a {
                AttrIndex::Postings(p) => p.heap_bytes(),
                AttrIndex::Sorted(s) => s.heap_bytes(),
            })
            .sum()
    }
}

/// The full index complement of one relation: one [`ShardIndexes`]
/// per horizontal shard.
///
/// Shards are held by `Arc` so an appended relation can carry the
/// untouched base shards' indexes by reference — an append rebuilds
/// only the shards it dirtied, and the shared prefix costs no copy.
#[derive(Debug, Clone)]
pub struct IndexSet {
    shards: Vec<Arc<ShardIndexes>>,
}

impl IndexSet {
    /// Build single-shard indexes for every column — the layout every
    /// unsharded relation uses. Cost is one counting pass per
    /// categorical column and one sort per numeric column.
    pub fn build(columns: &[Column]) -> IndexSet {
        let rows = columns.first().map_or(0, Column::len);
        IndexSet::build_serial(columns, &ShardMap::single(rows))
    }

    /// Build per-shard indexes serially on the calling thread, with no
    /// budget checkpoints — the fallback that keeps
    /// `Relation::build_indexes` infallible.
    pub fn build_serial(columns: &[Column], map: &ShardMap) -> IndexSet {
        let mut span = qcat_obs::span!(
            "data.index.build",
            columns = columns.len(),
            shards = map.shard_count()
        );
        let shards = (0..map.shard_count())
            .map(|s| {
                let (start, end) = map.bounds(s);
                Arc::new(ShardIndexes::build(columns, start, end))
            })
            .collect();
        let set = IndexSet { shards };
        if qcat_obs::active() {
            span.set("heap_bytes", set.heap_bytes());
        }
        set
    }

    /// Assemble an index set from pre-built per-shard indexes, in
    /// shard order. The ingest layer uses this to splice carried-over
    /// base shards together with freshly built tail shards.
    pub(crate) fn from_shards(shards: Vec<Arc<ShardIndexes>>) -> IndexSet {
        IndexSet { shards }
    }

    /// Build per-shard indexes as `qcat-pool` morsels: one work item
    /// per shard, `threads` resolved by [`qcat_pool::resolve_threads`]
    /// (0 = auto). Workers poll the caller's budget `Gas` before each
    /// shard and inherit the caller's recorder/trace context; results
    /// collect by shard index, so the set is identical to
    /// [`IndexSet::build_serial`]'s at any thread count.
    pub fn build_sharded(
        columns: &[Column],
        map: &ShardMap,
        threads: usize,
    ) -> Result<IndexSet, PoolError> {
        let pool = ThreadPool::new(threads);
        if map.is_single() || pool.threads() <= 1 {
            // The serial fast path still honors an installed budget so
            // `try_build_indexes` refuses consistently at one thread.
            if let Some(gas) = qcat_fault::current_gas() {
                if let Err(reason) = gas.check() {
                    return Err(PoolError::Cancelled(reason));
                }
            }
            return Ok(IndexSet::build_serial(columns, map));
        }
        let mut span = qcat_obs::span!(
            "data.index.build",
            columns = columns.len(),
            shards = map.shard_count(),
            threads = pool.threads()
        );
        let shard_ids: Vec<usize> = (0..map.shard_count()).collect();
        let shards = pool.try_map(&shard_ids, |_, &s| {
            let (start, end) = map.bounds(s);
            let _item = qcat_obs::span!("data.index.shard", shard = s, rows = end - start);
            Arc::new(ShardIndexes::build(columns, start, end))
        })?;
        let set = IndexSet { shards };
        if qcat_obs::active() {
            span.set("heap_bytes", set.heap_bytes());
        }
        Ok(set)
    }

    /// Number of shards the indexes cover (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard indexes, in shard (= row) order.
    pub fn shards(&self) -> &[Arc<ShardIndexes>] {
        &self.shards
    }

    /// The index on attribute `id` of the **only** shard. `None` when
    /// the relation is sharded — shard-aware callers iterate
    /// [`IndexSet::shards`] instead.
    pub fn attr(&self, id: AttrId) -> Option<&AttrIndex> {
        match self.shards.as_slice() {
            [only] => only.attr(id),
            _ => None,
        }
    }

    /// Single-shard postings accessor; see [`IndexSet::attr`].
    pub fn postings(&self, id: AttrId) -> Option<&PostingsIndex> {
        match self.shards.as_slice() {
            [only] => only.postings(id),
            _ => None,
        }
    }

    /// Single-shard sorted-projection accessor; see [`IndexSet::attr`].
    pub fn sorted(&self, id: AttrId) -> Option<&SortedIndex> {
        match self.shards.as_slice() {
            [only] => only.sorted(id),
            _ => None,
        }
    }

    /// Total heap bytes held by all shards' indexes.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum()
    }
}

/// Intersection of two ascending row-id lists.
///
/// Linear merge for comparable sizes; when one list is more than
/// [`GALLOP_RATIO`]× the other, gallops (exponential probe + binary
/// search) through the larger list instead, giving
/// `O(small · log large)`.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(small.len());
    if large.len() / GALLOP_RATIO > small.len() {
        let mut lo = 0usize;
        for &x in small {
            lo += gallop_to(&large[lo..], x);
            if lo >= large.len() {
                break;
            }
            if large[lo] == x {
                out.push(x);
                lo += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Offset of the first element of `hay` that is `>= x`, found by
/// exponential probing followed by a binary search of the bracketed
/// window.
fn gallop_to(hay: &[u32], x: u32) -> usize {
    if hay.first().is_none_or(|&h| h >= x) {
        return 0;
    }
    let mut step = 1usize;
    let mut lo = 0usize;
    while lo + step < hay.len() && hay[lo + step] < x {
        lo += step;
        step *= 2;
    }
    let hi = (lo + step + 1).min(hay.len());
    lo + hay[lo..hi].partition_point(|&h| h < x)
}

/// Union of many ascending row-id lists into one ascending,
/// deduplicated list (k-way merge; two-list merges take the linear
/// fast path).
pub fn union_sorted(lists: &[&[u32]]) -> Vec<u32> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => union2(lists[0], lists[1]),
        _ => {
            // Repeated pairwise merging, smallest pairs first, keeps
            // total work near O(n log k) without a heap.
            let mut work: Vec<Vec<u32>> = lists.iter().map(|l| l.to_vec()).collect();
            work.sort_by_key(Vec::len);
            while work.len() > 1 {
                let a = work.remove(0);
                let b = work.remove(0);
                let merged = union2(&a, &b);
                let at = work.partition_point(|w| w.len() < merged.len());
                work.insert(at, merged);
            }
            work.pop().unwrap_or_default()
        }
    }
}

fn union2(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::types::AttrType;

    fn cat(vals: &[&str]) -> Column {
        let mut b = ColumnBuilder::with_capacity(AttrType::Categorical, vals.len());
        for v in vals {
            b.push_str(v).unwrap();
        }
        b.finish()
    }

    /// Collect a borrowed interval slice into ascending row ids, the
    /// way shard-aware callers do.
    fn rows_in(s: &SortedIndex, lo: f64, li: bool, hi: f64, hi_inc: bool) -> Vec<u32> {
        let mut out = s.slice_in(lo, li, hi, hi_inc).to_vec();
        out.sort_unstable();
        out
    }

    #[test]
    fn postings_group_rows_by_code() {
        let col = cat(&["a", "b", "a", "c", "b", "a"]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let p = set.postings(AttrId(0)).unwrap();
        assert_eq!(p.distinct(), 3);
        // Codes intern in first-seen order: a=0, b=1, c=2.
        assert_eq!(p.rows_for_code(0), &[0, 2, 5]);
        assert_eq!(p.rows_for_code(1), &[1, 4]);
        assert_eq!(p.rows_for_code(2), &[3]);
        assert_eq!(p.rows_for_code(9), &[] as &[u32]);
        assert_eq!(p.count_for_code(0), 3);
        assert!(p.heap_bytes() > 0);
        assert!(set.sorted(AttrId(0)).is_none());
    }

    #[test]
    fn sorted_index_answers_ranges() {
        let col = Column::Float(vec![5.0, 1.0, 3.0, 3.0, 9.0]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let s = set.sorted(AttrId(0)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(rows_in(s, 3.0, true, 5.0, true), vec![0, 2, 3]);
        assert_eq!(rows_in(s, 3.0, false, 5.0, true), vec![0]);
        assert_eq!(rows_in(s, 3.0, true, 5.0, false), vec![2, 3]);
        assert_eq!(s.count_in(f64::NEG_INFINITY, false, f64::INFINITY, false), 5);
        assert_eq!(s.slice_eq(3.0), &[2, 3], "equal range is row-ascending");
        assert_eq!(s.count_eq(7.0), 0);
        // Degenerate (empty) interval.
        assert_eq!(s.count_in(5.0, true, 3.0, true), 0);
        assert_eq!(s.slice_in(5.0, false, 5.0, false), &[] as &[u32]);
    }

    #[test]
    fn slice_probes_borrow_without_allocating() {
        let col = Column::Float(vec![2.0, 1.0, 2.0, 3.0]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let s = set.sorted(AttrId(0)).unwrap();
        // Two probes of the same interval return the same backing
        // slice — pointer equality proves no per-probe copy.
        let a = s.slice_in(1.0, true, 3.0, true);
        let b = s.slice_in(1.0, true, 3.0, true);
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a.len(), 4);
        assert_eq!(s.slice_eq(2.0), &[0, 2]);
    }

    #[test]
    fn int_columns_get_sorted_indexes() {
        let col = Column::Int(vec![4, 2, 2, 8]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let s = set.sorted(AttrId(0)).unwrap();
        assert_eq!(s.slice_eq(2.0), &[1, 2]);
        assert_eq!(rows_in(s, 3.0, true, 10.0, true), vec![0, 3]);
        assert!(set.postings(AttrId(0)).is_none());
        assert!(set.attr(AttrId(1)).is_none());
    }

    #[test]
    fn sharded_build_matches_serial_with_global_ids() {
        let cols = vec![
            cat(&["a", "b", "a", "c", "b", "a", "c"]),
            Column::Int(vec![4, 2, 2, 8, 1, 9, 2]),
        ];
        let map = ShardMap::new(3, 7);
        let serial = IndexSet::build_serial(&cols, &map);
        for threads in [1, 2, 8] {
            let parallel = IndexSet::build_sharded(&cols, &map, threads).unwrap();
            assert_eq!(parallel.shard_count(), 3, "threads={threads}");
            for (s, (a, b)) in serial.shards().iter().zip(parallel.shards()).enumerate() {
                let (pa, pb) = (a.postings(AttrId(0)).unwrap(), b.postings(AttrId(0)).unwrap());
                for code in 0..3 {
                    assert_eq!(pa.rows_for_code(code), pb.rows_for_code(code), "shard {s}");
                }
                let (sa, sb) = (a.sorted(AttrId(1)).unwrap(), b.sorted(AttrId(1)).unwrap());
                assert_eq!(
                    sa.slice_in(f64::NEG_INFINITY, true, f64::INFINITY, true),
                    sb.slice_in(f64::NEG_INFINITY, true, f64::INFINITY, true),
                    "shard {s}"
                );
            }
        }
        // Global ids: shard 1 covers rows 3..6; code c=2 appears at 3.
        let p = serial.shards()[1].postings(AttrId(0)).unwrap();
        assert_eq!(p.rows_for_code(2), &[3]);
        // Concatenating per-shard eq-slices in shard order is globally
        // ascending (value 2 lives at rows 1, 2, 6).
        let mut concat = Vec::new();
        for sh in serial.shards() {
            concat.extend_from_slice(sh.sorted(AttrId(1)).unwrap().slice_eq(2.0));
        }
        assert_eq!(concat, vec![1, 2, 6]);
    }

    #[test]
    fn sharded_accessors_refuse_flat_view() {
        let cols = vec![Column::Int(vec![1, 2, 3, 4])];
        let set = IndexSet::build_serial(&cols, &ShardMap::new(2, 4));
        assert_eq!(set.shard_count(), 2);
        assert!(set.sorted(AttrId(0)).is_none(), "multi-shard: iterate shards()");
        assert!(set.attr(AttrId(0)).is_none());
        assert!(set.shards()[0].sorted(AttrId(0)).is_some());
    }

    #[test]
    fn sharded_build_honors_budget() {
        let cols = vec![Column::Int((0..100).collect())];
        let map = ShardMap::new(10, 100);
        let gas = qcat_fault::Budget::UNLIMITED
            .with_deadline(std::time::Duration::ZERO)
            .start();
        for threads in [1, 4] {
            let err = qcat_fault::with_budget(&gas, || {
                IndexSet::build_sharded(&cols, &map, threads).unwrap_err()
            });
            assert!(
                matches!(err, PoolError::Cancelled(qcat_fault::BudgetExceeded::Deadline)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_relation_builds_one_empty_shard() {
        let cols = vec![Column::Int(vec![])];
        let set = IndexSet::build(&cols);
        assert_eq!(set.shard_count(), 1);
        assert!(set.sorted(AttrId(0)).unwrap().is_empty());
    }

    #[test]
    fn intersect_merge_and_gallop_agree() {
        let a: Vec<u32> = (0..400).step_by(7).collect();
        let b: Vec<u32> = (0..400).step_by(3).collect();
        let expect: Vec<u32> = (0..400).step_by(21).collect();
        assert_eq!(intersect_sorted(&a, &b), expect);
        // Force the galloping path with a very skewed pair.
        let small = vec![0u32, 21, 42, 399];
        let big: Vec<u32> = (0..400).collect();
        assert_eq!(intersect_sorted(&small, &big), vec![0, 21, 42, 399]);
        assert_eq!(intersect_sorted(&big, &small), vec![0, 21, 42, 399]);
        assert_eq!(intersect_sorted(&[], &big), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&small, &[]), Vec::<u32>::new());
        // Probe beyond the end of the large list.
        assert_eq!(intersect_sorted(&[1000], &big), Vec::<u32>::new());
    }

    #[test]
    fn union_merges_and_dedups() {
        assert_eq!(union_sorted(&[]), Vec::<u32>::new());
        assert_eq!(union_sorted(&[&[1, 3]]), vec![1, 3]);
        assert_eq!(union_sorted(&[&[1, 3], &[2, 3, 5]]), vec![1, 2, 3, 5]);
        let lists: [&[u32]; 4] = [&[9], &[0, 4, 8], &[4, 5], &[1, 9]];
        assert_eq!(union_sorted(&lists), vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn gallop_to_bounds() {
        let hay: Vec<u32> = vec![2, 4, 6, 8, 10];
        assert_eq!(gallop_to(&hay, 1), 0);
        assert_eq!(gallop_to(&hay, 2), 0);
        assert_eq!(gallop_to(&hay, 5), 2);
        assert_eq!(gallop_to(&hay, 10), 4);
        assert_eq!(gallop_to(&hay, 11), 5);
        assert_eq!(gallop_to(&[], 3), 0);
    }

    #[test]
    fn heap_bytes_accumulate() {
        let cols = vec![cat(&["a", "b"]), Column::Int(vec![1, 2])];
        let set = IndexSet::build(&cols);
        assert_eq!(
            set.heap_bytes(),
            set.postings(AttrId(0)).unwrap().heap_bytes()
                + set.sorted(AttrId(1)).unwrap().heap_bytes()
        );
        let sharded = IndexSet::build_serial(&cols, &ShardMap::new(1, 2));
        assert_eq!(
            sharded.heap_bytes(),
            sharded.shards().iter().map(|s| s.heap_bytes()).sum::<usize>()
        );
    }
}
