//! Per-relation secondary indexes and sorted row-id set kernels.
//!
//! The paper assumes the host DBMS executes the selection query
//! cheaply (Section 5); this module is our access-path layer. A
//! frozen relation can carry an [`IndexSet`]:
//!
//! - one **postings index** per categorical column: for every
//!   dictionary code, the ascending list of row ids holding that code
//!   (CSR layout — one `u32` per row plus one offset per code);
//! - one **sorted projection** per numeric column: `(value, row id)`
//!   pairs sorted by value, so any interval maps to a contiguous
//!   slice found by binary search.
//!
//! All set algebra happens on ascending `u32` row-id lists via the
//! first-party kernels [`intersect_sorted`] (galloping for skewed
//! sizes) and [`union_sorted`] (k-way merge). Row-id order equals
//! table order, so index-produced results are bit-compatible with a
//! full scan's.

use crate::column::Column;
use crate::types::AttrId;

/// How much larger one list must be before intersection switches
/// from linear merging to galloping probes into the larger list.
const GALLOP_RATIO: usize = 8;

/// Postings index over one categorical column: row ids grouped by
/// dictionary code, each group ascending.
#[derive(Debug, Clone)]
pub struct PostingsIndex {
    /// `offsets[c]..offsets[c + 1]` bounds code `c`'s rows.
    offsets: Vec<u32>,
    /// Row ids, grouped by code, ascending within each group.
    rows: Vec<u32>,
}

impl PostingsIndex {
    /// Build from per-row dictionary codes (`dict_len` distinct codes).
    fn build(codes: &[u32], dict_len: usize) -> PostingsIndex {
        let mut counts = vec![0u32; dict_len + 1];
        for &c in codes {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut rows = vec![0u32; codes.len()];
        for (row, &c) in codes.iter().enumerate() {
            rows[cursor[c as usize] as usize] = row as u32;
            cursor[c as usize] += 1;
        }
        PostingsIndex { offsets, rows }
    }

    /// Ascending row ids holding dictionary code `code` (empty for
    /// out-of-range codes).
    pub fn rows_for_code(&self, code: u32) -> &[u32] {
        let c = code as usize;
        if c + 1 >= self.offsets.len() {
            return &[];
        }
        &self.rows[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Number of rows holding `code` — an exact per-value cardinality,
    /// free of charge for the access-path planner.
    pub fn count_for_code(&self, code: u32) -> usize {
        self.rows_for_code(code).len()
    }

    /// Number of distinct codes the index covers.
    pub fn distinct(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Heap bytes held by this index.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.rows.len()) * std::mem::size_of::<u32>()
    }
}

/// Sorted projection of one numeric column: values ascending, row id
/// as tiebreak, answerable by binary search.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    vals: Vec<f64>,
    rows: Vec<u32>,
}

impl SortedIndex {
    /// Build from an `f64` view of the column (NaN is unrepresentable
    /// in qcat columns, so `total_cmp` agrees with `<` here).
    fn build(values: impl Iterator<Item = f64>) -> SortedIndex {
        let mut pairs: Vec<(f64, u32)> = values
            .enumerate()
            .map(|(row, v)| (v, row as u32))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        SortedIndex {
            vals: pairs.iter().map(|p| p.0).collect(),
            rows: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Bounds of the slice whose values lie inside the interval
    /// described by `(lo, lo_inclusive, hi, hi_inclusive)`.
    fn bounds(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> (usize, usize) {
        let start = if lo_inclusive {
            self.vals.partition_point(|&v| v < lo)
        } else {
            self.vals.partition_point(|&v| v <= lo)
        };
        let end = if hi_inclusive {
            self.vals.partition_point(|&v| v <= hi)
        } else {
            self.vals.partition_point(|&v| v < hi)
        };
        (start, end.max(start))
    }

    /// Exact number of rows inside the interval — two binary searches.
    pub fn count_in(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> usize {
        let (start, end) = self.bounds(lo, lo_inclusive, hi, hi_inclusive);
        end - start
    }

    /// Ascending row ids of rows inside the interval. The slice is
    /// value-ordered, so the ids are re-sorted before returning.
    pub fn rows_in(&self, lo: f64, lo_inclusive: bool, hi: f64, hi_inclusive: bool) -> Vec<u32> {
        let (start, end) = self.bounds(lo, lo_inclusive, hi, hi_inclusive);
        let mut out = self.rows[start..end].to_vec();
        out.sort_unstable();
        out
    }

    /// Exact number of rows equal to `v`.
    pub fn count_eq(&self, v: f64) -> usize {
        self.count_in(v, true, v, true)
    }

    /// Ascending row ids of rows equal to `v`.
    pub fn rows_eq(&self, v: f64) -> Vec<u32> {
        self.rows_in(v, true, v, true)
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the column had no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Heap bytes held by this index.
    pub fn heap_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<f64>()
            + self.rows.len() * std::mem::size_of::<u32>()
    }
}

/// Per-attribute index, matching the column's physical type.
#[derive(Debug, Clone)]
pub enum AttrIndex {
    /// Postings over a categorical column.
    Postings(PostingsIndex),
    /// Sorted projection over a numeric column.
    Sorted(SortedIndex),
}

/// The full index complement of one relation: one [`AttrIndex`] per
/// column.
#[derive(Debug, Clone)]
pub struct IndexSet {
    per_attr: Vec<AttrIndex>,
}

impl IndexSet {
    /// Build indexes for every column. Cost is one counting pass per
    /// categorical column and one sort per numeric column.
    pub fn build(columns: &[Column]) -> IndexSet {
        let mut span = qcat_obs::span!("data.index.build", columns = columns.len());
        let per_attr = columns
            .iter()
            .map(|col| match col {
                Column::Categorical { dict, codes } => {
                    AttrIndex::Postings(PostingsIndex::build(codes, dict.len()))
                }
                Column::Int(v) => {
                    AttrIndex::Sorted(SortedIndex::build(v.iter().map(|&i| i as f64)))
                }
                Column::Float(v) => AttrIndex::Sorted(SortedIndex::build(v.iter().copied())),
            })
            .collect();
        let set = IndexSet { per_attr };
        if qcat_obs::active() {
            span.set("heap_bytes", set.heap_bytes());
        }
        set
    }

    /// The index on attribute `id`, if `id` is in range.
    pub fn attr(&self, id: AttrId) -> Option<&AttrIndex> {
        self.per_attr.get(id.index())
    }

    /// The postings index on `id`, when `id` is a categorical column.
    pub fn postings(&self, id: AttrId) -> Option<&PostingsIndex> {
        match self.per_attr.get(id.index()) {
            Some(AttrIndex::Postings(p)) => Some(p),
            _ => None,
        }
    }

    /// The sorted projection on `id`, when `id` is a numeric column.
    pub fn sorted(&self, id: AttrId) -> Option<&SortedIndex> {
        match self.per_attr.get(id.index()) {
            Some(AttrIndex::Sorted(s)) => Some(s),
            _ => None,
        }
    }

    /// Total heap bytes held by all per-attribute indexes.
    pub fn heap_bytes(&self) -> usize {
        self.per_attr
            .iter()
            .map(|a| match a {
                AttrIndex::Postings(p) => p.heap_bytes(),
                AttrIndex::Sorted(s) => s.heap_bytes(),
            })
            .sum()
    }
}

/// Intersection of two ascending row-id lists.
///
/// Linear merge for comparable sizes; when one list is more than
/// [`GALLOP_RATIO`]× the other, gallops (exponential probe + binary
/// search) through the larger list instead, giving
/// `O(small · log large)`.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(small.len());
    if large.len() / GALLOP_RATIO > small.len() {
        let mut lo = 0usize;
        for &x in small {
            lo += gallop_to(&large[lo..], x);
            if lo >= large.len() {
                break;
            }
            if large[lo] == x {
                out.push(x);
                lo += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Offset of the first element of `hay` that is `>= x`, found by
/// exponential probing followed by a binary search of the bracketed
/// window.
fn gallop_to(hay: &[u32], x: u32) -> usize {
    if hay.first().is_none_or(|&h| h >= x) {
        return 0;
    }
    let mut step = 1usize;
    let mut lo = 0usize;
    while lo + step < hay.len() && hay[lo + step] < x {
        lo += step;
        step *= 2;
    }
    let hi = (lo + step + 1).min(hay.len());
    lo + hay[lo..hi].partition_point(|&h| h < x)
}

/// Union of many ascending row-id lists into one ascending,
/// deduplicated list (k-way merge; two-list merges take the linear
/// fast path).
pub fn union_sorted(lists: &[&[u32]]) -> Vec<u32> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => union2(lists[0], lists[1]),
        _ => {
            // Repeated pairwise merging, smallest pairs first, keeps
            // total work near O(n log k) without a heap.
            let mut work: Vec<Vec<u32>> = lists.iter().map(|l| l.to_vec()).collect();
            work.sort_by_key(Vec::len);
            while work.len() > 1 {
                let a = work.remove(0);
                let b = work.remove(0);
                let merged = union2(&a, &b);
                let at = work.partition_point(|w| w.len() < merged.len());
                work.insert(at, merged);
            }
            work.pop().unwrap_or_default()
        }
    }
}

fn union2(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::types::AttrType;

    fn cat(vals: &[&str]) -> Column {
        let mut b = ColumnBuilder::with_capacity(AttrType::Categorical, vals.len());
        for v in vals {
            b.push_str(v).unwrap();
        }
        b.finish()
    }

    #[test]
    fn postings_group_rows_by_code() {
        let col = cat(&["a", "b", "a", "c", "b", "a"]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let p = set.postings(AttrId(0)).unwrap();
        assert_eq!(p.distinct(), 3);
        // Codes intern in first-seen order: a=0, b=1, c=2.
        assert_eq!(p.rows_for_code(0), &[0, 2, 5]);
        assert_eq!(p.rows_for_code(1), &[1, 4]);
        assert_eq!(p.rows_for_code(2), &[3]);
        assert_eq!(p.rows_for_code(9), &[] as &[u32]);
        assert_eq!(p.count_for_code(0), 3);
        assert!(p.heap_bytes() > 0);
        assert!(set.sorted(AttrId(0)).is_none());
    }

    #[test]
    fn sorted_index_answers_ranges() {
        let col = Column::Float(vec![5.0, 1.0, 3.0, 3.0, 9.0]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let s = set.sorted(AttrId(0)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.rows_in(3.0, true, 5.0, true), vec![0, 2, 3]);
        assert_eq!(s.rows_in(3.0, false, 5.0, true), vec![0]);
        assert_eq!(s.rows_in(3.0, true, 5.0, false), vec![2, 3]);
        assert_eq!(s.count_in(f64::NEG_INFINITY, false, f64::INFINITY, false), 5);
        assert_eq!(s.rows_eq(3.0), vec![2, 3]);
        assert_eq!(s.count_eq(7.0), 0);
        // Degenerate (empty) interval.
        assert_eq!(s.count_in(5.0, true, 3.0, true), 0);
        assert_eq!(s.rows_in(5.0, false, 5.0, false), Vec::<u32>::new());
    }

    #[test]
    fn int_columns_get_sorted_indexes() {
        let col = Column::Int(vec![4, 2, 2, 8]);
        let set = IndexSet::build(std::slice::from_ref(&col));
        let s = set.sorted(AttrId(0)).unwrap();
        assert_eq!(s.rows_eq(2.0), vec![1, 2]);
        assert_eq!(s.rows_in(3.0, true, 10.0, true), vec![0, 3]);
        assert!(set.postings(AttrId(0)).is_none());
        assert!(set.attr(AttrId(1)).is_none());
    }

    #[test]
    fn intersect_merge_and_gallop_agree() {
        let a: Vec<u32> = (0..400).step_by(7).collect();
        let b: Vec<u32> = (0..400).step_by(3).collect();
        let expect: Vec<u32> = (0..400).step_by(21).collect();
        assert_eq!(intersect_sorted(&a, &b), expect);
        // Force the galloping path with a very skewed pair.
        let small = vec![0u32, 21, 42, 399];
        let big: Vec<u32> = (0..400).collect();
        assert_eq!(intersect_sorted(&small, &big), vec![0, 21, 42, 399]);
        assert_eq!(intersect_sorted(&big, &small), vec![0, 21, 42, 399]);
        assert_eq!(intersect_sorted(&[], &big), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&small, &[]), Vec::<u32>::new());
        // Probe beyond the end of the large list.
        assert_eq!(intersect_sorted(&[1000], &big), Vec::<u32>::new());
    }

    #[test]
    fn union_merges_and_dedups() {
        assert_eq!(union_sorted(&[]), Vec::<u32>::new());
        assert_eq!(union_sorted(&[&[1, 3]]), vec![1, 3]);
        assert_eq!(union_sorted(&[&[1, 3], &[2, 3, 5]]), vec![1, 2, 3, 5]);
        let lists: [&[u32]; 4] = [&[9], &[0, 4, 8], &[4, 5], &[1, 9]];
        assert_eq!(union_sorted(&lists), vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn gallop_to_bounds() {
        let hay: Vec<u32> = vec![2, 4, 6, 8, 10];
        assert_eq!(gallop_to(&hay, 1), 0);
        assert_eq!(gallop_to(&hay, 2), 0);
        assert_eq!(gallop_to(&hay, 5), 2);
        assert_eq!(gallop_to(&hay, 10), 4);
        assert_eq!(gallop_to(&hay, 11), 5);
        assert_eq!(gallop_to(&[], 3), 0);
    }

    #[test]
    fn heap_bytes_accumulate() {
        let cols = vec![cat(&["a", "b"]), Column::Int(vec![1, 2])];
        let set = IndexSet::build(&cols);
        assert_eq!(
            set.heap_bytes(),
            set.postings(AttrId(0)).unwrap().heap_bytes()
                + set.sorted(AttrId(1)).unwrap().heap_bytes()
        );
    }
}
