//! Schemas, fields, and attribute types.

use crate::error::DataError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within its [`Schema`].
///
/// A thin newtype so attribute indices cannot be confused with row ids
/// or splitpoint indices in the categorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Dictionary-encoded string attribute (e.g. `neighborhood`).
    Categorical,
    /// Integer-valued numeric attribute (e.g. `bedroomcount`).
    Int,
    /// Float-valued numeric attribute (e.g. `price`).
    Float,
}

impl AttrType {
    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }

    /// Lower-case type name.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Categorical => "categorical",
            AttrType::Int => "int",
            AttrType::Float => "float",
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name; matched case-insensitively by the SQL layer.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of named, typed attributes.
///
/// Schemas are cheaply cloneable (`Arc` inside) because every relation,
/// result set and category tree carries one.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    fields: Vec<Field>,
    /// Lower-cased name → attribute index.
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate names
    /// (case-insensitively).
    pub fn new(fields: Vec<Field>) -> Result<Self, DataError> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            let key = f.name.to_ascii_lowercase();
            if by_name.insert(key, AttrId(i as u32)).is_some() {
                return Err(DataError::DuplicateAttribute(f.name.clone()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner { fields, by_name }),
        })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.inner.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.inner.fields
    }

    /// Field by id.
    pub fn field(&self, id: AttrId) -> Result<&Field, DataError> {
        self.inner
            .fields
            .get(id.index())
            .ok_or(DataError::AttributeIdOutOfRange(id.index()))
    }

    /// Resolve a (case-insensitive) attribute name.
    pub fn resolve(&self, name: &str) -> Result<AttrId, DataError> {
        self.inner
            .by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Attribute ids in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.inner.fields.len() as u32).map(AttrId)
    }

    /// Convenience: the name of an attribute (panics on bad id; ids
    /// produced by [`Schema::resolve`] are always valid for the same
    /// schema).
    pub fn name_of(&self, id: AttrId) -> &str {
        &self.inner.fields[id.index()].name
    }

    /// Convenience: type of an attribute.
    pub fn type_of(&self, id: AttrId) -> AttrType {
        self.inner.fields[id.index()].ty
    }

    /// True when two schemas are the same underlying object or have
    /// identical fields.
    pub fn compatible_with(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.fields == other.inner.fields
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.compatible_with(other)
    }
}

impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    fn homes_schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = homes_schema();
        assert_eq!(s.resolve("PRICE").unwrap(), AttrId(1));
        assert_eq!(s.resolve("Price").unwrap(), AttrId(1));
        assert_eq!(s.resolve("price").unwrap(), AttrId(1));
    }

    #[test]
    fn resolve_unknown_errors() {
        let s = homes_schema();
        assert_eq!(
            s.resolve("zip"),
            Err(DataError::UnknownAttribute("zip".into()))
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("A", AttrType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn field_lookup_and_names() {
        let s = homes_schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.name_of(AttrId(0)), "neighborhood");
        assert_eq!(s.type_of(AttrId(2)), AttrType::Int);
        assert!(s.field(AttrId(9)).is_err());
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1), AttrId(2)]);
    }

    #[test]
    fn numeric_predicate() {
        assert!(AttrType::Int.is_numeric());
        assert!(AttrType::Float.is_numeric());
        assert!(!AttrType::Categorical.is_numeric());
    }

    #[test]
    fn schema_equality_by_fields() {
        let a = homes_schema();
        let b = homes_schema();
        assert_eq!(a, b);
        let c = Schema::new(vec![Field::new("x", AttrType::Int)]).unwrap();
        assert_ne!(a, c);
    }
}
