//! Immutable columnar relations and their builder.

use crate::column::{Column, ColumnBuilder};
use crate::error::DataError;
use crate::index::IndexSet;
use crate::shard::{ShardMap, ShardSummaries};
use crate::types::{AttrId, Schema};
use crate::value::Value;
use qcat_pool::PoolError;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An immutable table: a schema plus one column per attribute, all the
/// same length.
///
/// Relations are wrapped in `Arc` internally so cloning is cheap and
/// result sets / category trees can hold a handle without lifetimes.
#[derive(Clone)]
pub struct Relation {
    inner: Arc<RelationInner>,
}

struct RelationInner {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Horizontal shard layout. Columns stay contiguous; the map only
    /// overlays row ranges, so the default single-shard map is
    /// byte-for-byte the unsharded layout.
    shards: ShardMap,
    /// Per-shard pruning summaries (numeric min/max, categorical
    /// code presence); present only for multi-shard relations.
    summaries: Option<ShardSummaries>,
    /// Secondary indexes, built at freeze time (builder opt-in) or on
    /// first [`Relation::build_indexes`] call; absent until then so
    /// plain relations pay nothing.
    indexes: OnceLock<IndexSet>,
}

impl Relation {
    /// Build a single-shard relation from pre-built columns;
    /// validates lengths.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, DataError> {
        Relation::from_columns_sharded(schema, columns, 0)
    }

    /// Build a relation from pre-built columns, split into horizontal
    /// shards of `shard_rows` rows (`0` = unsharded). Multi-shard
    /// relations get [`ShardSummaries`] built here, in one pass.
    pub fn from_columns_sharded(
        schema: Schema,
        columns: Vec<Column>,
        shard_rows: usize,
    ) -> Result<Self, DataError> {
        if columns.len() != schema.len() {
            return Err(DataError::ColumnLengthMismatch {
                attribute: "<schema>".into(),
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(DataError::ColumnLengthMismatch {
                    attribute: field.name.clone(),
                    expected: rows,
                    actual: col.len(),
                });
            }
        }
        let shards = ShardMap::new(shard_rows, rows);
        let summaries = if shards.is_single() {
            None
        } else {
            Some(ShardSummaries::build(&columns, &shards))
        };
        Ok(Relation {
            inner: Arc::new(RelationInner {
                schema,
                columns,
                rows,
                shards,
                summaries,
                indexes: OnceLock::new(),
            }),
        })
    }

    /// The relation's shard layout (single shard unless the builder
    /// requested otherwise).
    pub fn shards(&self) -> &ShardMap {
        &self.inner.shards
    }

    /// Per-shard pruning summaries; `None` for single-shard relations
    /// (there is nothing to skip).
    pub fn shard_summaries(&self) -> Option<&ShardSummaries> {
        self.inner.summaries.as_ref()
    }

    /// The relation's secondary indexes, when they have been built.
    pub fn indexes(&self) -> Option<&IndexSet> {
        self.inner.indexes.get()
    }

    /// Build (or fetch) the secondary indexes for every column,
    /// fanning per-shard builds out as `qcat-pool` morsels at auto
    /// thread width.
    ///
    /// Idempotent, thread-safe, and infallible: index building is an
    /// idempotent shared investment, so if the morsel build is refused
    /// (tripped budget, injected fault) this falls back to a serial,
    /// checkpoint-free build rather than failing. Budget-aware callers
    /// use [`Relation::try_build_indexes`] to get the refusal instead.
    pub fn build_indexes(&self) -> &IndexSet {
        if let Some(set) = self.inner.indexes.get() {
            return set;
        }
        let set = IndexSet::build_sharded(&self.inner.columns, &self.inner.shards, 0)
            .unwrap_or_else(|_| IndexSet::build_serial(&self.inner.columns, &self.inner.shards));
        self.inner.indexes.get_or_init(|| set)
    }

    /// Fallible [`Relation::build_indexes`] at an explicit thread
    /// width (`0` = auto): surfaces budget exhaustion and injected
    /// faults from the per-shard morsels instead of falling back.
    pub fn try_build_indexes(&self, threads: usize) -> Result<&IndexSet, PoolError> {
        if let Some(set) = self.inner.indexes.get() {
            return Ok(set);
        }
        let set = IndexSet::build_sharded(&self.inner.columns, &self.inner.shards, threads)?;
        Ok(self.inner.indexes.get_or_init(|| set))
    }

    /// A new relation over clones of this relation's columns, split
    /// into horizontal shards of `shard_rows` rows (`0` = unsharded).
    ///
    /// Indexes do **not** carry over — a different shard layout
    /// implies differently-partitioned indexes — so the result starts
    /// index-free. Benches and equivalence tests use this to compare
    /// layouts over byte-identical data.
    pub fn resharded(&self, shard_rows: usize) -> Result<Relation, DataError> {
        Relation::from_columns_sharded(
            self.inner.schema.clone(),
            self.inner.columns.clone(),
            shard_rows,
        )
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.rows
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.inner.rows == 0
    }

    /// Column of attribute `id`.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.inner.columns[id.index()]
    }

    /// Column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DataError> {
        Ok(self.column(self.inner.schema.resolve(name)?))
    }

    /// Cell value.
    pub fn value(&self, row: usize, id: AttrId) -> Result<Value, DataError> {
        self.column(id).get(row).ok_or(DataError::RowOutOfRange {
            row,
            len: self.inner.rows,
        })
    }

    /// One full row as values, in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>, DataError> {
        if row >= self.inner.rows {
            return Err(DataError::RowOutOfRange {
                row,
                len: self.inner.rows,
            });
        }
        self.inner
            .columns
            .iter()
            .map(|c| {
                c.get(row).ok_or(DataError::RowOutOfRange {
                    row,
                    len: self.inner.rows,
                })
            })
            .collect()
    }

    /// All row ids, `0..len`, as the `u32` ids used throughout qcat.
    pub fn all_row_ids(&self) -> Vec<u32> {
        (0..self.inner.rows as u32).collect()
    }

    /// True when the two handles share storage.
    pub fn same_table(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({} rows x {} cols)",
            self.inner.rows,
            self.inner.schema.len()
        )
    }
}

/// Row-at-a-time relation construction.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    build_indexes: bool,
    shard_rows: usize,
}

impl RelationBuilder {
    /// New builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// New builder pre-sized for `capacity` rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.ty, capacity))
            .collect();
        RelationBuilder {
            schema,
            builders,
            build_indexes: false,
            shard_rows: 0,
        }
    }

    /// Opt in to building the [`IndexSet`] when the relation is
    /// frozen, so it is ready before the first query arrives.
    pub fn with_indexes(mut self) -> Self {
        self.build_indexes = true;
        self
    }

    /// Split the frozen relation into horizontal shards of
    /// `shard_rows` rows (`0`, the default, keeps it unsharded).
    /// Sharding changes how work is scheduled — per-shard index-build
    /// and scan morsels, per-shard pruning — never which rows any
    /// query returns.
    pub fn with_shard_rows(mut self, shard_rows: usize) -> Self {
        self.shard_rows = shard_rows;
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append one row given values in schema order.
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), DataError> {
        if values.len() != self.schema.len() {
            return Err(DataError::ColumnLengthMismatch {
                attribute: "<row>".into(),
                expected: self.schema.len(),
                actual: values.len(),
            });
        }
        // Validate the whole row before mutating any builder so a
        // failed push cannot leave columns at different lengths.
        for (field, v) in self.schema.fields().iter().zip(values) {
            let ok = matches!(
                (field.ty, v),
                (crate::types::AttrType::Categorical, Value::Str(_))
                    | (crate::types::AttrType::Int, Value::Int(_))
                    | (
                        crate::types::AttrType::Float,
                        Value::Int(_) | Value::Float(_)
                    )
            ) && !matches!(v, Value::Float(x) if x.is_nan());
            if !ok {
                return Err(DataError::TypeMismatch {
                    attribute: field.name.clone(),
                    expected: field.ty.name(),
                    actual: v.type_name(),
                });
            }
        }
        for (i, v) in values.iter().enumerate() {
            self.builders[i].push(&self.schema.fields()[i].name, v)?;
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct mutable access to a column builder, for bulk typed loads
    /// (the data generator fills columns one at a time). The caller
    /// must keep all columns the same length; [`RelationBuilder::finish`]
    /// re-validates.
    pub fn column_builder(&mut self, id: AttrId) -> &mut ColumnBuilder {
        &mut self.builders[id.index()]
    }

    /// Freeze into an immutable [`Relation`]. When
    /// [`RelationBuilder::with_indexes`] was requested, the
    /// [`IndexSet`] is built here, at freeze time.
    pub fn finish(self) -> Result<Relation, DataError> {
        let columns: Vec<Column> = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        let relation = Relation::from_columns_sharded(self.schema, columns, self.shard_rows)?;
        if self.build_indexes {
            relation.build_indexes();
        }
        Ok(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AttrType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap()
    }

    fn sample() -> Relation {
        let mut b = RelationBuilder::with_capacity(schema(), 3);
        b.push_row(&["Redmond".into(), 250_000.0.into(), 3.into()])
            .unwrap();
        b.push_row(&["Bellevue".into(), Value::Int(300_000), 4.into()])
            .unwrap();
        b.push_row(&["Seattle".into(), 199_999.5.into(), 2.into()])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, AttrId(0)).unwrap(), Value::from("Redmond"));
        assert_eq!(r.value(1, AttrId(1)).unwrap(), Value::Float(300_000.0));
        assert_eq!(r.value(2, AttrId(2)).unwrap(), Value::Int(2));
        assert_eq!(
            r.row(1).unwrap(),
            vec![
                Value::from("Bellevue"),
                Value::Float(300_000.0),
                Value::Int(4)
            ]
        );
    }

    #[test]
    fn out_of_range_row_errors() {
        let r = sample();
        assert!(matches!(
            r.row(5),
            Err(DataError::RowOutOfRange { row: 5, len: 3 })
        ));
        assert!(r.value(5, AttrId(0)).is_err());
    }

    #[test]
    fn row_arity_checked() {
        let mut b = RelationBuilder::new(schema());
        let err = b.push_row(&["x".into()]).unwrap_err();
        assert!(matches!(err, DataError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn bad_row_leaves_builder_consistent() {
        let mut b = RelationBuilder::new(schema());
        b.push_row(&["Redmond".into(), 1.0.into(), 1.into()])
            .unwrap();
        // Second value is the wrong type; third is fine. Nothing may be
        // appended.
        let err = b
            .push_row(&["Bellevue".into(), "oops".into(), 2.into()])
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        assert_eq!(b.len(), 1);
        let r = b.finish().unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn column_by_name_resolves() {
        let r = sample();
        assert_eq!(r.column_by_name("PRICE").unwrap().len(), 3);
        assert!(r.column_by_name("zip").is_err());
    }

    #[test]
    fn mismatched_column_lengths_rejected() {
        let cols = vec![Column::Int(vec![1, 2, 3]), Column::Float(vec![1.0])];
        let s = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("b", AttrType::Float),
        ])
        .unwrap();
        assert!(matches!(
            Relation::from_columns(s, cols),
            Err(DataError::ColumnLengthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_column_count_rejected() {
        let s = Schema::new(vec![Field::new("a", AttrType::Int)]).unwrap();
        assert!(Relation::from_columns(s, vec![]).is_err());
    }

    #[test]
    fn all_row_ids_covers_relation() {
        let r = sample();
        assert_eq!(r.all_row_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn same_table_identity() {
        let r = sample();
        let r2 = r.clone();
        assert!(r.same_table(&r2));
        assert!(!r.same_table(&sample()));
    }

    #[test]
    fn empty_relation() {
        let r = RelationBuilder::new(schema()).finish().unwrap();
        assert!(r.is_empty());
        assert_eq!(r.all_row_ids(), Vec::<u32>::new());
    }

    #[test]
    fn indexes_opt_in_at_freeze() {
        let r = sample();
        assert!(r.indexes().is_none(), "plain freeze builds no indexes");
        let mut b = RelationBuilder::with_capacity(schema(), 1);
        b.push_row(&["Redmond".into(), 250_000.0.into(), 3.into()])
            .unwrap();
        let indexed = b.with_indexes().finish().unwrap();
        assert!(indexed.indexes().is_some());
        assert_eq!(
            indexed
                .indexes()
                .unwrap()
                .postings(AttrId(0))
                .unwrap()
                .rows_for_code(0),
            &[0]
        );
    }

    #[test]
    fn default_relation_is_single_shard() {
        let r = sample();
        assert!(r.shards().is_single());
        assert_eq!(r.shards().bounds(0), (0, 3));
        assert!(r.shard_summaries().is_none(), "no summaries to pay for");
    }

    #[test]
    fn with_shard_rows_splits_and_summarizes() {
        let mut b = RelationBuilder::with_capacity(schema(), 5).with_shard_rows(2);
        for i in 0..5i64 {
            b.push_row(&[
                "Redmond".into(),
                (100_000.0 + i as f64).into(),
                i.into(),
            ])
            .unwrap();
        }
        let r = b.finish().unwrap();
        assert_eq!(r.shards().shard_count(), 3);
        assert_eq!(r.shards().bounds(2), (4, 5), "last shard holds 1 row");
        let s = r.shard_summaries().expect("sharded relations summarize");
        assert_eq!(s.numeric_bounds(0, 2), Some((0.0, 1.0)));
        assert_eq!(s.numeric_bounds(2, 2), Some((4.0, 4.0)));
        // Reads are unchanged by sharding.
        assert_eq!(r.value(4, AttrId(2)).unwrap(), Value::Int(4));
        assert_eq!(r.all_row_ids(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sharded_index_build_is_per_shard() {
        let mut b = RelationBuilder::with_capacity(schema(), 4)
            .with_shard_rows(2)
            .with_indexes();
        for i in 0..4i64 {
            b.push_row(&["Redmond".into(), 1.0.into(), i.into()]).unwrap();
        }
        let r = b.finish().unwrap();
        let set = r.indexes().unwrap();
        assert_eq!(set.shard_count(), 2);
        // Shard 1's postings carry global row ids.
        assert_eq!(
            set.shards()[1].postings(AttrId(0)).unwrap().rows_for_code(0),
            &[2, 3]
        );
        // try_build_indexes returns the cached set once built.
        let cached = r.try_build_indexes(8).unwrap() as *const _;
        assert_eq!(cached, set as *const _);
    }

    #[test]
    fn build_indexes_is_idempotent_and_shared() {
        let r = sample();
        let first = r.build_indexes() as *const _;
        let again = r.build_indexes() as *const _;
        assert_eq!(first, again);
        let clone = r.clone();
        assert!(clone.indexes().is_some(), "handles share the index set");
        assert_eq!(
            r.build_indexes().sorted(AttrId(1)).unwrap().len(),
            r.len()
        );
    }
}
