//! Immutable columnar relations and their builder.

use crate::column::{Column, ColumnBuilder};
use crate::error::DataError;
use crate::index::{IndexSet, ShardIndexes};
use crate::shard::{ShardMap, ShardSummaries};
use crate::types::{AttrId, Schema};
use crate::value::Value;
use qcat_pool::PoolError;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An immutable table: a schema plus one column per attribute, all the
/// same length.
///
/// Relations are wrapped in `Arc` internally so cloning is cheap and
/// result sets / category trees can hold a handle without lifetimes.
#[derive(Clone)]
pub struct Relation {
    inner: Arc<RelationInner>,
}

struct RelationInner {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Horizontal shard layout. Columns stay contiguous; the map only
    /// overlays row ranges, so the default single-shard map is
    /// byte-for-byte the unsharded layout.
    shards: ShardMap,
    /// The builder-requested rows-per-shard (`0` = unsharded), kept
    /// apart from [`ShardMap`] so an append can lay out the grown
    /// relation under the same policy: an unsharded base stays one
    /// shard at any size, a sharded base grows new tail shards.
    shard_rows_config: usize,
    /// Per-shard pruning summaries (numeric min/max, categorical
    /// code presence); present only for multi-shard relations.
    summaries: Option<ShardSummaries>,
    /// Secondary indexes, built at freeze time (builder opt-in) or on
    /// first [`Relation::build_indexes`] call; absent until then so
    /// plain relations pay nothing.
    indexes: OnceLock<IndexSet>,
}

impl Relation {
    /// Build a single-shard relation from pre-built columns;
    /// validates lengths.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, DataError> {
        Relation::from_columns_sharded(schema, columns, 0)
    }

    /// Build a relation from pre-built columns, split into horizontal
    /// shards of `shard_rows` rows (`0` = unsharded). Multi-shard
    /// relations get [`ShardSummaries`] built here, in one pass.
    pub fn from_columns_sharded(
        schema: Schema,
        columns: Vec<Column>,
        shard_rows: usize,
    ) -> Result<Self, DataError> {
        if columns.len() != schema.len() {
            return Err(DataError::ColumnLengthMismatch {
                attribute: "<schema>".into(),
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(DataError::ColumnLengthMismatch {
                    attribute: field.name.clone(),
                    expected: rows,
                    actual: col.len(),
                });
            }
        }
        let shards = ShardMap::new(shard_rows, rows);
        let summaries = if shards.is_single() {
            None
        } else {
            Some(ShardSummaries::build(&columns, &shards))
        };
        Ok(Relation {
            inner: Arc::new(RelationInner {
                schema,
                columns,
                rows,
                shards,
                shard_rows_config: shard_rows,
                summaries,
                indexes: OnceLock::new(),
            }),
        })
    }

    /// Stage an append batch against this relation. Rows pushed into
    /// the returned [`TailAppend`] are invisible until
    /// [`TailAppend::commit`] returns a *new* [`Relation`]; this
    /// handle is never mutated, so abandoning or failing a batch
    /// leaves every existing reader byte-identical to pre-batch state.
    pub fn begin_append(&self) -> TailAppend {
        let builders = self
            .inner
            .schema
            .fields()
            .iter()
            .zip(&self.inner.columns)
            .map(|(field, col)| match col {
                // Seed categorical builders with a clone of the base
                // dictionary so tail rows intern to codes consistent
                // with the base encoding (existing values reuse their
                // code, new values extend the dictionary).
                Column::Categorical { dict, .. } => ColumnBuilder::Categorical {
                    dict: dict.clone(),
                    codes: Vec::new(),
                },
                _ => ColumnBuilder::with_capacity(field.ty, 0),
            })
            .collect();
        TailAppend {
            base: self.clone(),
            builders,
        }
    }

    /// The relation's shard layout (single shard unless the builder
    /// requested otherwise).
    pub fn shards(&self) -> &ShardMap {
        &self.inner.shards
    }

    /// Per-shard pruning summaries; `None` for single-shard relations
    /// (there is nothing to skip).
    pub fn shard_summaries(&self) -> Option<&ShardSummaries> {
        self.inner.summaries.as_ref()
    }

    /// The relation's secondary indexes, when they have been built.
    pub fn indexes(&self) -> Option<&IndexSet> {
        self.inner.indexes.get()
    }

    /// Build (or fetch) the secondary indexes for every column,
    /// fanning per-shard builds out as `qcat-pool` morsels at auto
    /// thread width.
    ///
    /// Idempotent, thread-safe, and infallible: index building is an
    /// idempotent shared investment, so if the morsel build is refused
    /// (tripped budget, injected fault) this falls back to a serial,
    /// checkpoint-free build rather than failing. Budget-aware callers
    /// use [`Relation::try_build_indexes`] to get the refusal instead.
    pub fn build_indexes(&self) -> &IndexSet {
        if let Some(set) = self.inner.indexes.get() {
            return set;
        }
        let set = IndexSet::build_sharded(&self.inner.columns, &self.inner.shards, 0)
            .unwrap_or_else(|_| IndexSet::build_serial(&self.inner.columns, &self.inner.shards));
        self.inner.indexes.get_or_init(|| set)
    }

    /// Fallible [`Relation::build_indexes`] at an explicit thread
    /// width (`0` = auto): surfaces budget exhaustion and injected
    /// faults from the per-shard morsels instead of falling back.
    pub fn try_build_indexes(&self, threads: usize) -> Result<&IndexSet, PoolError> {
        if let Some(set) = self.inner.indexes.get() {
            return Ok(set);
        }
        let set = IndexSet::build_sharded(&self.inner.columns, &self.inner.shards, threads)?;
        Ok(self.inner.indexes.get_or_init(|| set))
    }

    /// A new relation over clones of this relation's columns, split
    /// into horizontal shards of `shard_rows` rows (`0` = unsharded).
    ///
    /// Indexes do **not** carry over — a different shard layout
    /// implies differently-partitioned indexes — so the result starts
    /// index-free. Benches and equivalence tests use this to compare
    /// layouts over byte-identical data.
    pub fn resharded(&self, shard_rows: usize) -> Result<Relation, DataError> {
        Relation::from_columns_sharded(
            self.inner.schema.clone(),
            self.inner.columns.clone(),
            shard_rows,
        )
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.rows
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.inner.rows == 0
    }

    /// Column of attribute `id`.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.inner.columns[id.index()]
    }

    /// Column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DataError> {
        Ok(self.column(self.inner.schema.resolve(name)?))
    }

    /// Cell value.
    pub fn value(&self, row: usize, id: AttrId) -> Result<Value, DataError> {
        self.column(id).get(row).ok_or(DataError::RowOutOfRange {
            row,
            len: self.inner.rows,
        })
    }

    /// One full row as values, in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>, DataError> {
        if row >= self.inner.rows {
            return Err(DataError::RowOutOfRange {
                row,
                len: self.inner.rows,
            });
        }
        self.inner
            .columns
            .iter()
            .map(|c| {
                c.get(row).ok_or(DataError::RowOutOfRange {
                    row,
                    len: self.inner.rows,
                })
            })
            .collect()
    }

    /// All row ids, `0..len`, as the `u32` ids used throughout qcat.
    pub fn all_row_ids(&self) -> Vec<u32> {
        (0..self.inner.rows as u32).collect()
    }

    /// True when the two handles share storage.
    pub fn same_table(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({} rows x {} cols)",
            self.inner.rows,
            self.inner.schema.len()
        )
    }
}

/// A staged append batch: rows pushed here are invisible until
/// [`TailAppend::commit`] produces a new [`Relation`]. The base
/// relation is never touched, so rollback (dropping this value, or a
/// failed commit) is byte-identical to pre-batch state by construction.
#[derive(Debug)]
pub struct TailAppend {
    base: Relation,
    builders: Vec<ColumnBuilder>,
}

/// The outcome of a committed append: the grown relation plus a
/// digest of exactly what changed, for selective cache invalidation.
#[derive(Debug)]
pub struct AppendCommit {
    /// The relation with the batch applied (base rows first, appended
    /// rows after, in push order).
    pub relation: Relation,
    /// Row id of the first appended row (== base row count).
    pub first_row: usize,
    /// Number of rows the batch appended.
    pub added: usize,
    /// Per-column min/max/code-presence digest of the appended rows,
    /// as one synthetic shard (query with `shard = 0`). Codes refer to
    /// the *committed* relation's dictionaries.
    pub delta: ShardSummaries,
}

impl TailAppend {
    /// The relation this batch was staged against.
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// Rows staged so far.
    pub fn staged(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// Stage one row given values in schema order. Validates the whole
    /// row before touching any builder, so a failed push stages
    /// nothing (all columns stay the same length).
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), DataError> {
        let schema = self.base.schema().clone();
        validate_row(&schema, values)?;
        for (i, v) in values.iter().enumerate() {
            self.builders[i].push(&schema.fields()[i].name, v)?;
        }
        Ok(())
    }

    /// Commit the staged batch: assemble a **new** relation holding
    /// base rows plus the tail, with incrementally maintained shard
    /// summaries and secondary indexes.
    ///
    /// - Shard layout follows the base policy: an unsharded base stays
    ///   one shard; a sharded base keeps its rows-per-shard and grows
    ///   tail shards.
    /// - Summaries and indexes of base shards whose row range is
    ///   unchanged carry over (indexes by `Arc`, no copy); only the
    ///   last partial shard and new tail shards are rebuilt. Indexes
    ///   are maintained only when the base had them built.
    /// - Fault sites `data.append` (before assembly) and
    ///   `data.index.delta` (before the delta index build) abort the
    ///   commit with [`DataError::Fault`]; the base relation is
    ///   untouched either way.
    pub fn commit(self) -> Result<AppendCommit, DataError> {
        if let Some(fault) = qcat_fault::point("data.append") {
            return Err(DataError::Fault { site: fault.site });
        }
        let base = &self.base.inner;
        let added = self.builders.first().map_or(0, ColumnBuilder::len);
        let first_row = base.rows;
        let new_rows = base.rows + added;
        let mut span = qcat_obs::span!("data.append.commit", base_rows = base.rows, added = added);
        let columns: Vec<Column> = base
            .columns
            .iter()
            .zip(self.builders)
            .map(|(col, b)| append_column(col, b))
            .collect();
        let shards = ShardMap::new(base.shard_rows_config, new_rows);
        // A base shard carries over iff the new layout gives it the
        // exact same row range (append-only: those rows are unchanged).
        // The last partial shard and any new tail shards are dirty.
        let first_dirty = (0..shards.shard_count())
            .take_while(|&s| {
                s < base.shards.shard_count() && shards.bounds(s) == base.shards.bounds(s)
            })
            .count();
        let summaries = if shards.is_single() {
            None
        } else if let Some(existing) = &base.summaries {
            Some(existing.extended(&columns, &shards, first_dirty))
        } else {
            Some(ShardSummaries::build(&columns, &shards))
        };
        let delta = ShardSummaries::build_range(&columns, first_row, new_rows);
        let indexes = OnceLock::new();
        if let Some(base_set) = base.indexes.get() {
            if let Some(fault) = qcat_fault::point("data.index.delta") {
                return Err(DataError::Fault { site: fault.site });
            }
            let mut shard_indexes: Vec<Arc<ShardIndexes>> =
                base_set.shards()[..first_dirty.min(base_set.shard_count())].to_vec();
            for s in shard_indexes.len()..shards.shard_count() {
                let (start, end) = shards.bounds(s);
                shard_indexes.push(Arc::new(ShardIndexes::build(&columns, start, end)));
            }
            let _ = indexes.set(IndexSet::from_shards(shard_indexes));
        }
        if qcat_obs::active() {
            span.set("dirty_shards", shards.shard_count() - first_dirty);
        }
        let relation = Relation {
            inner: Arc::new(RelationInner {
                schema: base.schema.clone(),
                columns,
                rows: new_rows,
                shards,
                shard_rows_config: base.shard_rows_config,
                summaries,
                indexes,
            }),
        };
        Ok(AppendCommit {
            relation,
            first_row,
            added,
            delta,
        })
    }
}

/// Extend a base column with a staged tail builder into a new column.
fn append_column(base: &Column, tail: ColumnBuilder) -> Column {
    match (base, tail.finish()) {
        (Column::Categorical { codes, .. }, Column::Categorical { dict, codes: tail_codes }) => {
            // The tail dictionary was seeded from the base dictionary,
            // so it is a superset with identical codes for base values.
            let mut all = Vec::with_capacity(codes.len() + tail_codes.len());
            all.extend_from_slice(codes);
            all.extend_from_slice(&tail_codes);
            Column::Categorical { dict, codes: all }
        }
        (Column::Int(v), Column::Int(t)) => {
            let mut all = Vec::with_capacity(v.len() + t.len());
            all.extend_from_slice(v);
            all.extend_from_slice(&t);
            Column::Int(all)
        }
        (Column::Float(v), Column::Float(t)) => {
            let mut all = Vec::with_capacity(v.len() + t.len());
            all.extend_from_slice(v);
            all.extend_from_slice(&t);
            Column::Float(all)
        }
        // Builders are constructed from the base columns in
        // `begin_append`, so the types always line up; an empty tail of
        // the right shape is the safe fallback.
        (base, _) => base.clone(),
    }
}

/// Validate one row of `values` against `schema` without mutating
/// anything — shared by [`RelationBuilder::push_row`] and
/// [`TailAppend::push_row`] so both are all-or-nothing per row.
fn validate_row(schema: &Schema, values: &[Value]) -> Result<(), DataError> {
    if values.len() != schema.len() {
        return Err(DataError::ColumnLengthMismatch {
            attribute: "<row>".into(),
            expected: schema.len(),
            actual: values.len(),
        });
    }
    for (field, v) in schema.fields().iter().zip(values) {
        let ok = matches!(
            (field.ty, v),
            (crate::types::AttrType::Categorical, Value::Str(_))
                | (crate::types::AttrType::Int, Value::Int(_))
                | (
                    crate::types::AttrType::Float,
                    Value::Int(_) | Value::Float(_)
                )
        ) && !matches!(v, Value::Float(x) if x.is_nan());
        if !ok {
            return Err(DataError::TypeMismatch {
                attribute: field.name.clone(),
                expected: field.ty.name(),
                actual: v.type_name(),
            });
        }
    }
    Ok(())
}

/// Row-at-a-time relation construction.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    build_indexes: bool,
    shard_rows: usize,
    cluster: Option<AttrId>,
}

impl RelationBuilder {
    /// New builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// New builder pre-sized for `capacity` rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.ty, capacity))
            .collect();
        RelationBuilder {
            schema,
            builders,
            build_indexes: false,
            shard_rows: 0,
            cluster: None,
        }
    }

    /// Opt in to building the [`IndexSet`] when the relation is
    /// frozen, so it is ready before the first query arrives.
    pub fn with_indexes(mut self) -> Self {
        self.build_indexes = true;
        self
    }

    /// Split the frozen relation into horizontal shards of
    /// `shard_rows` rows (`0`, the default, keeps it unsharded).
    /// Sharding changes how work is scheduled — per-shard index-build
    /// and scan morsels, per-shard pruning — never which rows any
    /// query returns.
    pub fn with_shard_rows(mut self, shard_rows: usize) -> Self {
        self.shard_rows = shard_rows;
        self
    }

    /// Reorder rows by `attr` at freeze time (stable: ties keep input
    /// order), so shard min/max and code-presence summaries cover
    /// narrow, disjoint value ranges and actually prune. Categorical
    /// attributes cluster lexicographically, numeric ones by value.
    /// Row *ids* are assigned after the reorder, so every downstream
    /// guarantee (row id = table order) is untouched — only the
    /// physical placement of tuples changes.
    pub fn cluster_by(mut self, attr: AttrId) -> Self {
        self.cluster = Some(attr);
        self
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append one row given values in schema order. The whole row is
    /// validated before any builder mutates, so a failed push cannot
    /// leave columns at different lengths.
    pub fn push_row(&mut self, values: &[Value]) -> Result<(), DataError> {
        validate_row(&self.schema, values)?;
        for (i, v) in values.iter().enumerate() {
            self.builders[i].push(&self.schema.fields()[i].name, v)?;
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct mutable access to a column builder, for bulk typed loads
    /// (the data generator fills columns one at a time). The caller
    /// must keep all columns the same length; [`RelationBuilder::finish`]
    /// re-validates.
    pub fn column_builder(&mut self, id: AttrId) -> &mut ColumnBuilder {
        &mut self.builders[id.index()]
    }

    /// Freeze into an immutable [`Relation`]. When
    /// [`RelationBuilder::with_indexes`] was requested, the
    /// [`IndexSet`] is built here, at freeze time.
    pub fn finish(self) -> Result<Relation, DataError> {
        let mut columns: Vec<Column> = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        if let Some(attr) = self.cluster {
            let key = columns
                .get(attr.index())
                .ok_or(DataError::AttributeIdOutOfRange(attr.index()))?;
            let perm = cluster_permutation(key);
            for col in &mut columns {
                *col = gather(col, &perm);
            }
        }
        let relation = Relation::from_columns_sharded(self.schema, columns, self.shard_rows)?;
        if self.build_indexes {
            relation.build_indexes();
        }
        Ok(relation)
    }
}

/// The row permutation that clusters `col`'s values: row positions
/// sorted by value (categorical: lexicographic by dictionary string;
/// numeric: by value), stable on input order.
fn cluster_permutation(col: &Column) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..col.len() as u32).collect();
    match col {
        Column::Categorical { dict, codes } => {
            // Codes intern in first-seen order, so rank them by their
            // string value first — clustered shards then cover
            // contiguous lexicographic ranges.
            let mut order: Vec<u32> = (0..dict.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                dict.value_unchecked(a).cmp(dict.value_unchecked(b))
            });
            let mut rank = vec![0u32; dict.len()];
            for (i, &c) in order.iter().enumerate() {
                rank[c as usize] = i as u32;
            }
            perm.sort_unstable_by_key(|&r| (rank[codes[r as usize] as usize], r));
        }
        Column::Int(v) => perm.sort_unstable_by_key(|&r| (v[r as usize], r)),
        Column::Float(v) => perm.sort_unstable_by(|&a, &b| {
            v[a as usize]
                .total_cmp(&v[b as usize])
                .then(a.cmp(&b))
        }),
    }
    perm
}

/// Gather `col`'s rows in `perm` order into a new column.
fn gather(col: &Column, perm: &[u32]) -> Column {
    match col {
        Column::Categorical { dict, codes } => Column::Categorical {
            dict: dict.clone(),
            codes: perm.iter().map(|&r| codes[r as usize]).collect(),
        },
        Column::Int(v) => Column::Int(perm.iter().map(|&r| v[r as usize]).collect()),
        Column::Float(v) => Column::Float(perm.iter().map(|&r| v[r as usize]).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AttrType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap()
    }

    fn sample() -> Relation {
        let mut b = RelationBuilder::with_capacity(schema(), 3);
        b.push_row(&["Redmond".into(), 250_000.0.into(), 3.into()])
            .unwrap();
        b.push_row(&["Bellevue".into(), Value::Int(300_000), 4.into()])
            .unwrap();
        b.push_row(&["Seattle".into(), 199_999.5.into(), 2.into()])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, AttrId(0)).unwrap(), Value::from("Redmond"));
        assert_eq!(r.value(1, AttrId(1)).unwrap(), Value::Float(300_000.0));
        assert_eq!(r.value(2, AttrId(2)).unwrap(), Value::Int(2));
        assert_eq!(
            r.row(1).unwrap(),
            vec![
                Value::from("Bellevue"),
                Value::Float(300_000.0),
                Value::Int(4)
            ]
        );
    }

    #[test]
    fn out_of_range_row_errors() {
        let r = sample();
        assert!(matches!(
            r.row(5),
            Err(DataError::RowOutOfRange { row: 5, len: 3 })
        ));
        assert!(r.value(5, AttrId(0)).is_err());
    }

    #[test]
    fn row_arity_checked() {
        let mut b = RelationBuilder::new(schema());
        let err = b.push_row(&["x".into()]).unwrap_err();
        assert!(matches!(err, DataError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn bad_row_leaves_builder_consistent() {
        let mut b = RelationBuilder::new(schema());
        b.push_row(&["Redmond".into(), 1.0.into(), 1.into()])
            .unwrap();
        // Second value is the wrong type; third is fine. Nothing may be
        // appended.
        let err = b
            .push_row(&["Bellevue".into(), "oops".into(), 2.into()])
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        assert_eq!(b.len(), 1);
        let r = b.finish().unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn column_by_name_resolves() {
        let r = sample();
        assert_eq!(r.column_by_name("PRICE").unwrap().len(), 3);
        assert!(r.column_by_name("zip").is_err());
    }

    #[test]
    fn mismatched_column_lengths_rejected() {
        let cols = vec![Column::Int(vec![1, 2, 3]), Column::Float(vec![1.0])];
        let s = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("b", AttrType::Float),
        ])
        .unwrap();
        assert!(matches!(
            Relation::from_columns(s, cols),
            Err(DataError::ColumnLengthMismatch { .. })
        ));
    }

    #[test]
    fn wrong_column_count_rejected() {
        let s = Schema::new(vec![Field::new("a", AttrType::Int)]).unwrap();
        assert!(Relation::from_columns(s, vec![]).is_err());
    }

    #[test]
    fn all_row_ids_covers_relation() {
        let r = sample();
        assert_eq!(r.all_row_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn same_table_identity() {
        let r = sample();
        let r2 = r.clone();
        assert!(r.same_table(&r2));
        assert!(!r.same_table(&sample()));
    }

    #[test]
    fn empty_relation() {
        let r = RelationBuilder::new(schema()).finish().unwrap();
        assert!(r.is_empty());
        assert_eq!(r.all_row_ids(), Vec::<u32>::new());
    }

    #[test]
    fn indexes_opt_in_at_freeze() {
        let r = sample();
        assert!(r.indexes().is_none(), "plain freeze builds no indexes");
        let mut b = RelationBuilder::with_capacity(schema(), 1);
        b.push_row(&["Redmond".into(), 250_000.0.into(), 3.into()])
            .unwrap();
        let indexed = b.with_indexes().finish().unwrap();
        assert!(indexed.indexes().is_some());
        assert_eq!(
            indexed
                .indexes()
                .unwrap()
                .postings(AttrId(0))
                .unwrap()
                .rows_for_code(0),
            &[0]
        );
    }

    #[test]
    fn default_relation_is_single_shard() {
        let r = sample();
        assert!(r.shards().is_single());
        assert_eq!(r.shards().bounds(0), (0, 3));
        assert!(r.shard_summaries().is_none(), "no summaries to pay for");
    }

    #[test]
    fn with_shard_rows_splits_and_summarizes() {
        let mut b = RelationBuilder::with_capacity(schema(), 5).with_shard_rows(2);
        for i in 0..5i64 {
            b.push_row(&[
                "Redmond".into(),
                (100_000.0 + i as f64).into(),
                i.into(),
            ])
            .unwrap();
        }
        let r = b.finish().unwrap();
        assert_eq!(r.shards().shard_count(), 3);
        assert_eq!(r.shards().bounds(2), (4, 5), "last shard holds 1 row");
        let s = r.shard_summaries().expect("sharded relations summarize");
        assert_eq!(s.numeric_bounds(0, 2), Some((0.0, 1.0)));
        assert_eq!(s.numeric_bounds(2, 2), Some((4.0, 4.0)));
        // Reads are unchanged by sharding.
        assert_eq!(r.value(4, AttrId(2)).unwrap(), Value::Int(4));
        assert_eq!(r.all_row_ids(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sharded_index_build_is_per_shard() {
        let mut b = RelationBuilder::with_capacity(schema(), 4)
            .with_shard_rows(2)
            .with_indexes();
        for i in 0..4i64 {
            b.push_row(&["Redmond".into(), 1.0.into(), i.into()]).unwrap();
        }
        let r = b.finish().unwrap();
        let set = r.indexes().unwrap();
        assert_eq!(set.shard_count(), 2);
        // Shard 1's postings carry global row ids.
        assert_eq!(
            set.shards()[1].postings(AttrId(0)).unwrap().rows_for_code(0),
            &[2, 3]
        );
        // try_build_indexes returns the cached set once built.
        let cached = r.try_build_indexes(8).unwrap() as *const _;
        assert_eq!(cached, set as *const _);
    }

    #[test]
    fn append_carries_clean_shard_indexes_by_arc() {
        let mut b = RelationBuilder::with_capacity(schema(), 5)
            .with_shard_rows(2)
            .with_indexes();
        for i in 0..5i64 {
            b.push_row(&["Redmond".into(), (10.0 * i as f64).into(), i.into()])
                .unwrap();
        }
        let base = b.finish().unwrap();
        let mut tail = base.begin_append();
        tail.push_row(&["Kirkland".into(), 99.0.into(), 9.into()])
            .unwrap();
        tail.push_row(&["Kirkland".into(), 98.0.into(), 8.into()])
            .unwrap();
        assert_eq!(tail.staged(), 2);
        assert!(tail.base().same_table(&base));
        let commit = tail.commit().unwrap();
        let grown = commit.relation;
        assert_eq!(grown.len(), 7);
        assert_eq!(grown.shards().shard_count(), 4);
        let (base_set, grown_set) = (base.indexes().unwrap(), grown.indexes().unwrap());
        // Shards 0 and 1 cover unchanged row ranges: shared by Arc.
        for s in 0..2 {
            assert!(
                Arc::ptr_eq(&base_set.shards()[s], &grown_set.shards()[s]),
                "clean shard {s} must carry over without a rebuild"
            );
        }
        // The old partial shard 2 and new shard 3 are freshly built,
        // with global row ids and the grown dictionary.
        let (dict, _) = grown.column(AttrId(0)).categorical().unwrap();
        let kirkland = dict.lookup("Kirkland").unwrap();
        assert_eq!(
            grown_set.shards()[2].postings(AttrId(0)).unwrap().rows_for_code(kirkland),
            &[5]
        );
        assert_eq!(
            grown_set.shards()[3].postings(AttrId(0)).unwrap().rows_for_code(kirkland),
            &[6]
        );
        // Carried base shards conservatively report no Kirkland rows.
        assert_eq!(
            grown_set.shards()[0].postings(AttrId(0)).unwrap().rows_for_code(kirkland),
            &[] as &[u32]
        );
        // Incrementally maintained state matches a from-scratch build.
        let rebuilt = grown.resharded(2).unwrap();
        let fresh = rebuilt.build_indexes();
        for s in 0..4 {
            let (a, b) = (&grown_set.shards()[s], &fresh.shards()[s]);
            assert_eq!(
                a.sorted(AttrId(1)).unwrap().slice_in(f64::NEG_INFINITY, true, f64::INFINITY, true),
                b.sorted(AttrId(1)).unwrap().slice_in(f64::NEG_INFINITY, true, f64::INFINITY, true),
                "shard {s} sorted projection"
            );
        }
        // Summaries carried + extended: tail shard bounds are tight.
        let sums = grown.shard_summaries().unwrap();
        assert_eq!(sums.shard_count(), 4);
        assert_eq!(sums.numeric_bounds(3, 1), Some((98.0, 98.0)));
        assert!(sums.may_have_code(2, 0, kirkland));
        assert!(!sums.may_have_code(0, 0, kirkland));
    }

    #[test]
    fn append_to_unsharded_base_stays_single_shard() {
        let base = sample();
        base.build_indexes();
        let mut tail = base.begin_append();
        tail.push_row(&["Kirkland".into(), 1.0.into(), 1.into()])
            .unwrap();
        let grown = tail.commit().unwrap().relation;
        assert!(grown.shards().is_single());
        assert!(grown.shard_summaries().is_none());
        assert_eq!(grown.len(), 4);
        // The single shard was dirty: indexes rebuilt over all rows.
        let s = grown.indexes().unwrap().sorted(AttrId(1)).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(grown.row(3).unwrap()[0], Value::from("Kirkland"));
        // Base relation is untouched.
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn append_without_base_indexes_stays_index_free() {
        let base = sample();
        let mut tail = base.begin_append();
        tail.push_row(&["Kirkland".into(), 1.0.into(), 1.into()])
            .unwrap();
        let grown = tail.commit().unwrap().relation;
        assert!(grown.indexes().is_none(), "no indexes to maintain");
    }

    #[test]
    fn cluster_by_reorders_for_tight_shard_summaries() {
        // Interleaved values: without clustering, every shard spans the
        // full value range and nothing prunes.
        let mut b = RelationBuilder::with_capacity(schema(), 8)
            .with_shard_rows(4)
            .cluster_by(AttrId(0));
        for i in 0..8i64 {
            let city = if i % 2 == 0 { "Aurora" } else { "Zenith" };
            b.push_row(&[city.into(), (i as f64).into(), i.into()])
                .unwrap();
        }
        let r = b.finish().unwrap();
        let (dict, codes) = r.column(AttrId(0)).categorical().unwrap();
        // Lexicographic clustering: all Aurora rows first.
        let aurora = dict.lookup("Aurora").unwrap();
        assert!(codes[..4].iter().all(|&c| c == aurora));
        assert!(codes[4..].iter().all(|&c| c != aurora));
        // Ties keep input order: prices stay ascending within a city.
        let prices = r.column(AttrId(1)).floats().unwrap();
        assert_eq!(prices, &[0.0, 2.0, 4.0, 6.0, 1.0, 3.0, 5.0, 7.0]);
        // Summaries now prove absence per shard.
        let s = r.shard_summaries().unwrap();
        assert!(s.may_have_code(0, 0, aurora));
        assert!(!s.may_have_code(1, 0, aurora));
    }

    #[test]
    fn cluster_by_numeric_sorts_by_value() {
        let mut b = RelationBuilder::with_capacity(schema(), 4).cluster_by(AttrId(1));
        for p in [9.0, 1.0, 5.0, 3.0] {
            b.push_row(&["x".into(), p.into(), 0.into()]).unwrap();
        }
        let r = b.finish().unwrap();
        assert_eq!(r.column(AttrId(1)).floats().unwrap(), &[1.0, 3.0, 5.0, 9.0]);
        let mut bad = RelationBuilder::new(schema()).cluster_by(AttrId(9));
        bad.push_row(&["x".into(), 1.0.into(), 0.into()]).unwrap();
        assert!(matches!(
            bad.finish(),
            Err(DataError::AttributeIdOutOfRange(9))
        ));
    }

    #[test]
    fn build_indexes_is_idempotent_and_shared() {
        let r = sample();
        let first = r.build_indexes() as *const _;
        let again = r.build_indexes() as *const _;
        assert_eq!(first, again);
        let clone = r.clone();
        assert!(clone.indexes().is_some(), "handles share the index set");
        assert_eq!(
            r.build_indexes().sorted(AttrId(1)).unwrap().len(),
            r.len()
        );
    }
}
