//! Field values carried by spans and events.

use std::fmt;

/// A typed field value. Conversions exist for the integer, float,
/// string, and bool types the pipeline records.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so large counters survive).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Render as a JSON fragment (numbers bare, strings escaped).
    pub fn to_json(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::Float(v) => {
                if v.is_finite() {
                    // Guarantee the token re-parses as a JSON number.
                    let s = format!("{v}");
                    if s.contains(['.', 'e', 'E']) {
                        s
                    } else {
                        format!("{s}.0")
                    }
                } else {
                    // JSON has no NaN/Inf; encode as a string.
                    format!("\"{v}\"")
                }
            }
            Value::Str(v) => crate::json::escape(v),
            Value::Bool(v) => v.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v.into())
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3usize), Value::UInt(3));
        assert_eq!(Value::from(-2i64), Value::Int(-2));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("x"), Value::Str("x".to_string()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn json_rendering_reparses() {
        for (v, expect) in [
            (Value::Int(-4), "-4"),
            (Value::UInt(u64::MAX), "18446744073709551615"),
            (Value::Float(2.0), "2.0"),
            (Value::Float(0.25), "0.25"),
            (Value::Bool(false), "false"),
            (Value::Str("a\"b".into()), "\"a\\\"b\""),
        ] {
            assert_eq!(v.to_json(), expect);
        }
        // Non-finite floats fall back to strings, keeping lines valid.
        assert_eq!(Value::Float(f64::NAN).to_json(), "\"NaN\"");
    }
}
