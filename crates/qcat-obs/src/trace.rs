//! Query-scoped causal trace identity.
//!
//! A *trace* groups every span and event one logical request produced,
//! across every thread that worked on it. A [`TraceScope`] allocates a
//! fresh trace id and installs it thread-locally; spans opened while it
//! is current carry that id plus their own span id and their parent's
//! span id, so the flat JSONL stream reconstructs into a causal tree.
//!
//! Worker threads join the caller's trace through [`capture_parent`] /
//! [`ParentContext::scope`] — the same capture/install pattern
//! `qcat_fault::Propagation` uses for budgets — so `qcat-pool` work
//! items open real parented spans instead of being banned from the
//! trace stream.
//!
//! When tracing is inactive ([`crate::active`] is false),
//! [`TraceScope::start`] allocates nothing: no ids are drawn from the
//! process-wide counters and the thread-local trace id stays 0. That
//! keeps the disabled path at one flag read plus one relaxed atomic
//! load.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder::{current_recorder, Recorder};

/// Process-wide trace id allocator; 0 means "no trace".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide span id allocator; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The trace id spans opened on this thread belong to (0 = none).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    /// (trace id, span id) of this thread's open spans, innermost
    /// last. The trace id rides along so parenthood never crosses a
    /// trace boundary: a span opened inside a [`TraceScope`] that is
    /// nested under an untraced (or differently-traced) ancestor span
    /// is a root of its own trace, keeping every trace's causal tree
    /// self-contained — a flight dump audits standalone.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Inherited parent span id for spans opened while this thread's
    /// own stack is empty — how a pool worker's first span parents to
    /// the caller's phase span.
    static PARENT_FLOOR: Cell<u64> = const { Cell::new(0) };
}

/// Allocate a fresh span id.
pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Total span ids ever allocated (test hook for the disabled-path
/// overhead pin).
#[doc(hidden)]
pub fn span_ids_allocated() -> u64 {
    NEXT_SPAN_ID.load(Ordering::Relaxed).saturating_sub(1)
}

/// The trace id current on this thread, 0 when none.
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// The span id a newly opened span (or emitted event) should report as
/// its parent: the innermost open span on this thread *belonging to
/// the current trace*, else the inherited floor (0 = root of its
/// trace). An open span of another trace (or of no trace) is not a
/// parent — traces stay self-contained.
pub(crate) fn current_parent() -> u64 {
    let trace = current_trace();
    match SPAN_STACK.with(|s| s.borrow().last().copied()) {
        Some((t, id)) if t == trace => id,
        _ => PARENT_FLOOR.with(Cell::get),
    }
}

pub(crate) fn push_span(trace: u64, id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push((trace, id)));
}

pub(crate) fn pop_span() {
    SPAN_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

/// RAII scope that makes every span/event on this thread (and on
/// workers entered via [`ParentContext::scope`]) part of one trace.
///
/// Dropping the scope restores the previous trace id and hands the
/// finished trace to the recorder's flight recorder, which decides
/// whether to dump it (anomaly, slow, or sampled) or discard it.
#[must_use = "a trace ends when its scope drops — bind it with `let _trace = ...`"]
pub struct TraceScope {
    id: u64,
    prev: u64,
    rec: Option<Recorder>,
}

impl TraceScope {
    /// Start a new trace on this thread. When tracing is disabled the
    /// scope is inert: id 0, nothing allocated, nothing restored.
    pub fn start() -> TraceScope {
        if !crate::active() {
            return TraceScope {
                id: 0,
                prev: 0,
                rec: None,
            };
        }
        let rec = current_recorder();
        let id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_TRACE.with(|c| c.replace(id));
        if let Some(rec) = &rec {
            rec.trace_begin(id);
        }
        TraceScope { id, prev, rec }
    }

    /// This trace's id (0 when tracing was disabled at start).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Mark this trace anomalous, guaranteeing a flight-recorder dump
    /// when the scope ends. Callers use this for outcome-based
    /// sampling: shed/degraded/errored/over-threshold requests are
    /// dumped in full regardless of the healthy sampling rate.
    pub fn mark(&self, reason: &str) {
        if let Some(rec) = &self.rec {
            rec.mark_trace(self.id, reason);
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT_TRACE.with(|c| c.set(self.prev));
        if let Some(rec) = &self.rec {
            rec.trace_end(self.id);
        }
    }
}

/// A captured (trace id, parent span id) pair, installable on another
/// thread so its spans join the capturing thread's trace. Mirrors
/// `qcat_fault::Propagation`: capture on the caller, `scope` in the
/// worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParentContext {
    trace: u64,
    parent: u64,
}

/// Capture the current thread's trace id and innermost span id for
/// propagation into a worker thread.
pub fn capture_parent() -> ParentContext {
    ParentContext {
        trace: current_trace(),
        parent: current_parent(),
    }
}

impl ParentContext {
    /// Run `f` with this context installed: spans `f` opens while its
    /// own stack is empty report the captured span as their parent and
    /// carry the captured trace id. The previous context is restored
    /// on every exit path, including panic unwind.
    pub fn scope<T>(&self, f: impl FnOnce() -> T) -> T {
        struct Restore {
            trace: u64,
            floor: u64,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_TRACE.with(|c| c.set(self.trace));
                PARENT_FLOOR.with(|c| c.set(self.floor));
            }
        }
        let _restore = Restore {
            trace: CURRENT_TRACE.with(|c| c.replace(self.trace)),
            floor: PARENT_FLOOR.with(|c| c.replace(self.parent)),
        };
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{with_recorder, Recorder};

    #[test]
    fn inactive_scope_allocates_no_ids() {
        // No recorder on this thread; unless another test installed a
        // process global (they don't — the obs unit tests use
        // thread-scoped recorders), the scope must stay inert.
        if crate::active() {
            return; // global recorder installed elsewhere; pin is moot
        }
        let before = span_ids_allocated();
        {
            let t = TraceScope::start();
            assert_eq!(t.id(), 0);
            let _s = crate::span!("t.trace.noop");
        }
        assert_eq!(current_trace(), 0);
        assert_eq!(
            span_ids_allocated(),
            before,
            "disabled path must not draw ids"
        );
    }

    #[test]
    fn scopes_nest_and_restore() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            assert_eq!(current_trace(), 0);
            let outer = TraceScope::start();
            assert_ne!(outer.id(), 0);
            assert_eq!(current_trace(), outer.id());
            {
                let inner = TraceScope::start();
                assert_ne!(inner.id(), outer.id());
                assert_eq!(current_trace(), inner.id());
            }
            assert_eq!(current_trace(), outer.id());
        });
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn parent_context_installs_trace_and_floor() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let _t = TraceScope::start();
            let _outer = crate::span!("t.trace.outer");
            let ctx = capture_parent();
            // Simulate a worker: fresh logical stack via scope.
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert_eq!(current_trace(), 0, "worker starts untraced");
                    ctx.scope(|| {
                        assert_eq!(current_trace(), ctx.trace);
                        assert_eq!(current_parent(), ctx.parent);
                    });
                    assert_eq!(current_trace(), 0, "context restored");
                });
            });
        });
    }

    #[test]
    fn spans_carry_trace_span_parent_ids() {
        let rec = Recorder::buffered();
        let trace_id = with_recorder(&rec, || {
            let t = TraceScope::start();
            let _a = crate::span!("t.trace.a");
            {
                let _b = crate::span!("t.trace.b");
            }
            t.id()
        });
        let log = rec.drain_jsonl();
        let lines: Vec<_> = log.lines().map(|l| crate::json::parse(l).expect("jsonl")).collect();
        assert_eq!(lines.len(), 4);
        let num = |v: &crate::json::JsonValue, k: &str| {
            v.get(k).and_then(crate::json::JsonValue::as_f64).unwrap_or(-1.0) as i64
        };
        // Every line belongs to the trace.
        for l in &lines {
            assert_eq!(num(l, "trace"), trace_id as i64);
        }
        let a_open = &lines[0];
        let b_open = &lines[1];
        let b_close = &lines[2];
        assert_eq!(num(a_open, "parent"), 0, "a is a trace root");
        assert_eq!(num(b_open, "parent"), num(a_open, "span"), "b parents to a");
        assert_eq!(num(b_close, "span"), num(b_open, "span"));
        assert_ne!(num(a_open, "span"), num(b_open, "span"));
    }
}
