//! The anomaly flight recorder: bounded per-trace capture with
//! tail-based sampling.
//!
//! While a trace is open (see [`crate::trace::TraceScope`]) the
//! recorder keeps a copy of its JSONL lines in a fixed-capacity
//! buffer. When the trace ends, its fate is decided *by how it ended*
//! — tail-based sampling:
//!
//! - **Anomalous** traces (a `serve.shed`/`serve.degraded` event, any
//!   `fault.*`/`budget.exceeded`-family counter, or an explicit
//!   [`crate::trace::TraceScope::mark`]) are dumped in full.
//! - **Slow** traces — total duration at or above
//!   [`FlightConfig::slow_ns`] — are dumped in full.
//! - **Healthy** traces are dumped at one in
//!   [`FlightConfig::sample_every`] (0 disables sampling) and
//!   otherwise discarded, buffers reused.
//!
//! Dumps land in a bounded ring inside the recorder
//! ([`crate::Recorder::flight_dumps`]); the oldest dump is evicted
//! when the ring is full. Every buffer is capacity-capped so a
//! runaway trace cannot grow memory without bound — lines beyond
//! [`FlightConfig::per_trace_line_cap`] are counted, not stored.

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::fmt;

/// Flight-recorder tunables. The defaults keep only anomalous traces:
/// no slow threshold, no healthy sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Master switch. Even when `true`, capture only happens on
    /// recorders that emit events (there are no lines to keep
    /// otherwise) and only inside a `TraceScope`.
    pub enabled: bool,
    /// How many finished dumps the ring retains (oldest evicted).
    pub dump_capacity: usize,
    /// Per-trace line cap; lines beyond it are counted as truncated.
    pub per_trace_line_cap: usize,
    /// Dump any trace lasting at least this many nanoseconds.
    /// `u64::MAX` disables the slow path.
    pub slow_ns: u64,
    /// Dump one in this many *healthy* traces (0 = none).
    pub sample_every: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            enabled: true,
            dump_capacity: 32,
            per_trace_line_cap: 4096,
            slow_ns: u64::MAX,
            sample_every: 0,
        }
    }
}

/// Why a trace was dumped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpReason {
    /// The trace ended anomalously; the payload is the first anomaly
    /// observed (an event/counter name, or a caller-supplied mark).
    Anomaly(String),
    /// Total trace duration reached [`FlightConfig::slow_ns`].
    Slow,
    /// A healthy trace chosen by the sampling rate.
    Sampled,
}

impl fmt::Display for DumpReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpReason::Anomaly(what) => write!(f, "anomaly:{what}"),
            DumpReason::Slow => f.write_str("slow"),
            DumpReason::Sampled => f.write_str("sampled"),
        }
    }
}

/// One dumped trace: the full causal span tree as raw JSONL lines.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The trace id every line carries.
    pub trace: u64,
    /// Why this trace was kept.
    pub reason: DumpReason,
    /// Wall-clock duration of the whole trace in nanoseconds.
    pub dur_ns: u64,
    /// The trace's JSONL lines, in emission (seq) order.
    pub lines: Vec<String>,
    /// Lines dropped because the per-trace buffer cap was reached.
    pub truncated: usize,
}

impl FlightDump {
    /// The dump as one JSONL document (auditable by
    /// `qcat-lint --audit-trace`).
    pub fn to_jsonl(&self) -> String {
        self.lines.join("\n")
    }

    /// Per-phase breakdown: total `dur_ns` of the dump's `span_close`
    /// lines grouped by span name, sorted by descending total. This is
    /// what a slow-query log reports as "where the time went".
    pub fn phase_totals(&self) -> Vec<(String, u64)> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for line in &self.lines {
            let Ok(v) = crate::json::parse(line) else {
                continue;
            };
            if v.get("kind").and_then(JsonValue::as_str) != Some("span_close") {
                continue;
            }
            let (Some(name), Some(dur)) = (
                v.get("name").and_then(JsonValue::as_str),
                v.get("dur_ns").and_then(JsonValue::as_f64),
            ) else {
                continue;
            };
            if dur >= 0.0 {
                *totals.entry(name.to_string()).or_insert(0) += dur as u64;
            }
        }
        let mut out: Vec<(String, u64)> = totals.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Whether a counter or event name marks its trace anomalous: the
/// governance/failure taxonomy from PR 5 plus pool cancellation.
pub(crate) fn is_anomaly_signal(name: &str) -> bool {
    name.starts_with("fault.")
        || matches!(
            name,
            "budget.exceeded"
                | "pool.cancelled"
                | "serve.shed"
                | "serve.degraded"
                | "serve.cancel"
                | "categorize.degraded"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_renders() {
        assert_eq!(DumpReason::Anomaly("serve.shed".into()).to_string(), "anomaly:serve.shed");
        assert_eq!(DumpReason::Slow.to_string(), "slow");
        assert_eq!(DumpReason::Sampled.to_string(), "sampled");
    }

    #[test]
    fn anomaly_signals_match_the_taxonomy() {
        for name in [
            "fault.injected",
            "fault.error",
            "budget.exceeded",
            "pool.cancelled",
            "serve.shed",
            "serve.degraded",
            "categorize.degraded",
        ] {
            assert!(is_anomaly_signal(name), "{name}");
        }
        for name in ["serve.cache.hit", "pool.tasks", "exec.rows_scanned"] {
            assert!(!is_anomaly_signal(name), "{name}");
        }
    }

    #[test]
    fn phase_totals_group_span_closes() {
        let dump = FlightDump {
            trace: 7,
            reason: DumpReason::Slow,
            dur_ns: 100,
            lines: vec![
                r#"{"seq":1,"ts_ns":0,"thread":"main","kind":"span_open","name":"a","depth":0,"trace":7,"span":1,"parent":0,"fields":{}}"#.into(),
                r#"{"seq":2,"ts_ns":40,"thread":"main","kind":"span_close","name":"a","depth":0,"trace":7,"span":1,"parent":0,"dur_ns":40,"fields":{}}"#.into(),
                r#"{"seq":3,"ts_ns":50,"thread":"main","kind":"span_open","name":"b","depth":0,"trace":7,"span":2,"parent":0,"fields":{}}"#.into(),
                r#"{"seq":4,"ts_ns":60,"thread":"main","kind":"span_close","name":"b","depth":0,"trace":7,"span":2,"parent":0,"dur_ns":10,"fields":{}}"#.into(),
                r#"{"seq":5,"ts_ns":70,"thread":"main","kind":"span_open","name":"a","depth":0,"trace":7,"span":3,"parent":0,"fields":{}}"#.into(),
                r#"{"seq":6,"ts_ns":90,"thread":"main","kind":"span_close","name":"a","depth":0,"trace":7,"span":3,"parent":0,"dur_ns":20,"fields":{}}"#.into(),
            ],
            truncated: 0,
        };
        assert_eq!(
            dump.phase_totals(),
            vec![("a".to_string(), 60), ("b".to_string(), 10)]
        );
        assert_eq!(dump.to_jsonl().lines().count(), 6);
    }
}
