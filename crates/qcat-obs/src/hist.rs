//! Fixed-bucket latency histograms with percentile readout.
//!
//! Values (span durations in nanoseconds) land in one of 256
//! log-scaled buckets: values below 16 get exact buckets, larger
//! values share a bucket with everything carrying the same exponent
//! and top two mantissa bits — a coarse HDR scheme bounding the
//! relative quantile error at ~25 % while keeping recording a single
//! array increment. Differencing two histograms ([`Histogram::delta`])
//! supports interval profiles (e.g. "just the Figure 13 sweep").

/// Bucket count: 16 exact small buckets + 60 exponents × 4 sub-buckets.
const BUCKETS: usize = 16 + 60 * 4;

/// How many tail exemplars a histogram retains.
const MAX_EXEMPLARS: usize = 4;

/// A tail exemplar: one of the largest samples recorded, tagged with
/// the trace it came from, so a p99 outlier in a snapshot links
/// directly to a flight-recorder dump of the offending query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The sample value (nanoseconds by convention).
    pub value_ns: u64,
    /// The trace id active when the sample was recorded (never 0 —
    /// untraced samples are not kept as exemplars).
    pub trace: u64,
}

/// A fixed-bucket histogram of `u64` samples (nanoseconds by
/// convention).
///
/// Equality compares the distribution (buckets, count, sum) only —
/// tail exemplars carry run-specific trace ids and are excluded.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    exemplars: Vec<Exemplar>,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets && self.count == other.count && self.sum == other.sum
    }
}

impl Eq for Histogram {}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index for a sample.
fn bucket_of(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        // v >= 16 so leading_zeros <= 59 and exp >= 4.
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        let idx = 16 + (exp - 4) * 4 + sub;
        idx.min(BUCKETS - 1)
    }
}

/// The inclusive lower bound of a bucket.
fn bucket_lo(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let exp = (idx - 16) / 4 + 4;
        let sub = ((idx - 16) % 4) as u64;
        (1u64 << exp) + (sub << (exp - 2))
    }
}

/// The exclusive upper bound of a bucket.
fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 < BUCKETS {
        bucket_lo(idx + 1)
    } else {
        u64::MAX
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            exemplars: Vec::new(),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_of(v)) {
            *b += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Record one sample tagged with the trace it came from. When
    /// `trace` is nonzero and the sample ranks among the largest seen,
    /// it is kept as a tail [`Exemplar`].
    pub fn record_with_trace(&mut self, v: u64, trace: u64) {
        self.record(v);
        if trace == 0 {
            return;
        }
        if self.exemplars.len() < MAX_EXEMPLARS {
            self.exemplars.push(Exemplar { value_ns: v, trace });
            self.exemplars.sort_by(|a, b| b.value_ns.cmp(&a.value_ns));
        } else if self
            .exemplars
            .last()
            .is_some_and(|smallest| v > smallest.value_ns)
        {
            self.exemplars.pop();
            self.exemplars.push(Exemplar { value_ns: v, trace });
            self.exemplars.sort_by(|a, b| b.value_ns.cmp(&a.value_ns));
        }
    }

    /// The retained tail exemplars, largest first.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the midpoint of the
    /// bucket holding the rank-`ceil(q·count)` sample. Returns 0 when
    /// empty. The estimate is exact for samples below 16 and within
    /// ~25 % relative error beyond.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let lo = bucket_lo(idx);
                let hi = bucket_hi(idx);
                // Midpoint; exact buckets (width ≤ 1) report lo.
                return if hi - lo <= 1 { lo } else { lo + (hi - lo) / 2 };
            }
        }
        0
    }

    /// Bucket-wise difference `self − baseline` (saturating): the
    /// samples recorded since `baseline` was snapshotted from the
    /// same histogram. Exemplars are not differenced — the delta keeps
    /// the current tail exemplars, which already reflect the largest
    /// samples seen so far.
    pub fn delta(&self, baseline: &Histogram) -> Histogram {
        let buckets = self
            .buckets
            .iter()
            .zip(baseline.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        Histogram {
            buckets,
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            exemplars: self.exemplars.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        for idx in 0..BUCKETS {
            let lo = bucket_lo(idx);
            assert_eq!(bucket_of(lo), idx, "lo of bucket {idx}");
            if idx + 1 < BUCKETS {
                assert!(bucket_lo(idx + 1) > lo, "monotone at {idx}");
                assert_eq!(bucket_of(bucket_lo(idx + 1) - 1), idx, "hi of {idx}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        // 90 fast samples at ~1µs, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((750..=1_500).contains(&p50), "p50 {p50}");
        assert!((750_000..=1_500_000).contains(&p95), "p95 {p95}");
        assert!((750_000..=1_500_000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn exemplars_keep_the_largest_traced_samples() {
        let mut h = Histogram::new();
        h.record_with_trace(50, 0); // untraced: never an exemplar
        for (v, t) in [(10u64, 1u64), (500, 2), (20, 3), (300, 4), (400, 5), (5, 6)] {
            h.record_with_trace(v, t);
        }
        let ex = h.exemplars();
        assert_eq!(ex.len(), MAX_EXEMPLARS);
        let values: Vec<u64> = ex.iter().map(|e| e.value_ns).collect();
        assert_eq!(values, vec![500, 400, 300, 20]);
        assert_eq!(ex[0].trace, 2, "p-max links to its trace");
        assert!(ex.iter().all(|e| e.trace != 0));
        // Equality ignores exemplars: same distribution, different tags.
        let mut other = Histogram::new();
        other.record(50);
        for v in [10u64, 500, 20, 300, 400, 5] {
            other.record(v);
        }
        assert_eq!(h, other);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(100);
        let snap = h.clone();
        h.record(5_000);
        let d = h.delta(&snap);
        assert_eq!(d.count(), 1);
        let q = d.quantile(0.5);
        assert!((3_500..=7_000).contains(&q), "{q}");
        // Delta against an unrelated larger histogram saturates to 0.
        let z = snap.delta(&h);
        assert_eq!(z.count(), 0);
    }
}
