//! The [`Recorder`]: where spans, counters, gauges, and events land.
//!
//! Instrumentation sites write to the *current* recorder — a
//! thread-scoped handle installed with [`with_recorder`], falling back
//! to the process-global one a binary installs via [`install_global`]
//! or [`init_from_env`]. When neither exists, [`active`] is false and
//! every site returns after one thread-local read plus one relaxed
//! atomic load.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::flight::{is_anomaly_signal, DumpReason, FlightConfig, FlightDump};
use crate::hist::Histogram;
use crate::value::Value;

/// Export mode of the process-global recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No global recorder: instrumentation is a no-op.
    Off,
    /// Metrics only; [`finish_global`] prints a human-readable summary.
    Text,
    /// Stream JSONL events as they happen, plus metrics.
    Json,
}

/// Where emitted JSONL lines go.
enum Sink {
    /// Drop events (metrics still aggregate).
    Null,
    /// Accumulate lines in memory (tests, integration harnesses).
    Buffer(Vec<String>),
    /// Stream lines to a writer (file or stderr).
    Writer(Box<dyn Write + Send>),
}

/// One in-progress trace's flight-recorder buffer.
struct TraceBuf {
    start_ns: u64,
    lines: Vec<String>,
    truncated: usize,
    /// First anomaly signal observed (counter/event name or explicit
    /// mark); `Some` guarantees a dump at trace end.
    anomaly: Option<String>,
}

/// Flight-recorder state: live trace buffers plus the finished-dump
/// ring. All bounded — see [`FlightConfig`].
struct FlightState {
    config: FlightConfig,
    traces: BTreeMap<u64, TraceBuf>,
    dumps: VecDeque<FlightDump>,
    healthy_seen: u64,
}

/// Mutable recorder state behind one mutex. Instrumented code only
/// touches it when tracing is *on*, so a plain mutex (not sharded
/// atomics) keeps the disabled path free and the enabled path simple.
struct State {
    sink: Sink,
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, Histogram>,
    flight: FlightState,
}

/// The causal-identity triple a trace line carries: the trace it
/// belongs to, its own span id (span kinds only), and its parent span
/// id (0 = root of its trace).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LineIds {
    pub trace: u64,
    pub span: u64,
    pub parent: u64,
}

struct Inner {
    /// Whether span open/close and events serialize to the sink.
    /// `false` for metrics-only recorders: spans still aggregate into
    /// histograms but nothing is formatted.
    emit_events: bool,
    start: Instant,
    seq: AtomicU64,
    state: Mutex<State>,
}

/// A handle to a recorder. Clones share state; the handle is `Send`
/// and `Sync` so one recorder can collect from many threads.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("emit_events", &self.inner.emit_events)
            .finish_non_exhaustive()
    }
}

/// Recover from a poisoned mutex: the state is plain aggregates, safe
/// to keep using after another thread panicked mid-update.
fn lock_state(inner: &Inner) -> MutexGuard<'_, State> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Recorder {
    fn with_sink(sink: Sink, emit_events: bool) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                emit_events,
                start: Instant::now(),
                seq: AtomicU64::new(0),
                state: Mutex::new(State {
                    sink,
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    spans: BTreeMap::new(),
                    flight: FlightState {
                        config: FlightConfig::default(),
                        traces: BTreeMap::new(),
                        dumps: VecDeque::new(),
                        healthy_seen: 0,
                    },
                }),
            }),
        }
    }

    /// A recorder that buffers JSONL lines in memory; read them back
    /// with [`Recorder::drain_jsonl`]. Intended for tests.
    pub fn buffered() -> Recorder {
        Recorder::with_sink(Sink::Buffer(Vec::new()), true)
    }

    /// A recorder that aggregates metrics and span histograms but
    /// formats nothing — the cheapest enabled mode.
    pub fn metrics_only() -> Recorder {
        Recorder::with_sink(Sink::Null, false)
    }

    /// A recorder that streams JSONL lines to `w` as they happen.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Recorder {
        Recorder::with_sink(Sink::Writer(w), true)
    }

    /// Nanoseconds since this recorder was created (monotonic).
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner.start.elapsed().as_nanos() as u64
    }

    pub(crate) fn emits_events(&self) -> bool {
        self.inner.emit_events
    }

    /// Serialize one trace line. `dur_ns` is present only on
    /// `span_close`. Callers pass a pre-captured `ts_ns` so the close
    /// duration equals exactly `close.ts_ns - open.ts_ns`.
    ///
    /// The `seq` number is allocated *inside* the sink lock so the
    /// emitted file order is the seq order even when worker threads
    /// emit concurrently — the T1 strictly-increasing contract.
    pub(crate) fn emit_line(
        &self,
        ts_ns: u64,
        kind: &str,
        name: &str,
        depth: usize,
        dur_ns: Option<u64>,
        ids: LineIds,
        fields: &[(&'static str, Value)],
    ) {
        if !self.inner.emit_events {
            return;
        }
        // Everything after the seq number formats outside the lock.
        let mut tail = String::with_capacity(160);
        tail.push_str(",\"ts_ns\":");
        tail.push_str(&ts_ns.to_string());
        tail.push_str(",\"thread\":");
        tail.push_str(&crate::json::escape(&crate::span::thread_label()));
        tail.push_str(",\"kind\":\"");
        tail.push_str(kind);
        tail.push_str("\",\"name\":");
        tail.push_str(&crate::json::escape(name));
        tail.push_str(",\"depth\":");
        tail.push_str(&depth.to_string());
        tail.push_str(",\"trace\":");
        tail.push_str(&ids.trace.to_string());
        if ids.span != 0 {
            tail.push_str(",\"span\":");
            tail.push_str(&ids.span.to_string());
        }
        tail.push_str(",\"parent\":");
        tail.push_str(&ids.parent.to_string());
        if let Some(dur) = dur_ns {
            tail.push_str(",\"dur_ns\":");
            tail.push_str(&dur.to_string());
        }
        tail.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                tail.push(',');
            }
            tail.push_str(&crate::json::escape(k));
            tail.push(':');
            tail.push_str(&v.to_json());
        }
        tail.push_str("}}");
        let mut state = lock_state(&self.inner);
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let line = format!("{{\"seq\":{seq}{tail}");
        if ids.trace != 0 && state.flight.config.enabled {
            let cap = state.flight.config.per_trace_line_cap;
            if let Some(buf) = state.flight.traces.get_mut(&ids.trace) {
                if buf.lines.len() < cap {
                    buf.lines.push(line.clone());
                } else {
                    buf.truncated += 1;
                }
                if kind == "event" && is_anomaly_signal(name) && buf.anomaly.is_none() {
                    buf.anomaly = Some(name.to_string());
                }
            }
        }
        match &mut state.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.push(line),
            Sink::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Record a closed span's duration into its per-name histogram,
    /// tagging the sample with the trace it belongs to (0 = untraced)
    /// so tail exemplars can link back to a flight-recorder dump.
    pub(crate) fn record_span(&self, name: &str, dur_ns: u64, trace: u64) {
        let mut state = lock_state(&self.inner);
        // get_mut-first keeps the steady state allocation-free.
        if let Some(h) = state.spans.get_mut(name) {
            h.record_with_trace(dur_ns, trace);
        } else {
            let mut h = Histogram::new();
            h.record_with_trace(dur_ns, trace);
            state.spans.insert(name.to_string(), h);
        }
    }

    fn add_counter(&self, name: &str, delta: i64) {
        let trace = crate::trace::current_trace();
        let mut state = lock_state(&self.inner);
        if let Some(v) = state.counters.get_mut(name) {
            *v += delta;
        } else {
            state.counters.insert(name.to_string(), delta);
        }
        // Anomaly signals travel as counters (budget.exceeded,
        // fault.*, pool.cancelled, ...), so the flight recorder hooks
        // the counter path too, not just events.
        if trace != 0 && is_anomaly_signal(name) {
            if let Some(buf) = state.flight.traces.get_mut(&trace) {
                if buf.anomaly.is_none() {
                    buf.anomaly = Some(name.to_string());
                }
            }
        }
    }

    fn set_gauge(&self, name: &str, v: f64) {
        let mut state = lock_state(&self.inner);
        state.gauges.insert(name.to_string(), v);
    }

    /// Take all buffered JSONL lines, joined with newlines. Empty for
    /// non-buffered recorders.
    pub fn drain_jsonl(&self) -> String {
        let mut state = lock_state(&self.inner);
        match &mut state.sink {
            Sink::Buffer(buf) => {
                let lines = std::mem::take(buf);
                lines.join("\n")
            }
            _ => String::new(),
        }
    }

    /// Flush a streaming sink (no-op otherwise).
    pub fn flush(&self) {
        let mut state = lock_state(&self.inner);
        if let Sink::Writer(w) = &mut state.sink {
            let _ = w.flush();
        }
    }

    /// Replace this recorder's flight-recorder configuration. In-flight
    /// trace buffers keep capturing under the new caps.
    pub fn set_flight_config(&self, config: FlightConfig) {
        lock_state(&self.inner).flight.config = config;
    }

    /// The current flight-recorder configuration.
    pub fn flight_config(&self) -> FlightConfig {
        lock_state(&self.inner).flight.config
    }

    /// Begin capturing a trace (called by `TraceScope::start`).
    pub(crate) fn trace_begin(&self, trace: u64) {
        if !self.inner.emit_events {
            return;
        }
        let now = self.now_ns();
        let mut state = lock_state(&self.inner);
        if !state.flight.config.enabled {
            return;
        }
        state.flight.traces.insert(
            trace,
            TraceBuf {
                start_ns: now,
                lines: Vec::new(),
                truncated: 0,
                anomaly: None,
            },
        );
    }

    /// Mark an in-flight trace anomalous, guaranteeing a dump.
    pub fn mark_trace(&self, trace: u64, reason: &str) {
        if trace == 0 {
            return;
        }
        let mut state = lock_state(&self.inner);
        if let Some(buf) = state.flight.traces.get_mut(&trace) {
            if buf.anomaly.is_none() {
                buf.anomaly = Some(reason.to_string());
            }
        }
    }

    /// End a trace (called by `TraceScope`'s drop): tail-based
    /// sampling decides whether the buffered lines become a dump.
    pub(crate) fn trace_end(&self, trace: u64) {
        let now = self.now_ns();
        let mut state = lock_state(&self.inner);
        let Some(buf) = state.flight.traces.remove(&trace) else {
            return;
        };
        let dur_ns = now.saturating_sub(buf.start_ns);
        let reason = if let Some(what) = buf.anomaly {
            DumpReason::Anomaly(what)
        } else if dur_ns >= state.flight.config.slow_ns {
            DumpReason::Slow
        } else {
            state.flight.healthy_seen += 1;
            let every = state.flight.config.sample_every;
            if every > 0 && state.flight.healthy_seen % every == 0 {
                DumpReason::Sampled
            } else {
                return; // healthy and unsampled: discard
            }
        };
        let dump = FlightDump {
            trace,
            reason,
            dur_ns,
            lines: buf.lines,
            truncated: buf.truncated,
        };
        let cap = state.flight.config.dump_capacity.max(1);
        while state.flight.dumps.len() >= cap {
            state.flight.dumps.pop_front();
        }
        state.flight.dumps.push_back(dump);
    }

    /// Copies of the retained flight-recorder dumps, oldest first.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        lock_state(&self.inner).flight.dumps.iter().cloned().collect()
    }

    /// Drain the retained flight-recorder dumps, oldest first.
    pub fn take_flight_dumps(&self) -> Vec<FlightDump> {
        lock_state(&self.inner).flight.dumps.drain(..).collect()
    }

    /// The retained dump for one trace id, if still in the ring.
    pub fn flight_dump_for(&self, trace: u64) -> Option<FlightDump> {
        lock_state(&self.inner)
            .flight
            .dumps
            .iter()
            .rev()
            .find(|d| d.trace == trace)
            .cloned()
    }

    /// Copy out the current aggregate metrics.
    pub fn snapshot(&self) -> Snapshot {
        let state = lock_state(&self.inner);
        Snapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            spans: state.spans.clone(),
        }
    }
}

/// A point-in-time copy of a recorder's aggregate metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, i64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Per-span-name duration histograms (nanoseconds).
    pub spans: BTreeMap<String, Histogram>,
}

/// Aggregate duration statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closes.
    pub total_ns: u64,
    /// Mean duration in nanoseconds.
    pub mean_ns: f64,
    /// Approximate median duration in nanoseconds.
    pub p50_ns: u64,
    /// Approximate 95th-percentile duration in nanoseconds.
    pub p95_ns: u64,
    /// Approximate 99th-percentile duration in nanoseconds.
    pub p99_ns: u64,
    /// Tail exemplars: the largest traced samples, each linking a
    /// duration to the trace id that produced it (and thence to a
    /// flight-recorder dump).
    pub exemplars: Vec<crate::hist::Exemplar>,
}

impl Snapshot {
    /// The metrics recorded since `baseline` was taken from the same
    /// recorder: counters subtract, gauges keep their current value,
    /// span histograms difference bucket-wise.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v - baseline.counters.get(k).copied().unwrap_or(0)))
            .filter(|(_, v)| *v != 0)
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, h)| match baseline.spans.get(k) {
                Some(b) => (k.clone(), h.delta(b)),
                None => (k.clone(), h.clone()),
            })
            .filter(|(_, h)| h.count() > 0)
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            spans,
        }
    }

    /// Per-span-name statistics, sorted by descending total time.
    pub fn span_stats(&self) -> Vec<SpanStats> {
        let mut stats: Vec<SpanStats> = self
            .spans
            .iter()
            .map(|(name, h)| SpanStats {
                name: name.clone(),
                count: h.count(),
                total_ns: h.sum(),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.50),
                p95_ns: h.quantile(0.95),
                p99_ns: h.quantile(0.99),
                exemplars: h.exemplars().to_vec(),
            })
            .collect();
        stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        stats
    }
}

// ---------------------------------------------------------------------------
// The current recorder: thread-scoped overrides over a process global.
// ---------------------------------------------------------------------------

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(0);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

thread_local! {
    static OVERRIDE: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `OVERRIDE.len()` readable without a RefCell borrow —
    /// this keeps [`active`] a plain `Cell` read on the fast path.
    static OVERRIDE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Whether any recorder is current on this thread. This is the whole
/// disabled-path cost: one thread-local `Cell` read and one relaxed
/// atomic load.
#[inline]
pub fn active() -> bool {
    OVERRIDE_DEPTH.with(|d| d.get() > 0) || GLOBAL_ACTIVE.load(Ordering::Relaxed)
}

/// The recorder instrumentation would write to right now, if any:
/// the innermost [`with_recorder`] scope, else the global.
pub fn current_recorder() -> Option<Recorder> {
    if OVERRIDE_DEPTH.with(|d| d.get() > 0) {
        if let Some(rec) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
            return Some(rec);
        }
    }
    if GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return GLOBAL.get().cloned();
    }
    None
}

/// Run `f` with `rec` as this thread's current recorder, shadowing the
/// global. Scopes nest; the previous recorder is restored even if `f`
/// panics.
pub fn with_recorder<T>(rec: &Recorder, f: impl FnOnce() -> T) -> T {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
            OVERRIDE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(rec.clone()));
    OVERRIDE_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = PopOnDrop;
    f()
}

/// Install `rec` as the process-global recorder. First call wins;
/// returns `false` (leaving the existing global in place) on repeats.
pub fn install_global(rec: Recorder, mode: TraceMode) -> bool {
    let installed = GLOBAL.set(rec).is_ok();
    if installed {
        GLOBAL_MODE.store(
            match mode {
                TraceMode::Off => 0,
                TraceMode::Text => 1,
                TraceMode::Json => 2,
            },
            Ordering::Relaxed,
        );
        GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
    }
    installed
}

/// The mode [`install_global`] / [`init_from_env`] recorded, or
/// [`TraceMode::Off`] when no global recorder exists.
pub fn global_mode() -> TraceMode {
    match GLOBAL_MODE.load(Ordering::Relaxed) {
        1 => TraceMode::Text,
        2 => TraceMode::Json,
        _ => TraceMode::Off,
    }
}

/// Where [`finish_global`] writes the flight-recorder dumps, when
/// `QCAT_FLIGHT_FILE` was set at init.
static FLIGHT_FILE: OnceLock<String> = OnceLock::new();

/// Read `QCAT_TRACE` (`off`/`text`/`json`; unset or unknown = off) and
/// install a matching global recorder. In `json` mode the JSONL stream
/// goes to the path in `QCAT_TRACE_FILE`, or stderr when unset; if the
/// file cannot be created, falls back to stderr after one warning
/// line. Binaries call this once at startup — library crates never
/// read the environment.
///
/// Flight-recorder knobs (JSON mode only):
/// - `QCAT_SLOW_MS` — dump any trace lasting at least this many
///   milliseconds (unset = no slow threshold).
/// - `QCAT_TRACE_SAMPLE` — dump one in N healthy traces (unset = 0,
///   no healthy sampling).
/// - `QCAT_FLIGHT_FILE` — [`finish_global`] writes the retained dumps
///   to this path as concatenated JSONL.
pub fn init_from_env() -> TraceMode {
    let mode = match std::env::var("QCAT_TRACE").ok().as_deref() {
        Some("text") => TraceMode::Text,
        Some("json") => TraceMode::Json,
        _ => TraceMode::Off,
    };
    match mode {
        TraceMode::Off => {}
        TraceMode::Text => {
            install_global(Recorder::metrics_only(), TraceMode::Text);
        }
        TraceMode::Json => {
            let sink: Box<dyn Write + Send> = match std::env::var("QCAT_TRACE_FILE").ok() {
                Some(path) => match std::fs::File::create(&path) {
                    Ok(f) => Box::new(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!("qcat-obs: cannot create QCAT_TRACE_FILE `{path}` ({e}); tracing to stderr");
                        Box::new(std::io::stderr())
                    }
                },
                None => Box::new(std::io::stderr()),
            };
            let rec = Recorder::to_writer(sink);
            let env_u64 = |key: &str| {
                std::env::var(key)
                    .ok()
                    .and_then(|v| v.trim().parse::<u64>().ok())
            };
            let mut flight = FlightConfig::default();
            if let Some(ms) = env_u64("QCAT_SLOW_MS") {
                flight.slow_ns = ms.saturating_mul(1_000_000);
            }
            if let Some(every) = env_u64("QCAT_TRACE_SAMPLE") {
                flight.sample_every = every;
            }
            rec.set_flight_config(flight);
            if let Ok(path) = std::env::var("QCAT_FLIGHT_FILE") {
                let _ = FLIGHT_FILE.set(path);
            }
            install_global(rec, TraceMode::Json);
        }
    }
    mode
}

/// Finish the global recorder: flush a JSON stream (and write the
/// flight-recorder dumps to `QCAT_FLIGHT_FILE` if configured), or
/// render the text summary to stderr in text mode. Call once before
/// exit.
pub fn finish_global() {
    let Some(rec) = GLOBAL.get() else {
        return;
    };
    match global_mode() {
        TraceMode::Off => {}
        TraceMode::Json => {
            rec.flush();
            if let Some(path) = FLIGHT_FILE.get() {
                let dumps = rec.flight_dumps();
                let mut out = String::new();
                for d in &dumps {
                    out.push_str(&d.to_jsonl());
                    out.push('\n');
                }
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("qcat-obs: cannot write QCAT_FLIGHT_FILE `{path}`: {e}");
                }
            }
        }
        TraceMode::Text => {
            eprintln!("{}", crate::summary::render(&rec.snapshot()));
        }
    }
}

// ---------------------------------------------------------------------------
// Free-function instrumentation API (used by the `event!` macro and
// direct call sites).
// ---------------------------------------------------------------------------

/// Add `delta` to the named counter on the current recorder (no-op
/// when tracing is disabled).
#[inline]
pub fn counter(name: &str, delta: i64) {
    if !active() {
        return;
    }
    if let Some(rec) = current_recorder() {
        rec.add_counter(name, delta);
    }
}

/// Set the named gauge on the current recorder (no-op when disabled).
#[inline]
pub fn gauge(name: &str, v: f64) {
    if !active() {
        return;
    }
    if let Some(rec) = current_recorder() {
        rec.set_gauge(name, v);
    }
}

/// Record a structured event with fields. Prefer the [`crate::event!`]
/// macro, which skips field evaluation when tracing is disabled.
pub fn event_with(name: &str, fields: Vec<(&'static str, Value)>) {
    if let Some(rec) = current_recorder() {
        let ts = rec.now_ns();
        let ids = LineIds {
            trace: crate::trace::current_trace(),
            span: 0,
            parent: crate::trace::current_parent(),
        };
        rec.emit_line(ts, "event", name, crate::span::current_depth(), None, ids, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_are_no_ops() {
        // No override on this thread; global may or may not be set by
        // other tests, so only assert the override-free behaviour.
        counter("t.noop", 1);
        gauge("t.noop", 1.0);
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            counter("t.rows", 10);
            counter("t.rows", 5);
            gauge("t.frac", 0.25);
            gauge("t.frac", 0.75);
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("t.rows"), Some(&15));
        assert_eq!(snap.gauges.get("t.frac"), Some(&0.75));
    }

    #[test]
    fn with_recorder_nests_and_restores() {
        let outer = Recorder::buffered();
        let inner = Recorder::buffered();
        with_recorder(&outer, || {
            counter("t.where", 1);
            with_recorder(&inner, || counter("t.where", 10));
            counter("t.where", 2);
        });
        assert_eq!(outer.snapshot().counters.get("t.where"), Some(&3));
        assert_eq!(inner.snapshot().counters.get("t.where"), Some(&10));
        assert!(!OVERRIDE_DEPTH.with(|d| d.get() > 0));
    }

    #[test]
    fn with_recorder_restores_on_panic() {
        let rec = Recorder::buffered();
        let result = std::panic::catch_unwind(|| {
            with_recorder(&rec, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(OVERRIDE_DEPTH.with(|d| d.get()), 0);
        assert!(OVERRIDE.with(|o| o.borrow().is_empty()));
    }

    #[test]
    fn events_serialize_to_jsonl() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            event_with("t.ping", vec![("n", Value::from(3usize))]);
        });
        let log = rec.drain_jsonl();
        let v = crate::json::parse(&log).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("event"));
        assert_eq!(v.get("name").and_then(|k| k.as_str()), Some("t.ping"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("n").and_then(|n| n.as_f64()), Some(3.0));
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let rec = Recorder::metrics_only();
        with_recorder(&rec, || counter("t.a", 5));
        let base = rec.snapshot();
        with_recorder(&rec, || {
            counter("t.a", 2);
            counter("t.b", 1);
        });
        let d = rec.snapshot().delta(&base);
        assert_eq!(d.counters.get("t.a"), Some(&2));
        assert_eq!(d.counters.get("t.b"), Some(&1));
    }

    #[test]
    fn span_stats_sorted_by_total() {
        let rec = Recorder::metrics_only();
        rec.record_span("t.fast", 10, 0);
        rec.record_span("t.slow", 1_000_000, 0);
        let stats = rec.snapshot().span_stats();
        assert_eq!(stats[0].name, "t.slow");
        assert_eq!(stats[1].name, "t.fast");
        assert_eq!(stats[0].count, 1);
        assert!(stats[0].p95_ns >= stats[1].p95_ns);
    }

    #[test]
    fn anomalous_trace_is_dumped_in_full() {
        let rec = Recorder::buffered();
        let trace = with_recorder(&rec, || {
            let t = crate::trace::TraceScope::start();
            let _s = crate::span!("t.flight.query");
            crate::event!("serve.degraded", reason = "budget");
            t.id()
        });
        assert_ne!(trace, 0);
        let dumps = rec.flight_dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.trace, trace);
        assert_eq!(
            d.reason,
            crate::flight::DumpReason::Anomaly("serve.degraded".into())
        );
        assert_eq!(d.lines.len(), 3, "open + event + close");
        assert_eq!(d.truncated, 0);
        assert_eq!(rec.flight_dump_for(trace).map(|d| d.trace), Some(trace));
        assert!(rec.flight_dump_for(trace + 1).is_none());
    }

    #[test]
    fn anomaly_counters_mark_the_trace_too() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let _t = crate::trace::TraceScope::start();
            let _s = crate::span!("t.flight.budget");
            counter("budget.exceeded", 1);
        });
        let dumps = rec.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(
            dumps[0].reason,
            crate::flight::DumpReason::Anomaly("budget.exceeded".into())
        );
    }

    #[test]
    fn healthy_traces_are_discarded_unless_sampled() {
        let rec = Recorder::buffered();
        let mut cfg = crate::flight::FlightConfig::default();
        cfg.sample_every = 3;
        rec.set_flight_config(cfg);
        with_recorder(&rec, || {
            for _ in 0..6 {
                let _t = crate::trace::TraceScope::start();
                let _s = crate::span!("t.flight.healthy");
            }
        });
        let dumps = rec.flight_dumps();
        assert_eq!(dumps.len(), 2, "one in three healthy traces kept");
        assert!(dumps
            .iter()
            .all(|d| d.reason == crate::flight::DumpReason::Sampled));
    }

    #[test]
    fn slow_threshold_dumps_and_ring_is_bounded() {
        let rec = Recorder::buffered();
        let mut cfg = crate::flight::FlightConfig::default();
        cfg.slow_ns = 0; // everything is "slow"
        cfg.dump_capacity = 2;
        rec.set_flight_config(cfg);
        let ids: Vec<u64> = with_recorder(&rec, || {
            (0..4)
                .map(|_| {
                    let t = crate::trace::TraceScope::start();
                    let _s = crate::span!("t.flight.slow");
                    t.id()
                })
                .collect()
        });
        let dumps = rec.take_flight_dumps();
        assert_eq!(dumps.len(), 2, "ring keeps only the newest two");
        assert_eq!(dumps[0].trace, ids[2]);
        assert_eq!(dumps[1].trace, ids[3]);
        assert!(dumps.iter().all(|d| d.reason == crate::flight::DumpReason::Slow));
        assert!(rec.flight_dumps().is_empty(), "take drains the ring");
    }

    #[test]
    fn per_trace_buffer_caps_and_counts_truncation() {
        let rec = Recorder::buffered();
        let mut cfg = crate::flight::FlightConfig::default();
        cfg.per_trace_line_cap = 4;
        cfg.slow_ns = 0;
        rec.set_flight_config(cfg);
        with_recorder(&rec, || {
            let _t = crate::trace::TraceScope::start();
            for _ in 0..4 {
                let _s = crate::span!("t.flight.chatty");
            }
        });
        let dumps = rec.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].lines.len(), 4);
        assert_eq!(dumps[0].truncated, 4, "8 lines emitted, 4 kept");
    }
}
