//! The [`Recorder`]: where spans, counters, gauges, and events land.
//!
//! Instrumentation sites write to the *current* recorder — a
//! thread-scoped handle installed with [`with_recorder`], falling back
//! to the process-global one a binary installs via [`install_global`]
//! or [`init_from_env`]. When neither exists, [`active`] is false and
//! every site returns after one thread-local read plus one relaxed
//! atomic load.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::hist::Histogram;
use crate::value::Value;

/// Export mode of the process-global recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No global recorder: instrumentation is a no-op.
    Off,
    /// Metrics only; [`finish_global`] prints a human-readable summary.
    Text,
    /// Stream JSONL events as they happen, plus metrics.
    Json,
}

/// Where emitted JSONL lines go.
enum Sink {
    /// Drop events (metrics still aggregate).
    Null,
    /// Accumulate lines in memory (tests, integration harnesses).
    Buffer(Vec<String>),
    /// Stream lines to a writer (file or stderr).
    Writer(Box<dyn Write + Send>),
}

/// Mutable recorder state behind one mutex. Instrumented code only
/// touches it when tracing is *on*, so a plain mutex (not sharded
/// atomics) keeps the disabled path free and the enabled path simple.
struct State {
    sink: Sink,
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, Histogram>,
}

struct Inner {
    /// Whether span open/close and events serialize to the sink.
    /// `false` for metrics-only recorders: spans still aggregate into
    /// histograms but nothing is formatted.
    emit_events: bool,
    start: Instant,
    seq: AtomicU64,
    state: Mutex<State>,
}

/// A handle to a recorder. Clones share state; the handle is `Send`
/// and `Sync` so one recorder can collect from many threads.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("emit_events", &self.inner.emit_events)
            .finish_non_exhaustive()
    }
}

/// Recover from a poisoned mutex: the state is plain aggregates, safe
/// to keep using after another thread panicked mid-update.
fn lock_state(inner: &Inner) -> MutexGuard<'_, State> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Recorder {
    fn with_sink(sink: Sink, emit_events: bool) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                emit_events,
                start: Instant::now(),
                seq: AtomicU64::new(0),
                state: Mutex::new(State {
                    sink,
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    spans: BTreeMap::new(),
                }),
            }),
        }
    }

    /// A recorder that buffers JSONL lines in memory; read them back
    /// with [`Recorder::drain_jsonl`]. Intended for tests.
    pub fn buffered() -> Recorder {
        Recorder::with_sink(Sink::Buffer(Vec::new()), true)
    }

    /// A recorder that aggregates metrics and span histograms but
    /// formats nothing — the cheapest enabled mode.
    pub fn metrics_only() -> Recorder {
        Recorder::with_sink(Sink::Null, false)
    }

    /// A recorder that streams JSONL lines to `w` as they happen.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Recorder {
        Recorder::with_sink(Sink::Writer(w), true)
    }

    /// Nanoseconds since this recorder was created (monotonic).
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner.start.elapsed().as_nanos() as u64
    }

    pub(crate) fn emits_events(&self) -> bool {
        self.inner.emit_events
    }

    /// Serialize one trace line. `dur_ns` is present only on
    /// `span_close`. Callers pass a pre-captured `ts_ns` so the close
    /// duration equals exactly `close.ts_ns - open.ts_ns`.
    pub(crate) fn emit_line(
        &self,
        ts_ns: u64,
        kind: &str,
        name: &str,
        depth: usize,
        dur_ns: Option<u64>,
        fields: &[(&'static str, Value)],
    ) {
        if !self.inner.emit_events {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(128);
        line.push_str("{\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"ts_ns\":");
        line.push_str(&ts_ns.to_string());
        line.push_str(",\"thread\":");
        line.push_str(&crate::json::escape(&crate::span::thread_label()));
        line.push_str(",\"kind\":\"");
        line.push_str(kind);
        line.push_str("\",\"name\":");
        line.push_str(&crate::json::escape(name));
        line.push_str(",\"depth\":");
        line.push_str(&depth.to_string());
        if let Some(dur) = dur_ns {
            line.push_str(",\"dur_ns\":");
            line.push_str(&dur.to_string());
        }
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&crate::json::escape(k));
            line.push(':');
            line.push_str(&v.to_json());
        }
        line.push_str("}}");
        let mut state = lock_state(&self.inner);
        match &mut state.sink {
            Sink::Null => {}
            Sink::Buffer(buf) => buf.push(line),
            Sink::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Record a closed span's duration into its per-name histogram.
    pub(crate) fn record_span(&self, name: &str, dur_ns: u64) {
        let mut state = lock_state(&self.inner);
        // get_mut-first keeps the steady state allocation-free.
        if let Some(h) = state.spans.get_mut(name) {
            h.record(dur_ns);
        } else {
            let mut h = Histogram::new();
            h.record(dur_ns);
            state.spans.insert(name.to_string(), h);
        }
    }

    fn add_counter(&self, name: &str, delta: i64) {
        let mut state = lock_state(&self.inner);
        if let Some(v) = state.counters.get_mut(name) {
            *v += delta;
        } else {
            state.counters.insert(name.to_string(), delta);
        }
    }

    fn set_gauge(&self, name: &str, v: f64) {
        let mut state = lock_state(&self.inner);
        state.gauges.insert(name.to_string(), v);
    }

    /// Take all buffered JSONL lines, joined with newlines. Empty for
    /// non-buffered recorders.
    pub fn drain_jsonl(&self) -> String {
        let mut state = lock_state(&self.inner);
        match &mut state.sink {
            Sink::Buffer(buf) => {
                let lines = std::mem::take(buf);
                lines.join("\n")
            }
            _ => String::new(),
        }
    }

    /// Flush a streaming sink (no-op otherwise).
    pub fn flush(&self) {
        let mut state = lock_state(&self.inner);
        if let Sink::Writer(w) = &mut state.sink {
            let _ = w.flush();
        }
    }

    /// Copy out the current aggregate metrics.
    pub fn snapshot(&self) -> Snapshot {
        let state = lock_state(&self.inner);
        Snapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            spans: state.spans.clone(),
        }
    }
}

/// A point-in-time copy of a recorder's aggregate metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, i64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Per-span-name duration histograms (nanoseconds).
    pub spans: BTreeMap<String, Histogram>,
}

/// Aggregate duration statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closes.
    pub total_ns: u64,
    /// Mean duration in nanoseconds.
    pub mean_ns: f64,
    /// Approximate median duration in nanoseconds.
    pub p50_ns: u64,
    /// Approximate 95th-percentile duration in nanoseconds.
    pub p95_ns: u64,
    /// Approximate 99th-percentile duration in nanoseconds.
    pub p99_ns: u64,
}

impl Snapshot {
    /// The metrics recorded since `baseline` was taken from the same
    /// recorder: counters subtract, gauges keep their current value,
    /// span histograms difference bucket-wise.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v - baseline.counters.get(k).copied().unwrap_or(0)))
            .filter(|(_, v)| *v != 0)
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, h)| match baseline.spans.get(k) {
                Some(b) => (k.clone(), h.delta(b)),
                None => (k.clone(), h.clone()),
            })
            .filter(|(_, h)| h.count() > 0)
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            spans,
        }
    }

    /// Per-span-name statistics, sorted by descending total time.
    pub fn span_stats(&self) -> Vec<SpanStats> {
        let mut stats: Vec<SpanStats> = self
            .spans
            .iter()
            .map(|(name, h)| SpanStats {
                name: name.clone(),
                count: h.count(),
                total_ns: h.sum(),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.50),
                p95_ns: h.quantile(0.95),
                p99_ns: h.quantile(0.99),
            })
            .collect();
        stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        stats
    }
}

// ---------------------------------------------------------------------------
// The current recorder: thread-scoped overrides over a process global.
// ---------------------------------------------------------------------------

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(0);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

thread_local! {
    static OVERRIDE: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `OVERRIDE.len()` readable without a RefCell borrow —
    /// this keeps [`active`] a plain `Cell` read on the fast path.
    static OVERRIDE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Whether any recorder is current on this thread. This is the whole
/// disabled-path cost: one thread-local `Cell` read and one relaxed
/// atomic load.
#[inline]
pub fn active() -> bool {
    OVERRIDE_DEPTH.with(|d| d.get() > 0) || GLOBAL_ACTIVE.load(Ordering::Relaxed)
}

/// The recorder instrumentation would write to right now, if any:
/// the innermost [`with_recorder`] scope, else the global.
pub fn current_recorder() -> Option<Recorder> {
    if OVERRIDE_DEPTH.with(|d| d.get() > 0) {
        if let Some(rec) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
            return Some(rec);
        }
    }
    if GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return GLOBAL.get().cloned();
    }
    None
}

/// Run `f` with `rec` as this thread's current recorder, shadowing the
/// global. Scopes nest; the previous recorder is restored even if `f`
/// panics.
pub fn with_recorder<T>(rec: &Recorder, f: impl FnOnce() -> T) -> T {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
            OVERRIDE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(rec.clone()));
    OVERRIDE_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = PopOnDrop;
    f()
}

/// Install `rec` as the process-global recorder. First call wins;
/// returns `false` (leaving the existing global in place) on repeats.
pub fn install_global(rec: Recorder, mode: TraceMode) -> bool {
    let installed = GLOBAL.set(rec).is_ok();
    if installed {
        GLOBAL_MODE.store(
            match mode {
                TraceMode::Off => 0,
                TraceMode::Text => 1,
                TraceMode::Json => 2,
            },
            Ordering::Relaxed,
        );
        GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
    }
    installed
}

/// The mode [`install_global`] / [`init_from_env`] recorded, or
/// [`TraceMode::Off`] when no global recorder exists.
pub fn global_mode() -> TraceMode {
    match GLOBAL_MODE.load(Ordering::Relaxed) {
        1 => TraceMode::Text,
        2 => TraceMode::Json,
        _ => TraceMode::Off,
    }
}

/// Read `QCAT_TRACE` (`off`/`text`/`json`; unset or unknown = off) and
/// install a matching global recorder. In `json` mode the JSONL stream
/// goes to the path in `QCAT_TRACE_FILE`, or stderr when unset; if the
/// file cannot be created, falls back to stderr after one warning
/// line. Binaries call this once at startup — library crates never
/// read the environment.
pub fn init_from_env() -> TraceMode {
    let mode = match std::env::var("QCAT_TRACE").ok().as_deref() {
        Some("text") => TraceMode::Text,
        Some("json") => TraceMode::Json,
        _ => TraceMode::Off,
    };
    match mode {
        TraceMode::Off => {}
        TraceMode::Text => {
            install_global(Recorder::metrics_only(), TraceMode::Text);
        }
        TraceMode::Json => {
            let sink: Box<dyn Write + Send> = match std::env::var("QCAT_TRACE_FILE").ok() {
                Some(path) => match std::fs::File::create(&path) {
                    Ok(f) => Box::new(std::io::BufWriter::new(f)),
                    Err(e) => {
                        eprintln!("qcat-obs: cannot create QCAT_TRACE_FILE `{path}` ({e}); tracing to stderr");
                        Box::new(std::io::stderr())
                    }
                },
                None => Box::new(std::io::stderr()),
            };
            install_global(Recorder::to_writer(sink), TraceMode::Json);
        }
    }
    mode
}

/// Finish the global recorder: flush a JSON stream, or render the
/// text summary to stderr in text mode. Call once before exit.
pub fn finish_global() {
    let Some(rec) = GLOBAL.get() else {
        return;
    };
    match global_mode() {
        TraceMode::Off => {}
        TraceMode::Json => rec.flush(),
        TraceMode::Text => {
            eprintln!("{}", crate::summary::render(&rec.snapshot()));
        }
    }
}

// ---------------------------------------------------------------------------
// Free-function instrumentation API (used by the `event!` macro and
// direct call sites).
// ---------------------------------------------------------------------------

/// Add `delta` to the named counter on the current recorder (no-op
/// when tracing is disabled).
#[inline]
pub fn counter(name: &str, delta: i64) {
    if !active() {
        return;
    }
    if let Some(rec) = current_recorder() {
        rec.add_counter(name, delta);
    }
}

/// Set the named gauge on the current recorder (no-op when disabled).
#[inline]
pub fn gauge(name: &str, v: f64) {
    if !active() {
        return;
    }
    if let Some(rec) = current_recorder() {
        rec.set_gauge(name, v);
    }
}

/// Record a structured event with fields. Prefer the [`crate::event!`]
/// macro, which skips field evaluation when tracing is disabled.
pub fn event_with(name: &str, fields: Vec<(&'static str, Value)>) {
    if let Some(rec) = current_recorder() {
        let ts = rec.now_ns();
        rec.emit_line(ts, "event", name, crate::span::current_depth(), None, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_are_no_ops() {
        // No override on this thread; global may or may not be set by
        // other tests, so only assert the override-free behaviour.
        counter("t.noop", 1);
        gauge("t.noop", 1.0);
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            counter("t.rows", 10);
            counter("t.rows", 5);
            gauge("t.frac", 0.25);
            gauge("t.frac", 0.75);
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("t.rows"), Some(&15));
        assert_eq!(snap.gauges.get("t.frac"), Some(&0.75));
    }

    #[test]
    fn with_recorder_nests_and_restores() {
        let outer = Recorder::buffered();
        let inner = Recorder::buffered();
        with_recorder(&outer, || {
            counter("t.where", 1);
            with_recorder(&inner, || counter("t.where", 10));
            counter("t.where", 2);
        });
        assert_eq!(outer.snapshot().counters.get("t.where"), Some(&3));
        assert_eq!(inner.snapshot().counters.get("t.where"), Some(&10));
        assert!(!OVERRIDE_DEPTH.with(|d| d.get() > 0));
    }

    #[test]
    fn with_recorder_restores_on_panic() {
        let rec = Recorder::buffered();
        let result = std::panic::catch_unwind(|| {
            with_recorder(&rec, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(OVERRIDE_DEPTH.with(|d| d.get()), 0);
        assert!(OVERRIDE.with(|o| o.borrow().is_empty()));
    }

    #[test]
    fn events_serialize_to_jsonl() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            event_with("t.ping", vec![("n", Value::from(3usize))]);
        });
        let log = rec.drain_jsonl();
        let v = crate::json::parse(&log).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("event"));
        assert_eq!(v.get("name").and_then(|k| k.as_str()), Some("t.ping"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("n").and_then(|n| n.as_f64()), Some(3.0));
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let rec = Recorder::metrics_only();
        with_recorder(&rec, || counter("t.a", 5));
        let base = rec.snapshot();
        with_recorder(&rec, || {
            counter("t.a", 2);
            counter("t.b", 1);
        });
        let d = rec.snapshot().delta(&base);
        assert_eq!(d.counters.get("t.a"), Some(&2));
        assert_eq!(d.counters.get("t.b"), Some(&1));
    }

    #[test]
    fn span_stats_sorted_by_total() {
        let rec = Recorder::metrics_only();
        rec.record_span("t.fast", 10);
        rec.record_span("t.slow", 1_000_000);
        let stats = rec.snapshot().span_stats();
        assert_eq!(stats[0].name, "t.slow");
        assert_eq!(stats[1].name, "t.fast");
        assert_eq!(stats[0].count, 1);
        assert!(stats[0].p95_ns >= stats[1].p95_ns);
    }
}
