//! Human-readable rendering of a metrics [`Snapshot`] — what
//! `QCAT_TRACE=text` prints at process exit.

use std::fmt::Write as _;

use crate::recorder::Snapshot;

/// Format nanoseconds compactly (`1.234ms`, `56.7us`, `890ns`).
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render `snap` as an aligned text report: spans sorted by total
/// time with count/mean/p50/p95/p99, then counters, then gauges.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let stats = snap.span_stats();
    if !stats.is_empty() {
        out.push_str("== spans (by total time) ==\n");
        let name_w = stats
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "span", "count", "mean", "p50", "p95", "p99", "total"
        );
        for s in &stats {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                s.name,
                s.count,
                fmt_ns(s.mean_ns),
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p95_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.total_ns as f64),
            );
            // Tail exemplars name the traces behind the p99 column, so
            // a slow bucket links straight to its flight-recorder dump.
            if !s.exemplars.is_empty() {
                let tail = s
                    .exemplars
                    .iter()
                    .map(|e| format!("{} trace={}", fmt_ns(e.value_ns as f64), e.trace))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{:<name_w$}    tail: {tail}", "");
            }
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("== counters ==\n");
        let name_w = snap
            .counters
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("counter".len());
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "{k:<name_w$}  {v}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("== gauges ==\n");
        let name_w = snap
            .gauges
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("gauge".len());
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "{k:<name_w$}  {v}");
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{counter, gauge, with_recorder, Recorder};

    #[test]
    fn renders_all_sections() {
        let rec = Recorder::metrics_only();
        with_recorder(&rec, || {
            let _s = crate::span!("t.render");
            counter("t.rows", 42);
            gauge("t.frac", 0.5);
        });
        let text = render(&rec.snapshot());
        assert!(text.contains("== spans"));
        assert!(text.contains("t.render"));
        assert!(text.contains("== counters"));
        assert!(text.contains("t.rows"));
        assert!(text.contains("42"));
        assert!(text.contains("== gauges"));
        assert!(text.contains("t.frac"));
    }

    #[test]
    fn renders_tail_exemplar_trace_ids() {
        let rec = Recorder::metrics_only();
        let trace = with_recorder(&rec, || {
            let scope = crate::TraceScope::start();
            let id = scope.id();
            let _s = crate::span!("t.tail");
            id
        });
        assert_ne!(trace, 0);
        let text = render(&rec.snapshot());
        assert!(text.contains("tail:"), "{text}");
        assert!(text.contains(&format!("trace={trace}")), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render(&Snapshot::default());
        assert!(text.contains("no metrics recorded"));
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_000_000.0), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000s");
    }
}
