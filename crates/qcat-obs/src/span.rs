//! RAII spans over a thread-local depth stack.
//!
//! [`span`] captures the current recorder and a monotonic open
//! timestamp; dropping the returned [`SpanGuard`] — on every exit
//! path, including panic unwind — closes the span, records its
//! duration into the per-name histogram, and in JSON mode emits a
//! `span_close` line whose `dur_ns` is exactly `close ts − open ts`.

use std::cell::{Cell, RefCell};

use crate::recorder::{current_recorder, Recorder};
use crate::value::Value;

thread_local! {
    /// Nesting depth of open spans on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Cached label for this thread's trace lines.
    static THREAD_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The current span nesting depth on this thread.
pub(crate) fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// The label identifying this thread in trace lines: its name, or a
/// stable id for unnamed threads. Computed once per thread.
pub(crate) fn thread_label() -> String {
    THREAD_LABEL.with(|l| {
        let mut l = l.borrow_mut();
        if l.is_none() {
            let t = std::thread::current();
            *l = Some(match t.name() {
                Some(name) => name.to_string(),
                None => format!("{:?}", t.id()),
            });
        }
        l.clone().unwrap_or_default()
    })
}

struct SpanData {
    rec: Recorder,
    name: &'static str,
    open_ts: u64,
    depth: usize,
    /// Causal identity: the trace this span belongs to (0 = none),
    /// its own id, and its parent span's id (0 = trace root).
    trace: u64,
    span_id: u64,
    parent: u64,
    fields: Vec<(&'static str, Value)>,
}

/// Guard for an open span; dropping it closes the span. Obtained from
/// [`span`], [`span_with`], or the [`crate::span!`] macro.
#[must_use = "a span closes when its guard drops — bind it with `let _guard = ...`"]
pub struct SpanGuard {
    data: Option<SpanData>,
}

impl SpanGuard {
    /// A guard that records nothing — what [`crate::span!`] returns
    /// when tracing is disabled.
    pub fn disabled() -> SpanGuard {
        SpanGuard { data: None }
    }

    /// Attach (or overwrite) a field, reported on the `span_close`
    /// line. No-op on a disabled guard — guard with
    /// [`crate::active`] if computing the value is costly.
    pub fn set(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(data) = &mut self.data {
            let value = value.into();
            if let Some(slot) = data.fields.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                data.fields.push((key, value));
            }
        }
    }
}

/// Open a span with no fields. Prefer the [`crate::span!`] macro.
pub fn span(name: &'static str) -> SpanGuard {
    if crate::active() {
        span_with(name, Vec::new())
    } else {
        SpanGuard::disabled()
    }
}

/// Open a span with initial fields (reported on both the open and
/// close lines). Prefer the [`crate::span!`] macro, which skips field
/// evaluation when tracing is disabled.
pub fn span_with(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    let Some(rec) = current_recorder() else {
        return SpanGuard::disabled();
    };
    let depth = DEPTH.with(|d| d.get());
    let trace = crate::trace::current_trace();
    let parent = crate::trace::current_parent();
    let span_id = crate::trace::next_span_id();
    let open_ts = rec.now_ns();
    if rec.emits_events() {
        let ids = crate::recorder::LineIds {
            trace,
            span: span_id,
            parent,
        };
        rec.emit_line(open_ts, "span_open", name, depth, None, ids, &fields);
    }
    DEPTH.with(|d| d.set(depth + 1));
    crate::trace::push_span(trace, span_id);
    SpanGuard {
        data: Some(SpanData {
            rec,
            name,
            open_ts,
            depth,
            trace,
            span_id,
            parent,
            fields,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        // Runs during panic unwind too, keeping the depth stack and
        // the JSONL log balanced on every exit path.
        crate::trace::pop_span();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let close_ts = data.rec.now_ns();
        let dur_ns = close_ts.saturating_sub(data.open_ts);
        data.rec.record_span(data.name, dur_ns, data.trace);
        if data.rec.emits_events() {
            let ids = crate::recorder::LineIds {
                trace: data.trace,
                span: data.span_id,
                parent: data.parent,
            };
            data.rec
                .emit_line(close_ts, "span_close", data.name, data.depth, Some(dur_ns), ids, &data.fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::recorder::with_recorder;

    fn parsed_lines(log: &str) -> Vec<JsonValue> {
        log.lines().map(|l| parse(l).unwrap()).collect()
    }

    #[test]
    fn nesting_tracks_depth_and_balances() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let _a = span("t.outer");
            assert_eq!(current_depth(), 1);
            {
                let _b = span("t.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        });
        assert_eq!(current_depth(), 0);
        let lines = parsed_lines(&rec.drain_jsonl());
        let kinds: Vec<_> = lines
            .iter()
            .map(|l| {
                (
                    l.get("kind").and_then(|v| v.as_str()).unwrap().to_string(),
                    l.get("name").and_then(|v| v.as_str()).unwrap().to_string(),
                    l.get("depth").and_then(|v| v.as_f64()).unwrap() as usize,
                )
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("span_open".into(), "t.outer".into(), 0),
                ("span_open".into(), "t.inner".into(), 1),
                ("span_close".into(), "t.inner".into(), 1),
                ("span_close".into(), "t.outer".into(), 0),
            ]
        );
    }

    #[test]
    fn close_duration_equals_timestamp_difference() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let _s = span("t.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let lines = parsed_lines(&rec.drain_jsonl());
        let open_ts = lines[0].get("ts_ns").and_then(|v| v.as_f64()).unwrap();
        let close_ts = lines[1].get("ts_ns").and_then(|v| v.as_f64()).unwrap();
        let dur = lines[1].get("dur_ns").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(dur, close_ts - open_ts);
        assert!(dur >= 2_000_000.0, "slept 2ms but dur {dur}ns");
    }

    #[test]
    fn spans_close_during_panic_unwind() {
        let rec = Recorder::buffered();
        let result = std::panic::catch_unwind(|| {
            with_recorder(&rec, || {
                let _a = span("t.panics.outer");
                let _b = span("t.panics.inner");
                panic!("mid-span");
            });
        });
        assert!(result.is_err());
        assert_eq!(current_depth(), 0, "depth restored after unwind");
        let lines = parsed_lines(&rec.drain_jsonl());
        let closes = lines
            .iter()
            .filter(|l| l.get("kind").and_then(|v| v.as_str()) == Some("span_close"))
            .count();
        assert_eq!(closes, 2, "both spans closed by unwind");
        // Histograms recorded both durations too.
        let snap = rec.snapshot();
        assert_eq!(snap.spans.get("t.panics.inner").map(|h| h.count()), Some(1));
        assert_eq!(snap.spans.get("t.panics.outer").map(|h| h.count()), Some(1));
    }

    #[test]
    fn set_fields_appear_on_close_line() {
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let mut s = span_with("t.fields", vec![("rows", Value::from(5usize))]);
            s.set("matched", 2usize);
            s.set("rows", 6usize); // overwrite
        });
        let lines = parsed_lines(&rec.drain_jsonl());
        let close = &lines[1];
        let fields = close.get("fields").unwrap();
        assert_eq!(fields.get("rows").and_then(|v| v.as_f64()), Some(6.0));
        assert_eq!(fields.get("matched").and_then(|v| v.as_f64()), Some(2.0));
        // The open line still carries the initial value.
        assert_eq!(
            lines[0].get("fields").and_then(|f| f.get("rows")).and_then(|v| v.as_f64()),
            Some(5.0)
        );
    }

    #[test]
    fn disabled_guard_is_inert() {
        let mut g = SpanGuard::disabled();
        g.set("k", 1usize);
        drop(g);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn macros_gate_on_active() {
        // Outside any recorder scope the span! macro with fields must
        // not evaluate its field expressions... unless a global
        // recorder was installed by another test; evaluation is cheap
        // either way, so only assert the no-override path compiles and
        // balances.
        {
            let _g = crate::span!("t.macro", n = 1usize);
        }
        let rec = Recorder::buffered();
        with_recorder(&rec, || {
            let _g = crate::span!("t.macro", n = 2usize);
            crate::event!("t.macro.ev", ok = true);
        });
        let log = rec.drain_jsonl();
        assert_eq!(log.lines().count(), 3);
    }
}
