#![warn(missing_docs)]

//! First-party observability for the qcat workspace: spans, metrics,
//! structured events, and two exporters — with near-zero overhead when
//! disabled.
//!
//! The paper's headline claims are about *cost* (information-overload
//! cost, Eq. 1/2) and *wall-clock* (Figure 13: "a few seconds …
//! dominated by partitioning"). This crate is how the repo attributes
//! both: every pipeline stage opens a [`span`], hot loops bump
//! [`counter`]s, and span durations aggregate into fixed-bucket
//! latency [`hist::Histogram`]s with p50/p95/p99 readout.
//!
//! # Model
//!
//! - **Spans** ([`span!`], [`SpanGuard`]): RAII-timed regions with a
//!   thread-local depth stack. Dropping the guard (including during
//!   panic unwind) closes the span, records its duration, and — in
//!   JSON mode — emits a `span_close` line.
//! - **Metrics**: monotonically-increasing [`counter`]s, last-write
//!   [`gauge`]s, and per-span-name latency histograms.
//! - **Events** ([`event!`]): point-in-time records with key/value
//!   [`Value`] fields.
//! - **Traces** ([`TraceScope`], [`capture_parent`]): a query-scoped
//!   causal identity — every line carries `trace`/`span`/`parent` ids,
//!   propagated into `qcat-pool` workers so work items open real
//!   parented spans on their own threads.
//! - **Flight recorder** ([`flight`]): bounded per-trace capture with
//!   tail-based sampling — anomalous, slow, or sampled traces are
//!   retained as full causal dumps; the rest are discarded.
//! - **Exporters**: a human-readable summary ([`summary::render`])
//!   and a machine-readable JSONL event log (one JSON object per
//!   line; schema in `docs/OBSERVABILITY.md`), auditable by
//!   `qcat-lint --audit-trace`.
//!
//! # Enabling
//!
//! Library crates never touch the environment: they record into the
//! *current* recorder, which is either a thread-scoped handle
//! installed with [`with_recorder`] or the process-global one a
//! binary installs via [`init_from_env`] (`QCAT_TRACE=off|text|json`,
//! JSONL destination `QCAT_TRACE_FILE`). With neither installed,
//! every instrumentation point reduces to one thread-local flag read
//! plus one relaxed atomic load and returns immediately — no locks,
//! no allocation, no formatting.
//!
//! ```
//! let rec = qcat_obs::Recorder::buffered();
//! qcat_obs::with_recorder(&rec, || {
//!     let _outer = qcat_obs::span!("demo.outer", size = 3usize);
//!     qcat_obs::counter("demo.items", 3);
//!     qcat_obs::event!("demo.tick", phase = "warm");
//! });
//! let log = rec.drain_jsonl();
//! assert!(log.lines().count() >= 3);
//! ```

pub mod flight;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod span;
pub mod summary;
pub mod trace;
pub mod value;

pub use flight::{DumpReason, FlightConfig, FlightDump};
pub use hist::{Exemplar, Histogram};
pub use recorder::{
    active, counter, current_recorder, event_with, finish_global, gauge, global_mode,
    init_from_env, install_global, with_recorder, Recorder, Snapshot, SpanStats, TraceMode,
};
pub use span::{span, span_with, SpanGuard};
pub use trace::{capture_parent, current_trace, ParentContext, TraceScope};
pub use value::Value;

/// Open a timed span: `span!("name")` or
/// `span!("name", key = value, ...)`.
///
/// Returns a [`SpanGuard`]; the span closes when the guard drops.
/// Field expressions are not evaluated when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr $(, $k:ident = $v:expr)+ $(,)?) => {
        if $crate::active() {
            $crate::span_with($name, vec![$((stringify!($k), $crate::Value::from($v))),+])
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Record a structured event: `event!("name", key = value, ...)`.
///
/// Field expressions are not evaluated when tracing is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::active() {
            $crate::event_with($name, vec![$((stringify!($k), $crate::Value::from($v))),*]);
        }
    };
}
