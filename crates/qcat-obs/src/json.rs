//! Minimal first-party JSON: escaping for the JSONL exporter and a
//! recursive-descent parser for the trace audit and tests.
//!
//! The workspace is hermetic (no serde); this module covers exactly
//! what the trace log needs. Numbers parse to `f64`, which is exact
//! up to 2^53 — comfortably beyond any `ts_ns` a study run produces.

use std::fmt::Write as _;

/// Escape `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{token}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "a\"b\\c", "tab\there", "nl\nthere", "\u{1}ctl", "ünïcode"] {
            let escaped = escape(s);
            let parsed = parse(&escaped).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "via {escaped}");
        }
    }

    #[test]
    fn parses_trace_shaped_objects() {
        let line = r#"{"seq":7,"ts_ns":123456789,"thread":"main","kind":"span_close","name":"categorize.level.cost","depth":2,"dur_ns":42,"fields":{"evals":10,"share":0.5,"ok":true,"note":null,"tags":["a","b"]}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("seq").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("span_close"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("evals").and_then(JsonValue::as_f64), Some(10.0));
        assert_eq!(fields.get("note"), Some(&JsonValue::Null));
        assert!(matches!(fields.get("tags"), Some(JsonValue::Arr(items)) if items.len() == 2));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "123abc", "{\"a\":1} extra", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
