//! Conjunct dominance: when is one normalized query's answer a
//! superset of another's?
//!
//! The serving layer caches result sets keyed by exact fingerprint. An
//! exploration session, though, mostly *narrows*: the next query is
//! the previous one plus a conjunct, or the same conjunct with a
//! tighter range. Its answer is contained in the cached one, so the
//! cache can serve it by post-filtering instead of rescanning — if it
//! can prove containment.
//!
//! The proof is per-conjunct dominance over the normalized form: query
//! `wide` subsumes query `tight` when every conjunct of `wide` is
//! implied by `tight`'s conjunct on the same attribute (range ⊇ range,
//! IN-set ⊇ IN-set); an attribute `wide` does not constrain dominates
//! trivially. The test is deliberately conservative — a `false` never
//! costs correctness, only a cache opportunity — so mixed shapes that
//! would need value enumeration (an interval inside an IN-list, say)
//! simply fail.

use crate::normalize::{AttrCondition, NormalizedQuery, NumericRange};
use qcat_data::AttrId;

impl NumericRange {
    /// Is `other` entirely inside `self`? Empty ranges are contained
    /// in everything.
    pub fn contains_range(&self, other: &NumericRange) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        let lo_ok = self.lo < other.lo || (self.lo == other.lo && (self.lo_inclusive || !other.lo_inclusive));
        let hi_ok = self.hi > other.hi || (self.hi == other.hi && (self.hi_inclusive || !other.hi_inclusive));
        lo_ok && hi_ok
    }
}

/// Does every row satisfying `tight` also satisfy `wide`?
///
/// Conservative: a `false` only means dominance could not be *proven*
/// cheaply, never that it does not hold.
pub fn condition_implies(tight: &AttrCondition, wide: &AttrCondition) -> bool {
    use AttrCondition::*;
    if tight.is_unsatisfiable() {
        // The empty set is contained in everything.
        return true;
    }
    match (tight, wide) {
        (InStr(t), InStr(w)) => t.is_subset(w),
        (InNum(t), InNum(w)) => t
            .iter()
            .all(|v| w.binary_search_by(|p| p.total_cmp(v)).is_ok()),
        (InNum(t), Range(w)) => t.iter().all(|&v| w.contains(v)),
        (Range(t), Range(w)) => w.contains_range(t),
        // A non-empty interval inside a finite value set only when the
        // interval is the degenerate point [v, v].
        (Range(t), InNum(w)) => {
            t.lo == t.hi
                && t.lo_inclusive
                && t.hi_inclusive
                && w.binary_search_by(|p| p.total_cmp(&t.lo)).is_ok()
        }
        // Mixed string/numeric shapes on one attribute cannot occur
        // for well-typed queries over one schema; refuse dominance.
        (InStr(_), _) | (_, InStr(_)) => false,
    }
}

/// Does `wide`'s answer provably contain `tight`'s answer (same
/// table, row-id semantics)?
///
/// Holds when every conjunct of `wide` is implied by `tight`'s
/// conjunct on the same attribute; attributes `wide` leaves
/// unconstrained dominate trivially. `wide` must carry no `LIMIT` —
/// a truncated answer is not the full region, so nothing can be
/// proven contained in it. (`ORDER BY` and projection do not affect
/// which rows match, so they are free on both sides.)
pub fn subsumes(wide: &NormalizedQuery, tight: &NormalizedQuery) -> bool {
    if wide.table != tight.table || wide.limit.is_some() {
        return false;
    }
    wide.conditions.iter().all(|(attr, wc)| {
        tight
            .condition(*attr)
            .is_some_and(|tc| condition_implies(tc, wc))
    })
}

/// The conjuncts of `tight` that still need evaluating against rows
/// already known to satisfy `wide`: every attribute whose condition
/// is new or differs from `wide`'s. Conjuncts identical on both sides
/// are already proven by membership in `wide`'s answer and are
/// skipped.
///
/// Only meaningful when [`subsumes`]`(wide, tight)` holds.
pub fn residual_attrs(wide: &NormalizedQuery, tight: &NormalizedQuery) -> Vec<AttrId> {
    tight
        .conditions
        .iter()
        .filter(|(attr, tc)| wide.condition(**attr) != Some(tc))
        .map(|(attr, _)| *attr)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_normalize;
    use qcat_data::{AttrType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap()
    }

    fn q(sql: &str) -> NormalizedQuery {
        parse_and_normalize(sql, &schema()).unwrap()
    }

    #[test]
    fn range_containment_endpoints() {
        let wide = NumericRange::closed(1.0, 10.0);
        assert!(wide.contains_range(&NumericRange::closed(1.0, 10.0)));
        assert!(wide.contains_range(&NumericRange::closed(2.0, 9.0)));
        assert!(wide.contains_range(&NumericRange::half_open(1.0, 10.0)));
        assert!(!wide.contains_range(&NumericRange::closed(0.5, 9.0)));
        assert!(!wide.contains_range(&NumericRange::closed(2.0, 10.5)));
        // Open wide endpoint cannot contain a closed tight one.
        let open = NumericRange::half_open(1.0, 10.0);
        assert!(!open.contains_range(&NumericRange::closed(1.0, 10.0)));
        assert!(open.contains_range(&NumericRange::closed(1.0, 9.0)));
        // Empty is contained everywhere; nothing fits inside empty.
        let empty = NumericRange::half_open(5.0, 5.0);
        assert!(wide.contains_range(&empty));
        assert!(!empty.contains_range(&wide));
        assert!(empty.contains_range(&empty));
        // Unbounded contains everything.
        assert!(NumericRange::unbounded().contains_range(&wide));
        assert!(!wide.contains_range(&NumericRange::unbounded()));
    }

    #[test]
    fn subsumes_tighter_range() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000");
        let tight = q("SELECT * FROM homes WHERE price <= 200000");
        assert!(subsumes(&wide, &tight));
        assert!(!subsumes(&tight, &wide));
        // A query never subsumed by a narrower one on another attr.
        let other = q("SELECT * FROM homes WHERE bedroomcount >= 3");
        assert!(!subsumes(&wide, &other));
    }

    #[test]
    fn subsumes_in_set_shrink() {
        let wide = q("SELECT * FROM homes WHERE neighborhood IN ('A','B','C')");
        let tight = q("SELECT * FROM homes WHERE neighborhood IN ('B')");
        assert!(subsumes(&wide, &tight));
        assert!(!subsumes(&tight, &wide));
        let wide_n = q("SELECT * FROM homes WHERE bedroomcount IN (1,2,3)");
        let tight_n = q("SELECT * FROM homes WHERE bedroomcount IN (2,3)");
        assert!(subsumes(&wide_n, &tight_n));
        assert!(!subsumes(&tight_n, &wide_n));
    }

    #[test]
    fn absent_conjunct_dominates() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000");
        let tight = q("SELECT * FROM homes WHERE price <= 300000 AND bedroomcount >= 3");
        assert!(subsumes(&wide, &tight));
        assert_eq!(residual_attrs(&wide, &tight).len(), 1);
        // The unconstrained wide query subsumes everything on the table.
        let all = q("SELECT * FROM homes");
        assert!(subsumes(&all, &tight));
        assert_eq!(residual_attrs(&all, &tight).len(), 2);
    }

    #[test]
    fn identical_conjuncts_leave_no_residual() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000");
        let tight = q("SELECT * FROM homes WHERE price <= 300000");
        assert!(subsumes(&wide, &tight));
        assert!(residual_attrs(&wide, &tight).is_empty());
    }

    #[test]
    fn limit_on_the_donor_refuses() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000 LIMIT 5");
        let tight = q("SELECT * FROM homes WHERE price <= 200000");
        assert!(!subsumes(&wide, &tight));
        // LIMIT on the *tight* side is fine: the donor's full answer
        // still contains the truncated one.
        let wide = q("SELECT * FROM homes WHERE price <= 300000");
        let tight = q("SELECT * FROM homes WHERE price <= 200000 LIMIT 5");
        assert!(subsumes(&wide, &tight));
    }

    #[test]
    fn tables_must_match() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000");
        let mut tight = q("SELECT * FROM homes WHERE price <= 200000");
        tight.table = "condos".into();
        assert!(!subsumes(&wide, &tight));
    }

    #[test]
    fn numeric_in_inside_range() {
        let wide = q("SELECT * FROM homes WHERE bedroomcount >= 2");
        let tight = q("SELECT * FROM homes WHERE bedroomcount IN (2, 4)");
        assert!(subsumes(&wide, &tight));
        let tight_out = q("SELECT * FROM homes WHERE bedroomcount IN (1, 4)");
        assert!(!subsumes(&wide, &tight_out));
    }

    #[test]
    fn degenerate_range_inside_in_set() {
        let wide = q("SELECT * FROM homes WHERE bedroomcount IN (2, 3, 4)");
        let tight = q("SELECT * FROM homes WHERE bedroomcount = 3");
        assert!(subsumes(&wide, &tight));
        let miss = q("SELECT * FROM homes WHERE bedroomcount = 5");
        assert!(!subsumes(&wide, &miss));
        // A non-degenerate interval is never proven inside a value set.
        let interval = q("SELECT * FROM homes WHERE bedroomcount BETWEEN 2 AND 3");
        assert!(!subsumes(&wide, &interval));
    }

    #[test]
    fn unsatisfiable_tight_is_contained_in_anything() {
        let wide = q("SELECT * FROM homes WHERE neighborhood IN ('A')");
        let tight = q("SELECT * FROM homes WHERE neighborhood IN ('A') AND price < 10 AND price > 20");
        assert!(subsumes(&wide, &tight));
    }

    #[test]
    fn projection_and_order_are_free() {
        let wide = q("SELECT * FROM homes WHERE price <= 300000 ORDER BY price DESC");
        let tight = q("SELECT neighborhood FROM homes WHERE price <= 200000 ORDER BY bedroomcount");
        assert!(subsumes(&wide, &tight));
    }
}
