//! Abstract syntax for the SQL subset, plus SQL rendering.

use crate::token::CompareOp;
use std::fmt;

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl Literal {
    /// Numeric view (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Float(x) => Some(*x),
            Literal::Str(_) => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Literal::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a decimal point so the literal re-lexes as a
                    // float, preserving parse→display→parse round trips.
                    write!(f, "{}.0", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Predicate expression: a conjunction of per-attribute conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `a AND b AND ...` (flattened).
    And(Vec<Expr>),
    /// `attr op literal`.
    Compare {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CompareOp,
        /// Right-hand literal.
        literal: Literal,
    },
    /// `attr IN (l1, l2, ...)`.
    InList {
        /// Attribute name.
        attr: String,
        /// The IN-list, in source order.
        list: Vec<Literal>,
    },
    /// `attr BETWEEN lo AND hi` (inclusive on both ends).
    Between {
        /// Attribute name.
        attr: String,
        /// Lower bound.
        lo: Literal,
        /// Upper bound.
        hi: Literal,
    },
}

impl Expr {
    /// Flatten into the list of leaf conditions (AND-conjuncts).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(parts) => parts.iter().flat_map(|p| p.conjuncts()).collect(),
            leaf => vec![leaf],
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Expr::Compare { attr, op, literal } => write!(f, "{attr} {op} {literal}"),
            Expr::InList { attr, list } => {
                write!(f, "{attr} IN (")?;
                for (i, l) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
            Expr::Between { attr, lo, hi } => write!(f, "{attr} BETWEEN {lo} AND {hi}"),
        }
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItem {
    /// Attribute to sort by.
    pub attr: String,
    /// `DESC` when true, `ASC` otherwise.
    pub descending: bool,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.attr)?;
        if self.descending {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// The SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit column list.
    Columns(Vec<String>),
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Star => write!(f, "*"),
            Projection::Columns(cols) => write!(f, "{}", cols.join(", ")),
        }
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Projection list.
    pub projection: Projection,
    /// The `FROM` table.
    pub table: String,
    /// The `WHERE` predicate, if any.
    pub predicate: Option<Expr>,
    /// `ORDER BY` items, in priority order (empty = table order).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT`, if any.
    pub limit: Option<u64>,
}

impl SelectQuery {
    /// A bare `SELECT <projection> FROM <table> [WHERE ...]` without
    /// ordering or limit.
    pub fn simple(
        projection: Projection,
        table: impl Into<String>,
        predicate: Option<Expr>,
    ) -> Self {
        SelectQuery {
            projection,
            table: table.into(),
            predicate,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {} FROM {}", self.projection, self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_views() {
        assert_eq!(Literal::Int(3).as_f64(), Some(3.0));
        assert_eq!(Literal::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Literal::Str("x".into()).as_f64(), None);
        assert_eq!(Literal::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Literal::Int(3).as_str(), None);
    }

    #[test]
    fn literal_display_escapes_and_roundtrips_floats() {
        assert_eq!(Literal::Str("O'Brien".into()).to_string(), "'O''Brien'");
        assert_eq!(Literal::Float(3.0).to_string(), "3.0");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
        assert_eq!(Literal::Int(3).to_string(), "3");
    }

    #[test]
    fn conjuncts_flatten_nested_and() {
        let leaf = |a: &str| Expr::Compare {
            attr: a.into(),
            op: CompareOp::Eq,
            literal: Literal::Int(1),
        };
        let e = Expr::And(vec![leaf("a"), Expr::And(vec![leaf("b"), leaf("c")])]);
        let flat = e.conjuncts();
        assert_eq!(flat.len(), 3);
    }

    #[test]
    fn query_display() {
        let q = SelectQuery {
            projection: Projection::Star,
            table: "homes".into(),
            order_by: vec![OrderItem {
                attr: "price".into(),
                descending: true,
            }],
            limit: Some(50),
            predicate: Some(Expr::And(vec![
                Expr::InList {
                    attr: "neighborhood".into(),
                    list: vec![Literal::Str("Redmond".into())],
                },
                Expr::Between {
                    attr: "price".into(),
                    lo: Literal::Int(200000),
                    hi: Literal::Int(300000),
                },
            ])),
        };
        assert_eq!(
            q.to_string(),
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond') \
             AND price BETWEEN 200000 AND 300000 ORDER BY price DESC LIMIT 50"
        );
    }

    #[test]
    fn projection_display() {
        assert_eq!(Projection::Star.to_string(), "*");
        assert_eq!(
            Projection::Columns(vec!["a".into(), "b".into()]).to_string(),
            "a, b"
        );
    }
}
