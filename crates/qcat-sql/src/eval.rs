//! Columnar evaluation of normalized conditions against a relation.
//!
//! The conditions of a [`NormalizedQuery`] are compiled once per query
//! (string IN-lists become dictionary-code sets), then applied
//! column-at-a-time, narrowing a candidate row-id list on each pass —
//! the classic selection pipeline of a column store.

use crate::error::NormalizeError;
use crate::normalize::{AttrCondition, NormalizedQuery, NumericRange};
use qcat_data::{AttrId, Column, Relation};
use std::collections::HashSet;

/// One condition compiled against the physical column it filters.
#[derive(Debug, Clone)]
enum CompiledCondition {
    /// Dictionary codes accepted by a categorical IN-list.
    CodeSet(HashSet<u32>),
    /// Accepted numeric values, sorted.
    NumSet(Vec<f64>),
    /// Numeric interval.
    Range(NumericRange),
    /// Statistically impossible (e.g. an IN-list none of whose values
    /// exist in the dictionary): matches nothing.
    Nothing,
}

/// A set of compiled per-attribute filters for one relation.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    filters: Vec<(AttrId, CompiledCondition)>,
}

impl CompiledPredicate {
    /// Compile the conditions of `query` against `relation`.
    ///
    /// Fails when a condition's type does not match the column (the
    /// normalizer already guarantees this when the same schema is
    /// used, so an error here means schema drift between parse and
    /// execution).
    pub fn compile(query: &NormalizedQuery, relation: &Relation) -> Result<Self, NormalizeError> {
        Self::compile_where(query, relation, |_| true)
    }

    /// Compile only the conditions on attributes accepted by `keep`.
    ///
    /// The access-path planner in `qcat-exec` answers some conjuncts
    /// from indexes and routes the rest here as the residual
    /// predicate; `keep` selects that residual subset.
    pub fn compile_where(
        query: &NormalizedQuery,
        relation: &Relation,
        keep: impl Fn(AttrId) -> bool,
    ) -> Result<Self, NormalizeError> {
        let mut filters = Vec::with_capacity(query.conditions.len());
        for (&attr, cond) in query.conditions.iter().filter(|(&a, _)| keep(a)) {
            let column = relation.column(attr);
            let compiled = match (cond, column) {
                (AttrCondition::InStr(values), Column::Categorical { dict, .. }) => {
                    let codes: HashSet<u32> =
                        values.iter().filter_map(|v| dict.lookup(v)).collect();
                    if codes.is_empty() {
                        CompiledCondition::Nothing
                    } else {
                        CompiledCondition::CodeSet(codes)
                    }
                }
                (AttrCondition::InNum(values), Column::Int(_) | Column::Float(_)) => {
                    if values.is_empty() {
                        CompiledCondition::Nothing
                    } else {
                        CompiledCondition::NumSet(values.clone())
                    }
                }
                (AttrCondition::Range(r), Column::Int(_) | Column::Float(_)) => {
                    if r.is_empty() {
                        CompiledCondition::Nothing
                    } else {
                        CompiledCondition::Range(*r)
                    }
                }
                _ => {
                    return Err(NormalizeError::ConditionTypeMismatch {
                        attribute: relation.schema().name_of(attr).to_string(),
                        detail: format!(
                            "condition {cond:?} does not apply to a {} column",
                            column.attr_type()
                        ),
                    })
                }
            };
            filters.push((attr, compiled));
        }
        Ok(CompiledPredicate { filters })
    }

    /// Does row `row` satisfy every filter?
    pub fn matches_row(&self, relation: &Relation, row: u32) -> bool {
        self.filters
            .iter()
            .all(|(attr, cond)| condition_matches(relation.column(*attr), cond, row))
    }

    /// Filter `candidates` (or all rows when `None`) down to matches.
    pub fn filter(&self, relation: &Relation, candidates: Option<&[u32]>) -> Vec<u32> {
        // `cancel` never fires, so the cancellable path cannot abort.
        self.filter_cancellable(relation, candidates, &mut || false)
            .unwrap_or_default()
    }

    /// [`CompiledPredicate::filter`] with a cooperative cancellation
    /// callback, polled every [`Self::CANCEL_STRIDE`] rows examined.
    /// Returns `None` — discarding the partial result — as soon as
    /// `cancel` returns true.
    ///
    /// This is how a scan loop honors a deadline without `qcat-sql`
    /// knowing anything about budgets: the executor passes a closure
    /// that checks its gas, keeping this crate's layering flat.
    pub fn filter_cancellable(
        &self,
        relation: &Relation,
        candidates: Option<&[u32]>,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<u32>> {
        let current: Vec<u32> = match candidates {
            Some(c) => c.to_vec(),
            None => relation.all_row_ids(),
        };
        self.filter_current(relation, current, cancel)
    }

    /// [`CompiledPredicate::filter_cancellable`] over the contiguous
    /// row range `[start, end)` — the shape of one horizontal shard.
    /// The executor's morsel-parallel scan calls this once per shard;
    /// the candidate list is materialized here, per shard, instead of
    /// one relation-sized list up front.
    pub fn filter_range_cancellable(
        &self,
        relation: &Relation,
        start: usize,
        end: usize,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<u32>> {
        let current: Vec<u32> = (start as u32..end as u32).collect();
        self.filter_current(relation, current, cancel)
    }

    /// Shared narrowing loop of the two cancellable filters.
    fn filter_current(
        &self,
        relation: &Relation,
        mut current: Vec<u32>,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<u32>> {
        let mut since_check = 0usize;
        let mut aborted = false;
        for (attr, cond) in &self.filters {
            if current.is_empty() {
                break;
            }
            let column = relation.column(*attr);
            // `retain` cannot break early, so after an abort the
            // remaining rows are dropped without evaluation and the
            // (now meaningless) pass result is discarded below.
            current.retain(|&row| {
                if aborted {
                    return false;
                }
                since_check += 1;
                if since_check >= Self::CANCEL_STRIDE {
                    since_check = 0;
                    if cancel() {
                        aborted = true;
                        return false;
                    }
                }
                condition_matches(column, cond, row)
            });
            if aborted {
                return None;
            }
        }
        Some(current)
    }

    /// Rows examined between cancellation polls in
    /// [`CompiledPredicate::filter_cancellable`]: frequent enough to
    /// bound deadline overshoot to microseconds, rare enough to stay
    /// invisible in scan throughput.
    pub const CANCEL_STRIDE: usize = 1024;

    /// Which shards of `relation` could hold a matching row, judged
    /// against the relation's [`qcat_data::ShardSummaries`].
    ///
    /// `None` when the relation carries no summaries (single shard) —
    /// there is nothing to skip. Otherwise one bool per shard; `false`
    /// is a *proof* that no row of the shard satisfies every filter
    /// (some filter's accepted codes are absent, or its interval /
    /// value set misses the shard's `[min, max]`), so pruned shards
    /// can be skipped by scan and index paths alike without changing
    /// any result. Conditions the summaries cannot judge leave the
    /// shard alive.
    pub fn shard_survival(&self, relation: &Relation) -> Option<Vec<bool>> {
        let summaries = relation.shard_summaries()?;
        let survival = (0..summaries.shard_count())
            .map(|shard| {
                self.filters.iter().all(|(attr, cond)| {
                    let a = attr.index();
                    match cond {
                        // `Nothing` matches no row anywhere.
                        CompiledCondition::Nothing => false,
                        CompiledCondition::CodeSet(codes) => codes
                            .iter()
                            .any(|&c| summaries.may_have_code(shard, a, c)),
                        CompiledCondition::NumSet(values) => {
                            summaries.may_have_value(shard, a, values)
                        }
                        CompiledCondition::Range(r) => summaries.may_overlap_range(
                            shard,
                            a,
                            r.lo,
                            r.lo_inclusive,
                            r.hi,
                            r.hi_inclusive,
                        ),
                    }
                })
            })
            .collect();
        Some(survival)
    }

    /// Number of per-attribute filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when there are no filters (everything matches).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

#[inline]
fn condition_matches(column: &Column, cond: &CompiledCondition, row: u32) -> bool {
    match cond {
        CompiledCondition::Nothing => false,
        CompiledCondition::CodeSet(codes) => column
            .code_at(row as usize)
            .is_some_and(|c| codes.contains(&c)),
        CompiledCondition::NumSet(values) => column
            .numeric_at(row as usize)
            .is_some_and(|v| values.binary_search_by(|p| p.total_cmp(&v)).is_ok()),
        CompiledCondition::Range(r) => column
            .numeric_at(row as usize)
            .is_some_and(|v| r.contains(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_normalize;
    use qcat_data::{AttrType, Field, RelationBuilder, Schema};

    fn homes() -> Relation {
        let schema = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap();
        let rows: &[(&str, f64, i64)] = &[
            ("Redmond", 210_000.0, 3),
            ("Bellevue", 260_000.0, 4),
            ("Seattle", 305_000.0, 2),
            ("Redmond", 199_000.0, 5),
            ("Issaquah", 250_000.0, 3),
        ];
        let mut b = RelationBuilder::with_capacity(schema, rows.len());
        for (n, p, beds) in rows {
            b.push_row(&[(*n).into(), (*p).into(), (*beds).into()])
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn run(sql: &str) -> Vec<u32> {
        let rel = homes();
        let q = parse_and_normalize(sql, rel.schema()).unwrap();
        CompiledPredicate::compile(&q, &rel)
            .unwrap()
            .filter(&rel, None)
    }

    #[test]
    fn in_list_filters_by_code() {
        assert_eq!(
            run("SELECT * FROM homes WHERE neighborhood IN ('Redmond','Bellevue')"),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn range_filters() {
        assert_eq!(
            run("SELECT * FROM homes WHERE price BETWEEN 200000 AND 300000"),
            vec![0, 1, 4]
        );
        assert_eq!(run("SELECT * FROM homes WHERE price < 200000"), vec![3]);
        assert_eq!(
            run("SELECT * FROM homes WHERE bedroomcount >= 4"),
            vec![1, 3]
        );
    }

    #[test]
    fn conjunction_narrows() {
        assert_eq!(
            run(
                "SELECT * FROM homes WHERE neighborhood IN ('Redmond','Bellevue') \
                 AND price BETWEEN 200000 AND 300000 AND bedroomcount = 3"
            ),
            vec![0]
        );
    }

    #[test]
    fn unknown_in_values_match_nothing() {
        assert_eq!(
            run("SELECT * FROM homes WHERE neighborhood IN ('Atlantis')"),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn numeric_in_set() {
        assert_eq!(
            run("SELECT * FROM homes WHERE bedroomcount IN (2, 5)"),
            vec![2, 3]
        );
    }

    #[test]
    fn empty_predicate_matches_all() {
        assert_eq!(run("SELECT * FROM homes"), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn candidate_narrowing() {
        let rel = homes();
        let q = parse_and_normalize("SELECT * FROM homes WHERE bedroomcount = 3", rel.schema())
            .unwrap();
        let p = CompiledPredicate::compile(&q, &rel).unwrap();
        assert_eq!(p.filter(&rel, Some(&[1, 4])), vec![4]);
        assert!(p.matches_row(&rel, 0));
        assert!(!p.matches_row(&rel, 1));
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;
        use qcat_data::{AttrType, Field, RelationBuilder, Schema};

        fn arb_sql() -> impl Strategy<Value = String> {
            let cond = prop_oneof![
                proptest::collection::vec(0usize..4, 1..3).prop_map(|idx| {
                    let names = ["a", "b", "c", "d"];
                    let list = idx
                        .iter()
                        .map(|&i| format!("'{}'", names[i]))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("n IN ({list})")
                }),
                (0i64..100, 0i64..100)
                    .prop_map(|(lo, w)| { format!("v BETWEEN {lo} AND {}", lo + w) }),
                (0i64..100).prop_map(|x| format!("v >= {x}")),
                (0i64..100).prop_map(|x| format!("v < {x}")),
                (0i64..10).prop_map(|x| format!("k = {x}")),
            ];
            proptest::collection::vec(cond, 1..4)
                .prop_map(|cs| format!("SELECT * FROM t WHERE {}", cs.join(" AND ")))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The vectorized filter agrees with a row-at-a-time scan
            /// for arbitrary relations and conjunctions.
            #[test]
            fn prop_filter_matches_bruteforce(
                rows in proptest::collection::vec((0usize..4, 0i64..100, 0i64..10), 0..80),
                sql in arb_sql(),
            ) {
                let schema = Schema::new(vec![
                    Field::new("n", AttrType::Categorical),
                    Field::new("v", AttrType::Float),
                    Field::new("k", AttrType::Int),
                ])
                .unwrap();
                let names = ["a", "b", "c", "d"];
                let mut b = RelationBuilder::new(schema.clone());
                for (ni, v, k) in &rows {
                    b.push_row(&[names[*ni].into(), (*v as f64).into(), (*k).into()])
                        .unwrap();
                }
                let rel = b.finish().unwrap();
                let q = parse_and_normalize(&sql, &schema).unwrap();
                let p = CompiledPredicate::compile(&q, &rel).unwrap();
                let fast = p.filter(&rel, None);
                let slow: Vec<u32> = rel
                    .all_row_ids()
                    .into_iter()
                    .filter(|&r| p.matches_row(&rel, r))
                    .collect();
                prop_assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn compile_where_selects_a_residual_subset() {
        let rel = homes();
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond') AND bedroomcount >= 4",
            rel.schema(),
        )
        .unwrap();
        // Keep only the bedroomcount conjunct (AttrId 2).
        let p = CompiledPredicate::compile_where(&q, &rel, |a| a == AttrId(2)).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.filter(&rel, None), vec![1, 3]);
        // Keeping nothing matches everything.
        let p = CompiledPredicate::compile_where(&q, &rel, |_| false).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.filter(&rel, None).len(), 5);
    }

    #[test]
    fn filter_cancellable_agrees_and_aborts() {
        let schema = Schema::new(vec![Field::new("v", AttrType::Int)]).unwrap();
        let mut b = RelationBuilder::new(schema);
        for i in 0..3000i64 {
            b.push_row(&[(i % 7).into()]).unwrap();
        }
        let rel = b.finish().unwrap();
        let q = parse_and_normalize("SELECT * FROM t WHERE v >= 3", rel.schema()).unwrap();
        let p = CompiledPredicate::compile(&q, &rel).unwrap();
        let plain = p.filter(&rel, None);
        assert!(plain.len() > 1000);
        // A never-firing callback reproduces the plain filter exactly.
        assert_eq!(
            p.filter_cancellable(&rel, None, &mut || false).unwrap(),
            plain
        );
        // Cancelling at the first poll discards the partial result.
        assert_eq!(p.filter_cancellable(&rel, None, &mut || true), None);
        // The callback is polled on a stride, not per row.
        let mut polls = 0usize;
        let _ = p.filter_cancellable(&rel, None, &mut || {
            polls += 1;
            false
        });
        assert_eq!(polls, 3000 / CompiledPredicate::CANCEL_STRIDE);
    }

    #[test]
    fn filter_range_agrees_with_candidate_list() {
        let rel = homes();
        let q = parse_and_normalize("SELECT * FROM homes WHERE bedroomcount = 3", rel.schema())
            .unwrap();
        let p = CompiledPredicate::compile(&q, &rel).unwrap();
        let range = p
            .filter_range_cancellable(&rel, 1, 5, &mut || false)
            .unwrap();
        let list = p.filter(&rel, Some(&[1, 2, 3, 4]));
        assert_eq!(range, list);
        assert_eq!(range, vec![4]);
        // Empty range matches nothing; cancellation discards.
        assert_eq!(
            p.filter_range_cancellable(&rel, 2, 2, &mut || false).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn shard_survival_prunes_proven_misses_only() {
        let schema = Schema::new(vec![
            Field::new("n", AttrType::Categorical),
            Field::new("v", AttrType::Int),
        ])
        .unwrap();
        // Shards of 2: ("a",1)("a",2) | ("b",10)("b",11) | ("c",20)
        let mut b = RelationBuilder::new(schema).with_shard_rows(2);
        for (n, v) in [("a", 1i64), ("a", 2), ("b", 10), ("b", 11), ("c", 20)] {
            b.push_row(&[n.into(), v.into()]).unwrap();
        }
        let rel = b.finish().unwrap();
        let survival = |sql: &str| {
            let q = parse_and_normalize(sql, rel.schema()).unwrap();
            CompiledPredicate::compile(&q, &rel)
                .unwrap()
                .shard_survival(&rel)
                .unwrap()
        };
        assert_eq!(survival("SELECT * FROM t WHERE n IN ('b')"), vec![false, true, false]);
        assert_eq!(survival("SELECT * FROM t WHERE v BETWEEN 9 AND 12"), vec![false, true, false]);
        assert_eq!(survival("SELECT * FROM t WHERE v IN (2, 20)"), vec![true, false, true]);
        // Unknown code: CodeSet is empty -> Nothing -> all pruned.
        assert_eq!(survival("SELECT * FROM t WHERE n IN ('zzz')"), vec![false, false, false]);
        // Conjunction prunes the union of each conjunct's misses.
        assert_eq!(
            survival("SELECT * FROM t WHERE n IN ('a','c') AND v >= 15"),
            vec![false, false, true]
        );
        // No filters: everything survives.
        assert_eq!(survival("SELECT * FROM t"), vec![true, true, true]);
        // Unsharded relations have nothing to prune.
        let q = parse_and_normalize("SELECT * FROM homes WHERE bedroomcount = 3", homes().schema())
            .unwrap();
        assert!(CompiledPredicate::compile(&q, &homes())
            .unwrap()
            .shard_survival(&homes())
            .is_none());
    }

    #[test]
    fn contradiction_short_circuits() {
        assert_eq!(
            run("SELECT * FROM homes WHERE price < 10 AND price > 20"),
            Vec::<u32>::new()
        );
    }
}
