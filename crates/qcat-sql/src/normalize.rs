//! Resolve a parsed query against a schema and fold its conjunction
//! into one condition per attribute.
//!
//! The normalized form is the lingua franca of the workspace: the
//! executor evaluates it, the workload preprocessor counts it, the
//! categorizer tests label overlap against it, and the exploration
//! simulators use it as the "information need" of a synthetic user.

use crate::ast::{Expr, Projection, SelectQuery};
use crate::error::NormalizeError;
use crate::token::CompareOp;
use qcat_data::{AttrId, AttrType, Schema};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A numeric interval with independently inclusive/exclusive endpoints.
///
/// Unbounded ends are represented by ±∞, which keeps interval algebra
/// branch-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericRange {
    /// Lower endpoint (may be `-inf`).
    pub lo: f64,
    /// Whether `lo` itself is included.
    pub lo_inclusive: bool,
    /// Upper endpoint (may be `+inf`).
    pub hi: f64,
    /// Whether `hi` itself is included.
    pub hi_inclusive: bool,
}

impl NumericRange {
    /// The unbounded range `(-inf, +inf)`.
    pub fn unbounded() -> Self {
        NumericRange {
            lo: f64::NEG_INFINITY,
            lo_inclusive: false,
            hi: f64::INFINITY,
            hi_inclusive: false,
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        NumericRange {
            lo,
            lo_inclusive: true,
            hi,
            hi_inclusive: true,
        }
    }

    /// Half-open interval `[lo, hi)` — the shape of the paper's numeric
    /// category labels `a1 ≤ A < a2`.
    pub fn half_open(lo: f64, hi: f64) -> Self {
        NumericRange {
            lo,
            lo_inclusive: true,
            hi,
            hi_inclusive: false,
        }
    }

    /// Does `v` fall inside the range?
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        let above = v > self.lo || (self.lo_inclusive && v == self.lo);
        let below = v < self.hi || (self.hi_inclusive && v == self.hi);
        above && below
    }

    /// True when no value can satisfy the range.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_inclusive && self.hi_inclusive))
    }

    /// Intersection of two ranges.
    pub fn intersect(&self, other: &NumericRange) -> NumericRange {
        let (lo, lo_inclusive) = if self.lo > other.lo {
            (self.lo, self.lo_inclusive)
        } else if other.lo > self.lo {
            (other.lo, other.lo_inclusive)
        } else {
            (self.lo, self.lo_inclusive && other.lo_inclusive)
        };
        let (hi, hi_inclusive) = if self.hi < other.hi {
            (self.hi, self.hi_inclusive)
        } else if other.hi < self.hi {
            (other.hi, other.hi_inclusive)
        } else {
            (self.hi, self.hi_inclusive && other.hi_inclusive)
        };
        NumericRange {
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        }
    }

    /// Interval-overlap test, the paper's numeric overlap semantics:
    /// two ranges overlap when some value satisfies both.
    pub fn overlaps(&self, other: &NumericRange) -> bool {
        !self.intersect(other).is_empty()
    }

    /// The finite lower endpoint, if bounded below.
    pub fn finite_lo(&self) -> Option<f64> {
        self.lo.is_finite().then_some(self.lo)
    }

    /// The finite upper endpoint, if bounded above.
    pub fn finite_hi(&self) -> Option<f64> {
        self.hi.is_finite().then_some(self.hi)
    }
}

/// The folded selection condition on one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrCondition {
    /// Categorical membership: the set of accepted string values.
    InStr(BTreeSet<String>),
    /// Numeric membership: accepted values, sorted and deduplicated.
    InNum(Vec<f64>),
    /// Numeric interval.
    Range(NumericRange),
}

impl AttrCondition {
    /// True when the condition can never match.
    pub fn is_unsatisfiable(&self) -> bool {
        match self {
            AttrCondition::InStr(s) => s.is_empty(),
            AttrCondition::InNum(v) => v.is_empty(),
            AttrCondition::Range(r) => r.is_empty(),
        }
    }

    /// Covering numeric range for stats purposes (see
    /// `qcat-workload`): numeric IN-lists widen to `[min, max]`.
    pub fn covering_range(&self) -> Option<NumericRange> {
        match self {
            AttrCondition::InStr(_) => None,
            AttrCondition::InNum(v) => {
                let (&lo, &hi) = (v.first()?, v.last()?);
                Some(NumericRange::closed(lo, hi))
            }
            AttrCondition::Range(r) => Some(*r),
        }
    }

    /// Intersect with another condition on the same attribute.
    fn intersect(self, other: AttrCondition) -> AttrCondition {
        use AttrCondition::*;
        match (self, other) {
            (InStr(a), InStr(b)) => InStr(a.intersection(&b).cloned().collect()),
            (InNum(a), InNum(b)) => {
                let bset: Vec<f64> = b;
                InNum(
                    a.into_iter()
                        .filter(|x| bset.binary_search_by(|p| p.total_cmp(x)).is_ok())
                        .collect(),
                )
            }
            (InNum(a), Range(r)) | (Range(r), InNum(a)) => {
                InNum(a.into_iter().filter(|&x| r.contains(x)).collect())
            }
            (Range(a), Range(b)) => Range(a.intersect(&b)),
            // Mixed string/numeric conditions on one attribute cannot
            // normalize (callers reject earlier); intersect to nothing.
            (InStr(_), _) | (_, InStr(_)) => InStr(BTreeSet::new()),
        }
    }
}

/// A query resolved against a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    /// The `FROM` table name, lower-cased.
    pub table: String,
    /// Projected attributes (`None` = `*`).
    pub projection: Option<Vec<AttrId>>,
    /// One folded condition per constrained attribute, in attribute
    /// order.
    pub conditions: BTreeMap<AttrId, AttrCondition>,
    /// `ORDER BY` keys (attribute, descending), in priority order.
    pub order_by: Vec<(AttrId, bool)>,
    /// `LIMIT`, if any.
    pub limit: Option<usize>,
}

impl NormalizedQuery {
    /// Condition on `attr`, if the query constrains it.
    pub fn condition(&self, attr: AttrId) -> Option<&AttrCondition> {
        self.conditions.get(&attr)
    }

    /// Does the query place any selection condition on `attr`?
    ///
    /// This is the predicate behind the paper's `NAttr` statistic.
    pub fn constrains(&self, attr: AttrId) -> bool {
        self.conditions.contains_key(&attr)
    }
}

/// Resolve `query` against `schema`.
pub fn normalize(query: &SelectQuery, schema: &Schema) -> Result<NormalizedQuery, NormalizeError> {
    let projection = match &query.projection {
        Projection::Star => None,
        Projection::Columns(cols) => {
            let mut ids = Vec::with_capacity(cols.len());
            for c in cols {
                ids.push(
                    schema
                        .resolve(c)
                        .map_err(|_| NormalizeError::UnknownProjection(c.clone()))?,
                );
            }
            Some(ids)
        }
    };
    let mut conditions: BTreeMap<AttrId, AttrCondition> = BTreeMap::new();
    if let Some(pred) = &query.predicate {
        for leaf in pred.conjuncts() {
            let (attr_name, cond) = leaf_condition(leaf, schema)?;
            let id = schema
                .resolve(attr_name)
                .map_err(|_| NormalizeError::UnknownAttribute(attr_name.to_string()))?;
            conditions
                .entry(id)
                .and_modify(|existing| {
                    let prev = std::mem::replace(existing, AttrCondition::InNum(Vec::new()));
                    *existing = prev.intersect(cond.clone());
                })
                .or_insert(cond);
        }
    }
    let mut order_by = Vec::with_capacity(query.order_by.len());
    for item in &query.order_by {
        let id = schema
            .resolve(&item.attr)
            .map_err(|_| NormalizeError::UnknownAttribute(item.attr.clone()))?;
        order_by.push((id, item.descending));
    }
    Ok(NormalizedQuery {
        table: query.table.to_ascii_lowercase(),
        projection,
        conditions,
        order_by,
        limit: query.limit.map(|n| n as usize),
    })
}

/// Translate one leaf of the conjunction into a typed condition.
fn leaf_condition<'a>(
    leaf: &'a Expr,
    schema: &Schema,
) -> Result<(&'a str, AttrCondition), NormalizeError> {
    match leaf {
        Expr::Compare { attr, op, literal } => {
            let ty = attr_type(attr, schema)?;
            match ty {
                AttrType::Categorical => {
                    let s = literal.as_str().ok_or_else(|| {
                        type_mismatch(
                            attr,
                            "a string literal is required for a categorical attribute",
                        )
                    })?;
                    if *op != CompareOp::Eq {
                        return Err(type_mismatch(
                            attr,
                            "only `=` and IN apply to categorical attributes",
                        ));
                    }
                    let mut set = BTreeSet::new();
                    set.insert(s.to_string());
                    Ok((attr, AttrCondition::InStr(set)))
                }
                AttrType::Int | AttrType::Float => {
                    let v = literal.as_f64().ok_or_else(|| {
                        type_mismatch(
                            attr,
                            "a numeric literal is required for a numeric attribute",
                        )
                    })?;
                    let range = match op {
                        CompareOp::Eq => NumericRange::closed(v, v),
                        CompareOp::Lt => NumericRange {
                            lo: f64::NEG_INFINITY,
                            lo_inclusive: false,
                            hi: v,
                            hi_inclusive: false,
                        },
                        CompareOp::Le => NumericRange {
                            lo: f64::NEG_INFINITY,
                            lo_inclusive: false,
                            hi: v,
                            hi_inclusive: true,
                        },
                        CompareOp::Gt => NumericRange {
                            lo: v,
                            lo_inclusive: false,
                            hi: f64::INFINITY,
                            hi_inclusive: false,
                        },
                        CompareOp::Ge => NumericRange {
                            lo: v,
                            lo_inclusive: true,
                            hi: f64::INFINITY,
                            hi_inclusive: false,
                        },
                    };
                    Ok((attr, AttrCondition::Range(range)))
                }
            }
        }
        Expr::InList { attr, list } => {
            let ty = attr_type(attr, schema)?;
            match ty {
                AttrType::Categorical => {
                    let mut set = BTreeSet::new();
                    for l in list {
                        let s = l.as_str().ok_or_else(|| {
                            type_mismatch(
                                attr,
                                "IN list for a categorical attribute must hold strings",
                            )
                        })?;
                        set.insert(s.to_string());
                    }
                    Ok((attr, AttrCondition::InStr(set)))
                }
                AttrType::Int | AttrType::Float => {
                    let mut vals = Vec::with_capacity(list.len());
                    for l in list {
                        vals.push(l.as_f64().ok_or_else(|| {
                            type_mismatch(attr, "IN list for a numeric attribute must hold numbers")
                        })?);
                    }
                    vals.sort_by(f64::total_cmp);
                    vals.dedup();
                    Ok((attr, AttrCondition::InNum(vals)))
                }
            }
        }
        Expr::Between { attr, lo, hi } => {
            let ty = attr_type(attr, schema)?;
            if !ty.is_numeric() {
                return Err(type_mismatch(attr, "BETWEEN applies to numeric attributes"));
            }
            let lo = lo
                .as_f64()
                .ok_or_else(|| type_mismatch(attr, "BETWEEN bounds must be numeric"))?;
            let hi = hi
                .as_f64()
                .ok_or_else(|| type_mismatch(attr, "BETWEEN bounds must be numeric"))?;
            Ok((attr, AttrCondition::Range(NumericRange::closed(lo, hi))))
        }
        Expr::And(_) => unreachable!("conjuncts() never yields And"),
    }
}

fn attr_type(attr: &str, schema: &Schema) -> Result<AttrType, NormalizeError> {
    let id = schema
        .resolve(attr)
        .map_err(|_| NormalizeError::UnknownAttribute(attr.to_string()))?;
    Ok(schema.type_of(id))
}

fn type_mismatch(attr: &str, detail: &str) -> NormalizeError {
    NormalizeError::ConditionTypeMismatch {
        attribute: attr.to_string(),
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use qcat_data::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
        ])
        .unwrap()
    }

    fn norm(sql: &str) -> NormalizedQuery {
        normalize(&parse_select(sql).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn folds_homes_query() {
        let q = norm(
            "SELECT * FROM ListProperty WHERE neighborhood IN ('Redmond','Bellevue') \
             AND price >= 200000 AND price <= 300000",
        );
        assert_eq!(q.table, "listproperty");
        assert_eq!(q.conditions.len(), 2);
        match q.condition(AttrId(0)).unwrap() {
            AttrCondition::InStr(s) => {
                assert_eq!(s.len(), 2);
                assert!(s.contains("Redmond"));
            }
            other => panic!("{other:?}"),
        }
        match q.condition(AttrId(1)).unwrap() {
            AttrCondition::Range(r) => {
                assert_eq!((r.lo, r.hi), (200000.0, 300000.0));
                assert!(r.lo_inclusive && r.hi_inclusive);
            }
            other => panic!("{other:?}"),
        }
        assert!(q.constrains(AttrId(0)));
        assert!(!q.constrains(AttrId(2)));
    }

    #[test]
    fn between_is_closed() {
        let q = norm("SELECT * FROM t WHERE bedroomcount BETWEEN 3 AND 4");
        match q.condition(AttrId(2)).unwrap() {
            AttrCondition::Range(r) => {
                assert!(r.contains(3.0) && r.contains(4.0));
                assert!(!r.contains(2.999) && !r.contains(4.001));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strict_inequalities_are_open() {
        let q = norm("SELECT * FROM t WHERE price < 100 AND price > 50");
        match q.condition(AttrId(1)).unwrap() {
            AttrCondition::Range(r) => {
                assert!(!r.contains(100.0) && !r.contains(50.0));
                assert!(r.contains(75.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn categorical_equality_becomes_singleton_in() {
        let q = norm("SELECT * FROM t WHERE neighborhood = 'Seattle'");
        match q.condition(AttrId(0)).unwrap() {
            AttrCondition::InStr(s) => assert_eq!(s.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeated_categorical_conditions_intersect() {
        let q = norm(
            "SELECT * FROM t WHERE neighborhood IN ('a','b','c') AND neighborhood IN ('b','c','d')",
        );
        match q.condition(AttrId(0)).unwrap() {
            AttrCondition::InStr(s) => {
                assert_eq!(
                    s.iter().cloned().collect::<Vec<_>>(),
                    vec!["b".to_string(), "c".to_string()]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn contradictory_ranges_become_unsatisfiable() {
        let q = norm("SELECT * FROM t WHERE price < 10 AND price > 20");
        assert!(q.condition(AttrId(1)).unwrap().is_unsatisfiable());
    }

    #[test]
    fn numeric_in_intersects_with_range() {
        let q = norm("SELECT * FROM t WHERE bedroomcount IN (1,2,3,4) AND bedroomcount >= 3");
        match q.condition(AttrId(2)).unwrap() {
            AttrCondition::InNum(v) => assert_eq!(v, &vec![3.0, 4.0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numeric_equality_is_degenerate_range() {
        let q = norm("SELECT * FROM t WHERE bedroomcount = 3");
        match q.condition(AttrId(2)).unwrap() {
            AttrCondition::Range(r) => {
                assert!(r.contains(3.0));
                assert!(!r.contains(3.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_resolution() {
        let q = norm("SELECT price, neighborhood FROM t");
        assert_eq!(q.projection, Some(vec![AttrId(1), AttrId(0)]));
        let err = normalize(&parse_select("SELECT zip FROM t").unwrap(), &schema()).unwrap_err();
        assert!(matches!(err, NormalizeError::UnknownProjection(_)));
    }

    #[test]
    fn type_errors() {
        let bad = [
            "SELECT * FROM t WHERE neighborhood < 'x'",
            "SELECT * FROM t WHERE neighborhood = 3",
            "SELECT * FROM t WHERE price = 'cheap'",
            "SELECT * FROM t WHERE neighborhood BETWEEN 'a' AND 'b'",
            "SELECT * FROM t WHERE price IN ('a')",
            "SELECT * FROM t WHERE bedroomcount IN ('three')",
        ];
        for sql in bad {
            let err = normalize(&parse_select(sql).unwrap(), &schema()).unwrap_err();
            assert!(
                matches!(err, NormalizeError::ConditionTypeMismatch { .. }),
                "{sql} -> {err}"
            );
        }
        let err = normalize(
            &parse_select("SELECT * FROM t WHERE zip = 1").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, NormalizeError::UnknownAttribute(_)));
    }

    #[test]
    fn covering_range_of_numeric_in() {
        let q = norm("SELECT * FROM t WHERE bedroomcount IN (4, 2, 3)");
        let r = q.condition(AttrId(2)).unwrap().covering_range().unwrap();
        assert_eq!((r.lo, r.hi), (2.0, 4.0));
        let q = norm("SELECT * FROM t WHERE neighborhood = 'a'");
        assert!(q.condition(AttrId(0)).unwrap().covering_range().is_none());
    }

    #[test]
    fn range_algebra_edge_cases() {
        let r = NumericRange::half_open(1.0, 2.0);
        assert!(r.contains(1.0) && !r.contains(2.0));
        assert!(NumericRange::closed(1.0, 1.0).contains(1.0));
        assert!(NumericRange::half_open(1.0, 1.0).is_empty());
        let unb = NumericRange::unbounded();
        assert!(unb.contains(f64::MAX) && unb.contains(f64::MIN));
        assert_eq!(unb.finite_lo(), None);
        assert_eq!(NumericRange::closed(0.0, 1.0).finite_hi(), Some(1.0));
    }

    #[test]
    fn overlap_semantics_match_paper() {
        // "the selection condition vmin<=A<=vmax overlaps label a1<=A<a2
        //  iff the two ranges overlap"
        let label = NumericRange::half_open(200_000.0, 225_000.0);
        assert!(NumericRange::closed(100_000.0, 200_000.0).overlaps(&label)); // touches at 200k
        assert!(!NumericRange::closed(225_000.0, 300_000.0).overlaps(&label)); // label excludes 225k
        assert!(NumericRange::closed(210_000.0, 215_000.0).overlaps(&label));
        assert!(!NumericRange::closed(100.0, 200.0).overlaps(&label));
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Intersection is sound: a point is in the intersection iff it
            /// is in both ranges.
            #[test]
            fn prop_range_intersection_pointwise(
                a_lo in -100.0..100.0f64, a_len in 0.0..50.0f64,
                b_lo in -100.0..100.0f64, b_len in 0.0..50.0f64,
                probe in -150.0..150.0f64,
                inc in any::<[bool; 4]>(),
            ) {
                let a = NumericRange { lo: a_lo, lo_inclusive: inc[0], hi: a_lo + a_len, hi_inclusive: inc[1] };
                let b = NumericRange { lo: b_lo, lo_inclusive: inc[2], hi: b_lo + b_len, hi_inclusive: inc[3] };
                let i = a.intersect(&b);
                prop_assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
            }

            /// Overlap is symmetric and consistent with emptiness of the
            /// intersection.
            #[test]
            fn prop_overlap_symmetric(
                a_lo in -100.0..100.0f64, a_len in 0.0..50.0f64,
                b_lo in -100.0..100.0f64, b_len in 0.0..50.0f64,
            ) {
                let a = NumericRange::closed(a_lo, a_lo + a_len);
                let b = NumericRange::closed(b_lo, b_lo + b_len);
                prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
                prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
            }
        }
    }
}
