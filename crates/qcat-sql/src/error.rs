//! Errors for the SQL front-end.

use std::fmt;

/// A lexing or parsing failure, with the byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the SQL string where the problem was detected.
    pub position: usize,
}

impl ParseError {
    /// Construct an error at `position`.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A failure while resolving a parsed query against a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum NormalizeError {
    /// Attribute not found in the schema.
    UnknownAttribute(String),
    /// Projection column not found in the schema.
    UnknownProjection(String),
    /// Predicate type does not suit the attribute's type (e.g. a string
    /// IN-list on a numeric column).
    ConditionTypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Explanation.
        detail: String,
    },
    /// Two conditions on the same attribute are contradictory
    /// (e.g. `price < 10 AND price > 20`). The query is still valid —
    /// it selects nothing — so this is informational; normalization
    /// keeps an empty condition rather than failing. This variant is
    /// reserved for future strict modes.
    EmptyCondition(String),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::UnknownAttribute(a) => {
                write!(f, "unknown attribute `{a}` in predicate")
            }
            NormalizeError::UnknownProjection(a) => {
                write!(f, "unknown attribute `{a}` in SELECT list")
            }
            NormalizeError::ConditionTypeMismatch { attribute, detail } => {
                write!(f, "condition on `{attribute}` has the wrong type: {detail}")
            }
            NormalizeError::EmptyCondition(a) => {
                write!(f, "conditions on `{a}` are contradictory")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Either stage of the front-end can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lex/parse failure.
    Parse(ParseError),
    /// Schema resolution failure.
    Normalize(NormalizeError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => e.fmt(f),
            SqlError::Normalize(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<NormalizeError> for SqlError {
    fn from(e: NormalizeError) -> Self {
        SqlError::Normalize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected `;`", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected `;`");
    }

    #[test]
    fn sql_error_wraps_both() {
        let p: SqlError = ParseError::new("x", 0).into();
        assert!(matches!(p, SqlError::Parse(_)));
        let n: SqlError = NormalizeError::UnknownAttribute("zip".into()).into();
        assert!(n.to_string().contains("zip"));
    }
}
