//! Recursive-descent parser for the SQL subset.

use crate::ast::{Expr, Literal, OrderItem, Projection, SelectQuery};
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parse one `SELECT` statement. The whole input must be consumed.
pub fn parse_select(sql: &str) -> Result<SelectQuery, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.select()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek().position)
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Keyword(k) if *k == kw => {
                self.advance();
                Ok(())
            }
            other => Err(self.err_here(format!(
                "expected {}, found {}",
                kw.as_str(),
                other.describe()
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Eof => Ok(()),
            other => Err(self.err_here(format!(
                "unexpected trailing input: {} (OR and GROUP BY are outside the \
                 supported subset)",
                other.describe()
            ))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            other => Err(self.err_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn select(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let projection = self.projection()?;
        self.expect_keyword(Keyword::From)?;
        let table = self.ident("table name")?;
        let predicate = if self.eat_keyword(Keyword::Where) {
            Some(self.conjunction()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            let mut items = vec![self.order_item()?];
            while matches!(self.peek().kind, TokenKind::Comma) {
                self.advance();
                items.push(self.order_item()?);
            }
            items
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.advance().kind {
                TokenKind::IntLit(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(ParseError::new(
                        format!(
                            "LIMIT takes a non-negative integer, found {}",
                            other.describe()
                        ),
                        self.tokens[self.pos.saturating_sub(1)].position,
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectQuery {
            projection,
            table,
            predicate,
            order_by,
            limit,
        })
    }

    fn order_item(&mut self) -> Result<OrderItem, ParseError> {
        let attr = self.ident("ORDER BY attribute")?;
        let descending = if self.eat_keyword(Keyword::Desc) {
            true
        } else {
            self.eat_keyword(Keyword::Asc);
            false
        };
        Ok(OrderItem { attr, descending })
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if matches!(self.peek().kind, TokenKind::Star) {
            self.advance();
            return Ok(Projection::Star);
        }
        let mut cols = vec![self.ident("column name")?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.advance();
            cols.push(self.ident("column name")?);
        }
        Ok(Projection::Columns(cols))
    }

    fn conjunction(&mut self) -> Result<Expr, ParseError> {
        let first = self.condition()?;
        let mut rest = Vec::new();
        while self.eat_keyword(Keyword::And) {
            rest.push(self.condition()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.append(&mut rest);
            Expr::And(parts)
        })
    }

    fn condition(&mut self) -> Result<Expr, ParseError> {
        // Parenthesized sub-conjunction.
        if matches!(self.peek().kind, TokenKind::LParen) {
            self.advance();
            let inner = self.conjunction()?;
            if !matches!(self.peek().kind, TokenKind::RParen) {
                return Err(self.err_here("expected `)`"));
            }
            self.advance();
            return Ok(inner);
        }
        let attr = self.ident("attribute name")?;
        match self.advance().kind {
            TokenKind::Op(op) => {
                let literal = self.literal()?;
                Ok(Expr::Compare { attr, op, literal })
            }
            TokenKind::Keyword(Keyword::In) => {
                if !matches!(self.peek().kind, TokenKind::LParen) {
                    return Err(self.err_here("expected `(` after IN"));
                }
                self.advance();
                let mut list = vec![self.literal()?];
                while matches!(self.peek().kind, TokenKind::Comma) {
                    self.advance();
                    list.push(self.literal()?);
                }
                if !matches!(self.peek().kind, TokenKind::RParen) {
                    return Err(self.err_here("expected `)` to close IN list"));
                }
                self.advance();
                Ok(Expr::InList { attr, list })
            }
            TokenKind::Keyword(Keyword::Between) => {
                let lo = self.literal()?;
                self.expect_keyword(Keyword::And)?;
                let hi = self.literal()?;
                Ok(Expr::Between { attr, lo, hi })
            }
            other => Err(ParseError::new(
                format!(
                    "expected comparison, IN, or BETWEEN after `{attr}`, found {}",
                    other.describe()
                ),
                self.tokens[self.pos.saturating_sub(1)].position,
            )),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match &self.peek().kind {
            TokenKind::IntLit(i) => {
                let v = *i;
                self.advance();
                Ok(Literal::Int(v))
            }
            TokenKind::FloatLit(x) => {
                let v = *x;
                self.advance();
                Ok(Literal::Float(v))
            }
            TokenKind::StrLit(s) => {
                let v = s.clone();
                self.advance();
                Ok(Literal::Str(v))
            }
            other => Err(self.err_here(format!("expected literal, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::CompareOp;

    #[test]
    fn parses_the_homes_query() {
        let q = parse_select(
            "SELECT * FROM listproperty WHERE neighborhood IN ('Redmond', 'Bellevue', \
             'Issaquah') AND price >= 200000 AND price <= 300000",
        )
        .unwrap();
        assert_eq!(q.table, "listproperty");
        assert_eq!(q.projection, Projection::Star);
        let conj = q.predicate.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 3);
        assert!(
            matches!(conj[0], Expr::InList { attr, list } if attr == "neighborhood" && list.len() == 3)
        );
    }

    #[test]
    fn parses_between_and_projection() {
        let q =
            parse_select("select neighborhood, price from homes where price between 100 and 200")
                .unwrap();
        assert_eq!(
            q.projection,
            Projection::Columns(vec!["neighborhood".into(), "price".into()])
        );
        assert!(matches!(
            q.predicate.unwrap(),
            Expr::Between { attr, lo: Literal::Int(100), hi: Literal::Int(200) } if attr == "price"
        ));
    }

    #[test]
    fn parses_no_where() {
        let q = parse_select("SELECT * FROM homes").unwrap();
        assert!(q.predicate.is_none());
    }

    #[test]
    fn parses_parenthesized_conjunction() {
        let q = parse_select("SELECT * FROM t WHERE (a = 1 AND b = 2) AND c = 3").unwrap();
        assert_eq!(q.predicate.unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn comparison_ops() {
        for (sql, op) in [
            ("a = 1", CompareOp::Eq),
            ("a < 1", CompareOp::Lt),
            ("a <= 1", CompareOp::Le),
            ("a > 1", CompareOp::Gt),
            ("a >= 1", CompareOp::Ge),
        ] {
            let q = parse_select(&format!("SELECT * FROM t WHERE {sql}")).unwrap();
            assert!(
                matches!(q.predicate.unwrap(), Expr::Compare { op: o, .. } if o == op),
                "{sql}"
            );
        }
    }

    #[test]
    fn trailing_input_rejected_with_hint() {
        let err = parse_select("SELECT * FROM t WHERE a = 1 GROUP").unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
        // ORDER without BY is a parse error, not trailing garbage.
        let err = parse_select("SELECT * FROM t WHERE a = 1 ORDER").unwrap_err();
        assert!(err.message.contains("BY"), "{}", err.message);
    }

    #[test]
    fn parses_order_by_and_limit() {
        let q =
            parse_select("SELECT * FROM t WHERE a = 1 ORDER BY price DESC, beds ASC, zip LIMIT 25")
                .unwrap();
        assert_eq!(q.order_by.len(), 3);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert!(!q.order_by[2].descending);
        assert_eq!(q.limit, Some(25));
        // LIMIT without ORDER BY.
        let q = parse_select("SELECT * FROM t LIMIT 5").unwrap();
        assert!(q.order_by.is_empty());
        assert_eq!(q.limit, Some(5));
        // Bad limit.
        assert!(parse_select("SELECT * FROM t LIMIT 'x'").is_err());
        assert!(parse_select("SELECT * FROM t LIMIT -1").is_err());
    }

    #[test]
    fn error_positions_are_plausible() {
        let err = parse_select("SELECT * FROM").unwrap_err();
        assert_eq!(err.position, 13);
        let err = parse_select("SELECT * FROM t WHERE price IN 3").unwrap_err();
        assert!(err.message.contains("expected `(`"));
    }

    #[test]
    fn empty_in_list_rejected() {
        assert!(parse_select("SELECT * FROM t WHERE a IN ()").is_err());
    }

    #[test]
    fn missing_and_in_between_rejected() {
        let err = parse_select("SELECT * FROM t WHERE a BETWEEN 1 2").unwrap_err();
        assert!(err.message.contains("AND"));
    }

    #[test]
    fn keywords_cannot_be_table_names() {
        assert!(parse_select("SELECT * FROM where").is_err());
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        // --- display/parse round-trip property ---------------------------------

        fn arb_literal() -> impl Strategy<Value = Literal> {
            prop_oneof![
                any::<i32>().prop_map(|i| Literal::Int(i as i64)),
                (-1.0e6..1.0e6f64).prop_map(Literal::Float),
                "[a-zA-Z '][a-zA-Z0-9 ']{0,10}".prop_map(Literal::Str),
            ]
        }

        fn arb_attr() -> impl Strategy<Value = String> {
            "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
                crate::token::Keyword::from_ident(s).is_none()
            })
        }

        fn arb_condition() -> impl Strategy<Value = Expr> {
            prop_oneof![
                (arb_attr(), arb_literal()).prop_map(|(attr, literal)| Expr::Compare {
                    attr,
                    op: CompareOp::Le,
                    literal
                }),
                (arb_attr(), proptest::collection::vec(arb_literal(), 1..4))
                    .prop_map(|(attr, list)| Expr::InList { attr, list }),
                (arb_attr(), arb_literal(), arb_literal())
                    .prop_map(|(attr, lo, hi)| { Expr::Between { attr, lo, hi } }),
            ]
        }

        proptest! {
            /// Fuzz: the front-end never panics on arbitrary input — it
            /// parses or returns a positioned error.
            #[test]
            fn prop_parser_total_on_garbage(input in ".{0,160}") {
                match parse_select(&input) {
                    Ok(q) => {
                        // Anything that parses must re-render and re-parse.
                        let again = parse_select(&q.to_string()).unwrap();
                        prop_assert_eq!(again, q);
                    }
                    Err(e) => prop_assert!(e.position <= input.len()),
                }
            }

            /// Fuzz with SQL-shaped fragments for deeper grammar coverage.
            #[test]
            fn prop_parser_total_on_sqlish(
                pieces in proptest::collection::vec(
                    prop_oneof![
                        Just("SELECT".to_string()),
                        Just("FROM".to_string()),
                        Just("WHERE".to_string()),
                        Just("AND".to_string()),
                        Just("IN".to_string()),
                        Just("BETWEEN".to_string()),
                        Just("*".to_string()),
                        Just("(".to_string()),
                        Just(")".to_string()),
                        Just(",".to_string()),
                        Just("<=".to_string()),
                        Just("'x'".to_string()),
                        Just("42".to_string()),
                        Just("2.5".to_string()),
                        Just("price".to_string()),
                        Just("t".to_string()),
                    ],
                    0..24,
                )
            ) {
                let input = pieces.join(" ");
                let _ = parse_select(&input); // must not panic
            }

            /// Rendering any query to SQL and re-parsing yields the same AST.
            #[test]
            fn prop_display_parse_roundtrip(
                table in arb_attr(),
                conds in proptest::collection::vec(arb_condition(), 0..5),
                order_attrs in proptest::collection::vec((arb_attr(), any::<bool>()), 0..3),
                limit in proptest::option::of(0u64..1000),
            ) {
                let predicate = match conds.len() {
                    0 => None,
                    1 => Some(conds[0].clone()),
                    _ => Some(Expr::And(conds)),
                };
                let q = SelectQuery {
                    projection: Projection::Star,
                    table,
                    predicate,
                    order_by: order_attrs
                        .into_iter()
                        .map(|(attr, descending)| crate::ast::OrderItem { attr, descending })
                        .collect(),
                    limit,
                };
                let sql = q.to_string();
                let back = parse_select(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
                prop_assert_eq!(back, q);
            }
        }
    }
}
