//! Hand-written lexer for the SQL subset.

use crate::error::ParseError;
use crate::token::{CompareOp, Keyword, Token, TokenKind};

/// Tokenize `sql` into a vector ending with an `Eof` token.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Op(CompareOp::Eq),
                    position: i,
                });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Op(CompareOp::Le),
                        position: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    return Err(ParseError::new(
                        "`<>` is not supported: the workload model defines overlap only \
                         for IN-lists and ranges (paper Section 4.2)",
                        i,
                    ));
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(CompareOp::Lt),
                        position: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Op(CompareOp::Ge),
                        position: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(CompareOp::Gt),
                        position: i,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(sql, i)?;
                tokens.push(Token {
                    kind: TokenKind::StrLit(s),
                    position: i,
                });
                i = next;
            }
            b'0'..=b'9' | b'.' | b'-' | b'+' => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token { kind, position: i });
                i = next;
            }
            b if b.is_ascii_alphabetic() || b == b'_' || b == b'"' => {
                let (name, next) = lex_ident(sql, i)?;
                let kind = match Keyword::from_ident(&name) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(name),
                };
                tokens.push(Token { kind, position: i });
                i = next;
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    i,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: bytes.len(),
    });
    Ok(tokens)
}

/// Lex a single-quoted string with `''` escaping. Returns the unescaped
/// contents and the index just past the closing quote.
fn lex_string(sql: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = sql.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(ParseError::new("unterminated string literal", start))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Lex a number (optional sign, digits, optional fraction, optional
/// exponent). Returns `IntLit` when it fits an i64 with no fraction.
fn lex_number(sql: &str, start: usize) -> Result<(TokenKind, usize), ParseError> {
    let bytes = sql.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' || bytes[i] == b'+' {
        i += 1;
    }
    let digits_start = i;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if !saw_exp && i > digits_start => {
                saw_exp = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &sql[start..i];
    if i == digits_start || text == "-" || text == "+" || text == "." {
        return Err(ParseError::new("malformed number", start));
    }
    if !saw_dot && !saw_exp {
        if let Ok(v) = text.parse::<i64>() {
            return Ok((TokenKind::IntLit(v), i));
        }
    }
    text.parse::<f64>()
        .map(|v| (TokenKind::FloatLit(v), i))
        .map_err(|_| ParseError::new(format!("malformed number `{text}`"), start))
}

/// Lex a bare or double-quoted identifier. Returns the name and the
/// index just past it.
fn lex_ident(sql: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = sql.as_bytes();
    if bytes[start] == b'"' {
        // Delimited identifier: everything up to the closing quote.
        let mut i = start + 1;
        while i < bytes.len() && bytes[i] != b'"' {
            i += utf8_len(bytes[i]);
        }
        if i >= bytes.len() {
            return Err(ParseError::new("unterminated quoted identifier", start));
        }
        return Ok((sql[start + 1..i].to_string(), i + 1));
    }
    let mut i = start;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            i += 1;
        } else {
            break;
        }
    }
    Ok((sql[start..i].to_string(), i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let toks = kinds(
            "SELECT * FROM listproperty WHERE neighborhood IN ('Redmond','Bellevue') \
             AND price BETWEEN 200000 AND 300000",
        );
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1], TokenKind::Star);
        assert!(toks.contains(&TokenKind::StrLit("Redmond".into())));
        assert!(toks.contains(&TokenKind::IntLit(200000)));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escape() {
        assert_eq!(
            kinds("'O''Brien'"),
            vec![TokenKind::StrLit("O'Brien".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("WHERE a = 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.position, 10);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("-7")[0], TokenKind::IntLit(-7));
        assert_eq!(kinds("2.5")[0], TokenKind::FloatLit(2.5));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("-1.5e-2")[0], TokenKind::FloatLit(-0.015));
        // i64 overflow falls back to float
        assert!(matches!(
            kinds("99999999999999999999")[0],
            TokenKind::FloatLit(_)
        ));
    }

    #[test]
    fn malformed_number_errors() {
        assert!(tokenize("price = .").is_err());
        assert!(tokenize("price = -").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <= 1 >= < > ="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Op(CompareOp::Le),
                TokenKind::IntLit(1),
                TokenKind::Op(CompareOp::Ge),
                TokenKind::Op(CompareOp::Lt),
                TokenKind::Op(CompareOp::Gt),
                TokenKind::Op(CompareOp::Eq),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn not_equal_rejected_with_reason() {
        let err = tokenize("a <> 1").unwrap_err();
        assert!(err.message.contains("<>"));
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(
            kinds("\"year built\""),
            vec![TokenKind::Ident("year built".into()), TokenKind::Eof]
        );
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = tokenize("a = 1 ; b").unwrap_err();
        assert_eq!(err.position, 6);
        assert!(err.message.contains(';'));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'Zürich'")[0],
            TokenKind::StrLit("Zürich".to_string())
        );
    }
}
