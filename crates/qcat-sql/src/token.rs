//! Tokens produced by the lexer.

use std::fmt;

/// Keywords of the supported SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `SELECT`
    Select,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `IN`
    In,
    /// `BETWEEN`
    Between,
    /// `ORDER`
    Order,
    /// `BY`
    By,
    /// `LIMIT`
    Limit,
    /// `ASC`
    Asc,
    /// `DESC`
    Desc,
}

impl Keyword {
    /// Match a case-insensitive identifier against the keyword table.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Some(Keyword::Select),
            "FROM" => Some(Keyword::From),
            "WHERE" => Some(Keyword::Where),
            "AND" => Some(Keyword::And),
            "IN" => Some(Keyword::In),
            "BETWEEN" => Some(Keyword::Between),
            "ORDER" => Some(Keyword::Order),
            "BY" => Some(Keyword::By),
            "LIMIT" => Some(Keyword::Limit),
            "ASC" => Some(Keyword::Asc),
            "DESC" => Some(Keyword::Desc),
            _ => None,
        }
    }

    /// Canonical (upper-case) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::And => "AND",
            Keyword::In => "IN",
            Keyword::Between => "BETWEEN",
            Keyword::Order => "ORDER",
            Keyword::By => "BY",
            Keyword::Limit => "LIMIT",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (see [`Keyword`]).
    Keyword(Keyword),
    /// Bare identifier (attribute or table name).
    Ident(String),
    /// Single-quoted string literal, unescaped.
    StrLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// A comparison operator.
    Op(CompareOp),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {}", k.as_str()),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::StrLit(s) => format!("string '{s}'"),
            TokenKind::IntLit(i) => format!("integer {i}"),
            TokenKind::FloatLit(x) => format!("number {x}"),
            TokenKind::Op(op) => format!("operator {op}"),
            TokenKind::Comma => "`,`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub position: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_match_case_insensitively() {
        assert_eq!(Keyword::from_ident("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_ident("BeTwEeN"), Some(Keyword::Between));
        assert_eq!(Keyword::from_ident("price"), None);
    }

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::From,
            Keyword::Where,
            Keyword::And,
            Keyword::In,
            Keyword::Between,
            Keyword::Order,
            Keyword::By,
            Keyword::Limit,
            Keyword::Asc,
            Keyword::Desc,
        ] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn compare_op_flip() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Ge.flipped(), CompareOp::Le);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(TokenKind::Comma.describe(), "`,`");
        assert_eq!(
            TokenKind::Ident("price".into()).describe(),
            "identifier `price`"
        );
        assert!(TokenKind::Op(CompareOp::Le).describe().contains("<="));
    }
}
