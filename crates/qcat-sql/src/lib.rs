#![warn(missing_docs)]

//! SQL front-end for the qcat workspace.
//!
//! The SIGMOD 2004 categorization paper assumes (Section 4.2) that both
//! the user query and every workload query are selection queries over a
//! single wide table — conjunctions of `IN`-clauses on categorical
//! attributes and range predicates on numeric attributes. This crate
//! implements exactly that subset:
//!
//! ```sql
//! SELECT * FROM listproperty
//! WHERE neighborhood IN ('Redmond', 'Bellevue')
//!   AND price BETWEEN 200000 AND 300000
//!   AND bedroomcount >= 3
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`normalize`] (resolve
//! attribute names against a [`qcat_data::Schema`] and fold the
//! conjunction into one [`normalize::AttrCondition`] per attribute) →
//! [`eval`] (columnar evaluation producing matching row ids).
//!
//! The normalized per-attribute view is what the paper's workload
//! preprocessing consumes (`NAttr`, `occ(v)`, query-range start/end
//! counts), and also what the executor evaluates, so parsing happens
//! once per query string.

pub mod ast;
pub mod contain;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod token;

pub use ast::{Expr, Literal, Projection, SelectQuery};
pub use contain::{condition_implies, residual_attrs, subsumes};
pub use error::{NormalizeError, ParseError, SqlError};
pub use normalize::{AttrCondition, NormalizedQuery, NumericRange};
pub use parser::parse_select;

/// Parse and normalize in one step.
pub fn parse_and_normalize(
    sql: &str,
    schema: &qcat_data::Schema,
) -> Result<NormalizedQuery, SqlError> {
    let query = {
        let _span = qcat_obs::span!("sql.parse", bytes = sql.len());
        parse_select(sql)?
    };
    let _span = qcat_obs::span!("sql.normalize", has_predicate = query.predicate.is_some());
    Ok(normalize::normalize(&query, schema)?)
}
