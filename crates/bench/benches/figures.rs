//! End-to-end benchmarks tracking the paper's experiment pipelines:
//! one synthetic exploration of the Figure 7/8 inner loop, and one
//! noisy-subject task of the Figure 9–12 loop.

use criterion::{criterion_group, criterion_main, Criterion};
use qcat_bench::bench_env;
use qcat_core::cost::cost_all;
use qcat_explore::{actual_cost_all, noisy_explore_all, NoisyUser, RelevanceJudge};
use qcat_study::Technique;
use std::hint::black_box;

/// One iteration of the simulated-study inner loop: build all three
/// trees for a broadened query, estimate, and replay the synthetic
/// exploration.
fn simulated_inner_loop(c: &mut Criterion) {
    let fixture = bench_env();
    let (qw, result) = &fixture.cases[0];
    // The held-out W: reuse a raw workload query matching this case.
    let w = fixture
        .env
        .log
        .queries()
        .iter()
        .find(|w| w.conditions.len() >= 2)
        .expect("workload has selective queries");
    let judge = RelevanceJudge::from_query(w, &fixture.env.relation).expect("compiles");
    c.bench_function("simulated_study_inner_loop", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for technique in Technique::ALL {
                let tree = fixture
                    .env
                    .categorize(&fixture.stats, technique, result, Some(qw));
                total += cost_all(&tree, 1.0).total();
                total += actual_cost_all(&tree, w, &judge).items() as f64;
            }
            black_box(total)
        });
    });
}

/// One noisy-subject exploration of a prebuilt tree.
fn noisy_subject_replay(c: &mut Criterion) {
    let fixture = bench_env();
    let (qw, result) = &fixture.cases[0];
    let tree = fixture
        .env
        .categorize(&fixture.stats, Technique::CostBased, result, Some(qw));
    let need = qcat_sql::parse_and_normalize(
        "SELECT * FROM listproperty WHERE neighborhood IN ('Redmond','Bellevue') \
         AND price BETWEEN 200000 AND 300000",
        fixture.env.relation.schema(),
    )
    .expect("valid need");
    let judge = RelevanceJudge::from_query(&need, &fixture.env.relation).expect("compiles");
    let user = NoisyUser::new(17);
    c.bench_function("noisy_subject_replay", |b| {
        b.iter(|| black_box(noisy_explore_all(&tree, &need, &judge, &user)).items());
    });
}

criterion_group!(benches, simulated_inner_loop, noisy_subject_replay);
criterion_main!(benches);
