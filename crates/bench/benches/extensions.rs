//! Benchmarks for the opt-in extensions: workload ranking, query
//! refinement, statistics persistence, and the conditional-probability
//! estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::{bench_env, sample_query};
use qcat_core::{refined_sql, Categorizer, WorkloadRanker};
use qcat_exec::execute_normalized;
use qcat_workload::{load_statistics, save_statistics, WorkloadStatistics};
use std::hint::black_box;

fn ranking(c: &mut Criterion) {
    let fixture = bench_env();
    let ranker = WorkloadRanker::new(&fixture.stats);
    let mut group = c.benchmark_group("workload_rank");
    for len in [200usize, 2_000] {
        let rows: Vec<u32> = (0..len as u32).collect();
        group.throughput(criterion::Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &rows, |b, rows| {
            b.iter(|| black_box(ranker.rank(&fixture.env.relation, rows)).len());
        });
    }
    group.finish();
}

fn refinement(c: &mut Criterion) {
    let fixture = bench_env();
    let query = sample_query(fixture);
    let result = execute_normalized(&fixture.env.relation, &query).expect("query runs");
    let tree =
        Categorizer::new(&fixture.stats, fixture.env.config).categorize(&result, Some(&query));
    // A deep-ish node.
    let mut node = tree.root();
    while let Some(&child) = tree.node(node).children.first() {
        node = child;
    }
    c.bench_function("refined_sql_deep_node", |b| {
        b.iter(|| black_box(refined_sql(&tree, node, Some(&query), "listproperty")).len());
    });
}

fn persistence(c: &mut Criterion) {
    let fixture = bench_env();
    let mut buf = Vec::new();
    save_statistics(&fixture.stats, &mut buf).expect("serializes");
    let mut group = c.benchmark_group("stats_persistence");
    group.throughput(criterion::Throughput::Bytes(buf.len() as u64));
    group.bench_function("save", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            save_statistics(&fixture.stats, &mut out).expect("serializes");
            black_box(out.len())
        });
    });
    group.bench_function("load", |b| {
        b.iter(|| {
            black_box(
                load_statistics(buf.as_slice(), fixture.env.relation.schema())
                    .expect("round trips"),
            )
            .n_queries()
        });
    });
    group.finish();
}

fn conditional_estimator(c: &mut Criterion) {
    let fixture = bench_env();
    let stats = WorkloadStatistics::build_with_correlation(
        &fixture.env.log,
        fixture.env.relation.schema(),
        &fixture.env.prep,
    );
    let query = sample_query(fixture);
    let result = execute_normalized(&fixture.env.relation, &query).expect("query runs");
    let config = fixture.env.config.with_conditional_probabilities(true);
    c.bench_function("categorize_conditional_probabilities", |b| {
        let categorizer = Categorizer::new(&stats, config);
        b.iter(|| black_box(categorizer.categorize(&result, Some(&query))).node_count());
    });
}

criterion_group!(
    benches,
    ranking,
    refinement,
    persistence,
    conditional_estimator
);
criterion_main!(benches);
