//! Partitioner micro-benchmarks: single-value categorical splits,
//! cost-based numeric splitpoint selection, and the equi-width
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::bench_env;
use qcat_core::partition::categorical::{CategoricalPlan, ValueOrder};
use qcat_core::partition::equiwidth::equiwidth_split;
use qcat_core::partition::numeric::NumericPlan;
use qcat_core::ProbabilityEstimator;
use std::hint::black_box;

fn attr(name: &str) -> qcat_data::AttrId {
    bench_env()
        .env
        .relation
        .schema()
        .resolve(name)
        .expect("listproperty attribute")
}

fn tset_of(len: usize) -> Vec<u32> {
    let n = bench_env().env.relation.len() as u32;
    (0..n).take(len).collect()
}

fn categorical_split(c: &mut Criterion) {
    let fixture = bench_env();
    let nb = attr("neighborhood");
    let plan = CategoricalPlan::build(
        &fixture.env.relation,
        nb,
        &fixture.stats,
        ValueOrder::ByOccurrence,
    );
    let mut group = c.benchmark_group("categorical_split");
    for len in [500usize, 2_000, 6_000] {
        let tset = tset_of(len);
        group.throughput(criterion::Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &tset, |b, tset| {
            b.iter(|| black_box(plan.split(&fixture.env.relation, tset)).len());
        });
    }
    group.finish();
}

fn categorical_plan_build(c: &mut Criterion) {
    let fixture = bench_env();
    let nb = attr("neighborhood");
    c.bench_function("categorical_plan_build", |b| {
        b.iter(|| {
            black_box(CategoricalPlan::build(
                &fixture.env.relation,
                nb,
                &fixture.stats,
                ValueOrder::ByOccurrence,
            ))
            .code_order()
            .len()
        });
    });
}

fn numeric_split(c: &mut Criterion) {
    let fixture = bench_env();
    let price = attr("price");
    let estimator = ProbabilityEstimator::new(&fixture.stats);
    let plan = NumericPlan::build(&fixture.stats, price, 50_000.0, 2_000_000.0);
    let mut group = c.benchmark_group("numeric_split");
    for len in [500usize, 2_000, 6_000] {
        let tset = tset_of(len);
        group.throughput(criterion::Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &tset, |b, tset| {
            b.iter(|| {
                plan.split(
                    &fixture.env.relation,
                    tset,
                    &fixture.env.config,
                    &estimator,
                    0.4,
                )
                .map(|p| black_box(p).len())
            });
        });
    }
    group.finish();
}

fn equiwidth_baseline(c: &mut Criterion) {
    let fixture = bench_env();
    let price = attr("price");
    let tset = tset_of(6_000);
    c.bench_function("equiwidth_split_6000", |b| {
        b.iter(|| {
            equiwidth_split(&fixture.env.relation, price, &tset, 25_000.0)
                .map(|p| black_box(p).len())
        });
    });
}

criterion_group!(
    benches,
    categorical_split,
    categorical_plan_build,
    numeric_split,
    equiwidth_baseline
);
criterion_main!(benches);
