//! SQL front-end and executor benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::{bench_env, sample_query};
use qcat_exec::execute_normalized;
use qcat_sql::{parse_and_normalize, parse_select};
use std::hint::black_box;

const HOMES_SQL: &str = "SELECT * FROM listproperty \
    WHERE neighborhood IN ('Redmond', 'Bellevue', 'Kirkland', 'Issaquah') \
    AND price BETWEEN 200000 AND 300000 AND bedroomcount BETWEEN 3 AND 4";

fn parse(c: &mut Criterion) {
    c.bench_function("parse_select_homes_query", |b| {
        b.iter(|| black_box(parse_select(HOMES_SQL)).unwrap().table.len());
    });
}

fn normalize(c: &mut Criterion) {
    let fixture = bench_env();
    let schema = fixture.env.relation.schema();
    c.bench_function("parse_and_normalize_homes_query", |b| {
        b.iter(|| {
            black_box(parse_and_normalize(HOMES_SQL, schema))
                .unwrap()
                .conditions
                .len()
        });
    });
}

fn execute(c: &mut Criterion) {
    let fixture = bench_env();
    let queries = [
        (
            "narrow",
            parse_and_normalize(HOMES_SQL, fixture.env.relation.schema()).unwrap(),
        ),
        ("broad", sample_query(fixture)),
    ];
    let mut group = c.benchmark_group("execute_selection");
    group.throughput(criterion::Throughput::Elements(
        fixture.env.relation.len() as u64
    ));
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| {
                black_box(execute_normalized(&fixture.env.relation, q))
                    .unwrap()
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, parse, normalize, execute);
criterion_main!(benches);
