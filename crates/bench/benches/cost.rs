//! Cost-model evaluation benchmarks: Equations (1) and (2) over real
//! trees, plus the exploration replays that measure actual cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::{bench_env, sample_query};
use qcat_core::cost::{cost_all, cost_one};
use qcat_core::Categorizer;
use qcat_exec::execute_normalized;
use qcat_explore::{actual_cost_all, actual_cost_one, RelevanceJudge};
use std::hint::black_box;

fn tree_fixture() -> (qcat_core::CategoryTree, qcat_sql::NormalizedQuery) {
    let fixture = bench_env();
    let query = sample_query(fixture);
    let result = execute_normalized(&fixture.env.relation, &query).expect("query runs");
    let tree =
        Categorizer::new(&fixture.stats, fixture.env.config).categorize(&result, Some(&query));
    (tree, query)
}

fn estimated_costs(c: &mut Criterion) {
    let (tree, _) = tree_fixture();
    let mut group = c.benchmark_group("estimated_cost");
    group.throughput(criterion::Throughput::Elements(tree.node_count() as u64));
    group.bench_with_input(BenchmarkId::from_parameter("cost_all"), &tree, |b, tree| {
        b.iter(|| black_box(cost_all(tree, 1.0)).total());
    });
    group.bench_with_input(BenchmarkId::from_parameter("cost_one"), &tree, |b, tree| {
        b.iter(|| black_box(cost_one(tree, 1.0, 0.5)).total());
    });
    group.finish();
}

fn actual_cost_replays(c: &mut Criterion) {
    let fixture = bench_env();
    let (tree, _) = tree_fixture();
    let need = qcat_sql::parse_and_normalize(
        "SELECT * FROM listproperty WHERE neighborhood IN ('Redmond','Bellevue') \
         AND price BETWEEN 225000 AND 275000",
        fixture.env.relation.schema(),
    )
    .expect("valid need");
    let judge = RelevanceJudge::from_query(&need, &fixture.env.relation).expect("compiles");
    let mut group = c.benchmark_group("actual_cost_replay");
    group.bench_function("all_scenario", |b| {
        b.iter(|| black_box(actual_cost_all(&tree, &need, &judge)).items());
    });
    group.bench_function("one_scenario", |b| {
        b.iter(|| black_box(actual_cost_one(&tree, &need, &judge)).items());
    });
    group.finish();
}

criterion_group!(benches, estimated_costs, actual_cost_replays);
criterion_main!(benches);
