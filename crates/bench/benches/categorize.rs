//! Categorization benchmarks — the Criterion counterpart of the
//! paper's Figure 13 (execution time vs `M`) plus a per-technique
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::{bench_env, sample_query};
use qcat_core::Categorizer;
use qcat_exec::execute_normalized;
use qcat_study::Technique;
use std::hint::black_box;

/// Figure 13: cost-based categorization time for M ∈ {10,20,50,100}.
fn categorize_by_m(c: &mut Criterion) {
    let fixture = bench_env();
    let query = sample_query(fixture);
    let result = execute_normalized(&fixture.env.relation, &query).expect("query runs");
    let mut group = c.benchmark_group("categorize_by_m");
    group.throughput(criterion::Throughput::Elements(result.len() as u64));
    for m in [10usize, 20, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let config = fixture.env.config.with_max_leaf_tuples(m);
            let categorizer = Categorizer::new(&fixture.stats, config);
            b.iter(|| black_box(categorizer.categorize(&result, Some(&query))).node_count());
        });
    }
    group.finish();
}

/// Tree construction time per technique on the same result set.
fn categorize_by_technique(c: &mut Criterion) {
    let fixture = bench_env();
    let query = sample_query(fixture);
    let result = execute_normalized(&fixture.env.relation, &query).expect("query runs");
    let mut group = c.benchmark_group("categorize_by_technique");
    for technique in Technique::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.name()),
            &technique,
            |b, &technique| {
                b.iter(|| {
                    black_box(fixture.env.categorize(
                        &fixture.stats,
                        technique,
                        &result,
                        Some(&query),
                    ))
                    .node_count()
                });
            },
        );
    }
    group.finish();
}

/// Scaling with result size: categorize broadened workload queries of
/// increasing result cardinality.
fn categorize_by_result_size(c: &mut Criterion) {
    let fixture = bench_env();
    let mut cases: Vec<_> = fixture.cases.iter().collect();
    cases.sort_by_key(|(_, r)| r.len());
    let picks = [
        cases.first().copied(),
        cases.get(cases.len() / 2).copied(),
        cases.last().copied(),
    ];
    let mut group = c.benchmark_group("categorize_by_result_size");
    for case in picks.into_iter().flatten() {
        let (qw, result) = case;
        group.bench_with_input(
            BenchmarkId::from_parameter(result.len()),
            &(qw, result),
            |b, (qw, result)| {
                let categorizer = Categorizer::new(&fixture.stats, fixture.env.config);
                b.iter(|| black_box(categorizer.categorize(result, Some(qw))).node_count());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    categorize_by_m,
    categorize_by_technique,
    categorize_by_result_size
);
criterion_main!(benches);
