//! Workload preprocessing benchmarks: log parsing, statistics table
//! construction, and `NOverlap` probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcat_bench::bench_env;
use qcat_datagen::{generate_workload, Geography, WorkloadGenConfig};
use qcat_sql::NumericRange;
use qcat_workload::{WorkloadLog, WorkloadStatistics};
use std::hint::black_box;

fn parse_log(c: &mut Criterion) {
    let geo = Geography::standard();
    let mut group = c.benchmark_group("workload_parse");
    for n in [1_000usize, 5_000] {
        let strings = generate_workload(&WorkloadGenConfig::with_queries(n).with_seed(7), &geo);
        let schema = qcat_datagen::homes::listproperty_schema();
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &strings, |b, strings| {
            b.iter(|| {
                black_box(WorkloadLog::parse(
                    strings.iter().map(String::as_str),
                    &schema,
                    None,
                ))
                .len()
            });
        });
    }
    group.finish();
}

fn build_statistics(c: &mut Criterion) {
    let fixture = bench_env();
    c.bench_function("workload_statistics_build", |b| {
        b.iter(|| {
            black_box(WorkloadStatistics::build(
                &fixture.env.log,
                fixture.env.relation.schema(),
                &fixture.env.prep,
            ))
            .n_queries()
        });
    });
}

fn n_overlap_probe(c: &mut Criterion) {
    let fixture = bench_env();
    let price = fixture
        .env
        .relation
        .schema()
        .resolve("price")
        .expect("attr");
    c.bench_function("n_overlap_range_probe", |b| {
        let mut lo = 100_000.0;
        b.iter(|| {
            lo = if lo > 900_000.0 {
                100_000.0
            } else {
                lo + 5_000.0
            };
            black_box(
                fixture
                    .stats
                    .n_overlap_range(price, &NumericRange::half_open(lo, lo + 50_000.0)),
            )
        });
    });
}

criterion_group!(benches, parse_log, build_statistics, n_overlap_probe);
criterion_main!(benches);
