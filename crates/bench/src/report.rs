//! The perf-trajectory observatory: parse every committed
//! `BENCH_pr<N>.json`, line the headline metrics up per PR, and flag
//! cross-PR regressions.
//!
//! Two report kinds exist (the `"bench"` key): `categorize`
//! (per-thread-count totals, speedups, and the Figure-13 phase
//! breakdown) and `pipeline` (access-path, serve cold/warm, chaos).
//! Each kind gets its own trajectory table — a metric per row, a PR
//! per column — so "partitioning dominates" and "the index path held
//! its speedup" are one glance, not an archaeology dig.
//!
//! Regression checking compares the newest PR against the one before
//! it, per kind: duration metrics (`*_ms`) regress upward, speedup
//! metrics regress downward. The default gate is deliberately loose —
//! the corpus is measured on whatever machine each PR landed on, and
//! cross-session noise above 100% is real (see `BENCH_pr4` vs
//! `BENCH_pr5`); the gate exists to catch order-of-magnitude cliffs,
//! not millisecond jitter.

use qcat_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Regressions beyond this percentage fail `--check` by default.
/// Chosen above the observed cross-machine noise floor of the
/// committed corpus (~150%) but far below a real cliff (10x = 900%).
pub const DEFAULT_MAX_REGRESSION_PCT: f64 = 300.0;

/// One parsed benchmark report file.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// PR number parsed from the `BENCH_pr<N>.json` filename.
    pub pr: u32,
    /// The filename the report came from (diagnostics only).
    pub name: String,
    /// The `"bench"` kind: `categorize` or `pipeline`.
    pub kind: String,
    /// Flattened `(metric name, value)` pairs extracted from the
    /// report, in a stable order.
    pub metrics: Vec<(String, f64)>,
}

/// Parse the PR number out of a `BENCH_pr<N>.json` filename; `None`
/// for anything else.
pub fn parse_pr_number(filename: &str) -> Option<u32> {
    let rest = filename.strip_prefix("BENCH_pr")?;
    let digits = rest.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Parse one report file's text into a [`BenchFile`]. Errors carry
/// the filename for context.
pub fn parse_bench_file(name: &str, text: &str) -> Result<BenchFile, String> {
    let pr = parse_pr_number(name).ok_or_else(|| {
        format!("{name}: not a BENCH_pr<N>.json filename")
    })?;
    let v = parse(text).map_err(|e| format!("{name}: {e}"))?;
    let base_kind = v
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{name}: missing \"bench\" kind"))?
        .to_string();
    let metrics = match base_kind.as_str() {
        "categorize" => categorize_metrics(&v),
        "pipeline" => pipeline_metrics(&v),
        other => return Err(format!("{name}: unknown bench kind `{other}`")),
    };
    if metrics.is_empty() {
        return Err(format!("{name}: no metrics extracted — schema drift?"));
    }
    // Non-smoke tiers get their own trajectory kind (`pipeline.large`)
    // so a paper-scale report never gates against a smoke baseline:
    // the numbers differ by orders of magnitude by design.
    let scale = v.get("scale").and_then(JsonValue::as_str).unwrap_or("smoke");
    let kind = if scale == "smoke" {
        base_kind
    } else {
        format!("{base_kind}.{scale}")
    };
    Ok(BenchFile {
        pr,
        name: name.to_string(),
        kind,
        metrics,
    })
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

fn summary_metrics(out: &mut Vec<(String, f64)>, prefix: &str, s: &JsonValue) {
    for stat in ["mean_ms", "median_ms", "p95_ms"] {
        if let Some(v) = num(s, stat) {
            out.push((format!("{prefix}.{stat}"), v));
        }
    }
}

/// Metrics of a `"bench": "categorize"` report: per-thread-count
/// totals and speedups, plus the serial (first) entry's per-phase
/// breakdown.
fn categorize_metrics(v: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(JsonValue::Arr(threads)) = v.get("threads") else {
        return out;
    };
    for (i, t) in threads.iter().enumerate() {
        let label = match num(t, "threads") {
            Some(n) => format!("t{n}"),
            None => format!("entry{i}"),
        };
        if let Some(total) = t.get("total") {
            summary_metrics(&mut out, &format!("total.{label}"), total);
        }
        if let Some(s) = num(t, "speedup_vs_serial") {
            out.push((format!("speedup.{label}"), s));
        }
    }
    // Phase trajectory from the first (serial) entry, where phase
    // timings are not interleaved with pool scheduling.
    if let Some(JsonValue::Arr(phases)) = threads.first().and_then(|t| t.get("phases")) {
        for p in phases {
            let Some(name) = p.get("name").and_then(JsonValue::as_str) else {
                continue;
            };
            for stat in ["median_ms", "total_ms"] {
                if let Some(v) = num(p, stat) {
                    out.push((format!("phase.{name}.{stat}"), v));
                }
            }
        }
    }
    out
}

/// Metrics of a `"bench": "pipeline"` report: access-path, serve
/// cold/warm, and the differential/chaos counters.
fn pipeline_metrics(v: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(JsonValue::Arr(paths)) = v.get("access_path") {
        for p in paths {
            let Some(path) = p.get("path").and_then(JsonValue::as_str) else {
                continue;
            };
            if let Some(s) = p.get("summary") {
                summary_metrics(&mut out, &format!("access.{path}"), s);
            }
            if let Some(s) = num(p, "speedup_vs_scan") {
                out.push((format!("speedup.access.{path}"), s));
            }
        }
    }
    if let Some(serve) = v.get("serve") {
        for leg in ["cold", "warm"] {
            if let Some(s) = serve.get(leg) {
                summary_metrics(&mut out, &format!("serve.{leg}"), s);
            }
        }
        if let Some(s) = num(serve, "warm_speedup") {
            out.push(("speedup.serve.warm".to_string(), s));
        }
    }
    // Large-tier thread sweeps: index build and full scan, one entry
    // per (layout, thread width), plus each entry's speedup over the
    // serial single-shard baseline.
    for section in ["index_build", "scan"] {
        if let Some(JsonValue::Arr(entries)) = v.get(section) {
            for e in entries {
                let mode = e.get("mode").and_then(JsonValue::as_str).unwrap_or("?");
                let label = match num(e, "threads") {
                    Some(t) => format!("{section}.{mode}.t{t}"),
                    None => format!("{section}.{mode}"),
                };
                if let Some(s) = e.get("summary") {
                    summary_metrics(&mut out, &label, s);
                }
                if let Some(s) = num(e, "speedup_vs_serial") {
                    if let Some(t) = num(e, "threads") {
                        out.push((format!("speedup.{section}.t{t}"), s));
                    }
                }
            }
        }
    }
    if let Some(pruning) = v.get("pruning") {
        for key in ["queries_pruned", "shards_pruned_total"] {
            if let Some(m) = num(pruning, key) {
                out.push((format!("pruning.{key}"), m));
            }
        }
    }
    if let Some(det) = v.get("determinism") {
        if let Some(m) = num(det, "mismatches") {
            out.push(("determinism.mismatches".to_string(), m));
        }
    }
    if let Some(diff) = v.get("differential") {
        if let Some(m) = num(diff, "mismatches") {
            out.push(("differential.mismatches".to_string(), m));
        }
    }
    if let Some(chaos) = v.get("chaos") {
        for key in ["ok", "degraded", "shed", "errors"] {
            if let Some(m) = num(chaos, key) {
                out.push((format!("chaos.{key}"), m));
            }
        }
    }
    // Refinement-tier drill-down classes: the containment summary is
    // the headline (serve.containment.* is the trajectory the roadmap
    // tracks), and containment.mismatches gates absolutely via the
    // blanket `*mismatches` rule.
    if let Some(refine) = v.get("refinement") {
        for (class, prefix) in [
            ("exact_hit", "serve.exact"),
            ("containment_hit", "serve.containment"),
            ("cold", "serve.refine_cold"),
        ] {
            if let Some(s) = refine.get(class) {
                summary_metrics(&mut out, prefix, s);
            }
        }
        if let Some(counts) = refine.get("counts") {
            for key in ["exact_hit", "containment_hit", "cold", "other"] {
                if let Some(m) = num(counts, key) {
                    out.push((format!("refinement.count.{key}"), m));
                }
            }
        }
        if let Some(s) = num(refine, "containment_speedup") {
            out.push(("speedup.serve.containment".to_string(), s));
        }
    }
    if let Some(contain) = v.get("containment") {
        if let Some(m) = num(contain, "mismatches") {
            out.push(("containment.mismatches".to_string(), m));
        }
    }
    // Ingest-tier append/invalidation telemetry: append latency for
    // the selective server and the epoch-bump baseline, selective
    // eviction counters, the retention split, and `ingest.mismatches`
    // — which gates absolutely via the blanket `*mismatches` rule.
    if let Some(ing) = v.get("ingest") {
        for (key, prefix) in [("append", "ingest.append"), ("append_epoch", "ingest.append_epoch")] {
            if let Some(s) = ing.get(key) {
                summary_metrics(&mut out, prefix, s);
            }
        }
        for key in ["appends", "rows_appended", "evicted", "kept", "mismatches"] {
            if let Some(m) = num(ing, key) {
                out.push((format!("ingest.{key}"), m));
            }
        }
    }
    if let Some(ret) = v.get("retention") {
        for key in ["selective_live", "epoch_live"] {
            if let Some(m) = num(ret, key) {
                out.push((format!("retention.{key}"), m));
            }
        }
    }
    if let Some(spec) = v.get("speculation") {
        for key in [
            "considered",
            "filled",
            "already_cached",
            "degraded",
            "tree_hits_after",
        ] {
            if let Some(m) = num(spec, key) {
                out.push((format!("speculation.{key}"), m));
            }
        }
    }
    out
}

/// The trajectory of one metric across PRs: `(pr, value)` ascending
/// by PR.
pub type Trajectory = Vec<(u32, f64)>;

/// Group parsed reports into per-kind metric trajectories. Reports
/// sort by PR; a PR appearing twice for one kind keeps the later
/// file (lexicographically) and is a corpus bug anyway.
pub fn trajectories(files: &[BenchFile]) -> BTreeMap<String, BTreeMap<String, Trajectory>> {
    let mut sorted: Vec<&BenchFile> = files.iter().collect();
    sorted.sort_by(|a, b| (a.pr, &a.name).cmp(&(b.pr, &b.name)));
    let mut out: BTreeMap<String, BTreeMap<String, Trajectory>> = BTreeMap::new();
    for f in sorted {
        let per_kind = out.entry(f.kind.clone()).or_default();
        for (metric, value) in &f.metrics {
            let t = per_kind.entry(metric.clone()).or_default();
            if let Some(last) = t.last_mut() {
                if last.0 == f.pr {
                    last.1 = *value;
                    continue;
                }
            }
            t.push((f.pr, *value));
        }
    }
    out
}

/// Render the trajectory tables as text: one table per kind, a
/// metric per row, a PR per column, `-` where a PR lacks the metric.
///
/// PR numbers between the first and last measured PR of a kind that
/// have *no committed report at all* still get a column — headed
/// `pr<N>*` with every cell `-`, and a footnote naming the missing
/// file. Without the placeholder, a skipped PR would silently shift
/// the columns and make its neighbors look adjacent; the gap is a
/// fact about the corpus, not a regression.
pub fn render(files: &[BenchFile]) -> String {
    let groups = trajectories(files);
    let mut out = String::new();
    for (kind, metrics) in &groups {
        let mut measured: Vec<u32> = metrics
            .values()
            .flat_map(|t| t.iter().map(|(pr, _)| *pr))
            .collect();
        measured.sort_unstable();
        measured.dedup();
        let (lo, hi) = match (measured.first(), measured.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => continue,
        };
        let prs: Vec<(u32, bool)> = (lo..=hi)
            .map(|pr| (pr, measured.binary_search(&pr).is_ok()))
            .collect();
        let gaps: Vec<u32> = prs.iter().filter(|(_, m)| !m).map(|(pr, _)| *pr).collect();
        let name_w = metrics
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let _ = writeln!(out, "== bench: {kind} ==");
        let _ = write!(out, "{:<name_w$}", "metric");
        for (pr, present) in &prs {
            let head = if *present {
                format!("pr{pr}")
            } else {
                format!("pr{pr}*")
            };
            let _ = write!(out, " {head:>12}");
        }
        out.push('\n');
        for (metric, t) in metrics {
            let _ = write!(out, "{metric:<name_w$}");
            for (pr, _) in &prs {
                match t.iter().find(|(p, _)| p == pr) {
                    Some((_, v)) => {
                        let _ = write!(out, " {v:>12.6}");
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            out.push('\n');
        }
        for pr in &gaps {
            let _ = writeln!(
                out,
                "* pr{pr}: no BENCH_pr{pr}.json committed — gap, not a regression"
            );
        }
        out.push('\n');
    }
    if groups.is_empty() {
        out.push_str("no BENCH_pr<N>.json reports found\n");
    }
    out
}

/// One cross-PR regression: `metric` moved the wrong way by
/// `pct` percent between `from_pr` and `to_pr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The bench kind the metric belongs to.
    pub kind: String,
    /// The metric that regressed.
    pub metric: String,
    /// The older PR (baseline).
    pub from_pr: u32,
    /// The newer PR (measured).
    pub to_pr: u32,
    /// Regression magnitude in percent (always positive).
    pub pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} regressed {:.1}% from pr{} to pr{}",
            self.kind, self.metric, self.pct, self.from_pr, self.to_pr
        )
    }
}

/// Direction-aware regression check of the newest PR against the one
/// before it, per kind. Median duration metrics (ending
/// `.median_ms`) regress when they grow; `speedup.*` metrics regress
/// when they shrink; correctness counters (any metric ending
/// `mismatches` — differential or determinism) regress when they
/// become nonzero.
/// Means and p95s are informational only — at sub-millisecond scale
/// their cross-machine noise (500%+ on the index probe's p95) would
/// drown any real signal.
pub fn check(files: &[BenchFile], max_regression_pct: f64) -> Vec<Regression> {
    let mut findings = Vec::new();
    for (kind, metrics) in trajectories(files) {
        for (metric, t) in metrics {
            let [.., (prev_pr, prev), (last_pr, last)] = t.as_slice() else {
                // Mismatches are absolute even with no baseline.
                if metric.ends_with("mismatches") {
                    if let Some(&(pr, v)) = t.last() {
                        if v > 0.0 {
                            findings.push(Regression {
                                kind: kind.clone(),
                                metric,
                                from_pr: pr,
                                to_pr: pr,
                                pct: 100.0 * v,
                            });
                        }
                    }
                }
                continue;
            };
            let (prev_pr, prev, last_pr, last) = (*prev_pr, *prev, *last_pr, *last);
            if metric.ends_with("mismatches") {
                if last > 0.0 {
                    findings.push(Regression {
                        kind: kind.clone(),
                        metric,
                        from_pr: prev_pr,
                        to_pr: last_pr,
                        pct: 100.0 * last,
                    });
                }
                continue;
            }
            let pct = if metric.ends_with(".median_ms") && prev > 0.0 {
                (last / prev - 1.0) * 100.0
            } else if metric.starts_with("speedup.") && last > 0.0 && prev > 0.0 {
                (prev / last - 1.0) * 100.0
            } else {
                continue;
            };
            if pct.is_finite() && pct > max_regression_pct {
                findings.push(Regression {
                    kind: kind.clone(),
                    metric,
                    from_pr: prev_pr,
                    to_pr: last_pr,
                    pct,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_fixture(pr: u32, cold_median: f64, warm_speedup: f64) -> BenchFile {
        let text = format!(
            "{{\"bench\": \"pipeline\", \"serve\": {{\
               \"cold\": {{\"mean_ms\": {m}, \"median_ms\": {m}, \"p95_ms\": {m}}},\
               \"warm\": {{\"mean_ms\": 0.01, \"median_ms\": 0.01, \"p95_ms\": 0.02}},\
               \"warm_speedup\": {s}}},\
               \"differential\": {{\"mismatches\": 0}}}}",
            m = cold_median,
            s = warm_speedup
        );
        parse_bench_file(&format!("BENCH_pr{pr}.json"), &text).expect("fixture parses")
    }

    #[test]
    fn filenames_parse_to_pr_numbers() {
        assert_eq!(parse_pr_number("BENCH_pr3.json"), Some(3));
        assert_eq!(parse_pr_number("BENCH_pr12.json"), Some(12));
        assert_eq!(parse_pr_number("BENCH_pr.json"), None);
        assert_eq!(parse_pr_number("BENCH_prX.json"), None);
        assert_eq!(parse_pr_number("bench_pr3.json"), None);
        assert_eq!(parse_pr_number("BENCH_pr3.json.bak"), None);
    }

    #[test]
    fn committed_schema_extracts_metrics() {
        let cat = "{\"bench\": \"categorize\", \"threads\": [\
            {\"threads\": 1, \"total\": {\"mean_ms\": 2.0, \"median_ms\": 1.5, \"p95_ms\": 5.0},\
             \"speedup_vs_serial\": 1.0,\
             \"phases\": [{\"name\": \"categorize.level.partition\", \"median_ms\": 0.3, \"total_ms\": 90.0}]},\
            {\"threads\": 8, \"total\": {\"mean_ms\": 0.5, \"median_ms\": 0.4, \"p95_ms\": 1.2},\
             \"speedup_vs_serial\": 3.7}]}";
        let f = parse_bench_file("BENCH_pr3.json", cat).expect("parses");
        assert_eq!(f.kind, "categorize");
        let get = |k: &str| f.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("total.t1.median_ms"), Some(1.5));
        assert_eq!(get("total.t8.median_ms"), Some(0.4));
        assert_eq!(get("speedup.t8"), Some(3.7));
        assert_eq!(get("phase.categorize.level.partition.total_ms"), Some(90.0));
    }

    #[test]
    fn render_lines_up_prs_as_columns() {
        let files = vec![
            pipeline_fixture(4, 0.30, 30.0),
            pipeline_fixture(5, 0.41, 28.0),
        ];
        let table = render(&files);
        assert!(table.contains("== bench: pipeline =="), "{table}");
        assert!(table.contains("pr4"), "{table}");
        assert!(table.contains("pr5"), "{table}");
        assert!(table.contains("serve.cold.median_ms"), "{table}");
    }

    #[test]
    fn check_is_direction_aware_and_thresholded() {
        // 2x slower cold serve = +100%: passes at 300, fails at 50.
        let files = vec![
            pipeline_fixture(4, 0.30, 30.0),
            pipeline_fixture(5, 0.60, 30.0),
        ];
        assert_eq!(check(&files, DEFAULT_MAX_REGRESSION_PCT), vec![]);
        let findings = check(&files, 50.0);
        assert_eq!(findings.len(), 1, "{findings:?}"); // median only; mean/p95 informational
        assert_eq!(findings[0].metric, "serve.cold.median_ms");
        assert_eq!(findings[0].from_pr, 4);
        assert_eq!(findings[0].to_pr, 5);

        // A *faster* latest PR is never a regression.
        let files = vec![
            pipeline_fixture(4, 0.60, 30.0),
            pipeline_fixture(5, 0.30, 30.0),
        ];
        assert_eq!(check(&files, 50.0), vec![]);

        // Speedups regress downward: 30x -> 6x is an 400% regression.
        let files = vec![
            pipeline_fixture(4, 0.30, 30.0),
            pipeline_fixture(5, 0.30, 6.0),
        ];
        let findings = check(&files, DEFAULT_MAX_REGRESSION_PCT);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].metric, "speedup.serve.warm");
    }

    #[test]
    fn mismatches_fail_absolutely() {
        let text = "{\"bench\": \"pipeline\", \"differential\": {\"mismatches\": 2}}";
        let f = parse_bench_file("BENCH_pr6.json", text).expect("parses");
        let findings = check(&[f], f64::INFINITY);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "differential.mismatches");
    }

    #[test]
    fn absent_prs_render_as_labeled_gap_columns() {
        // pr4 and pr7 committed pipeline reports, pr5/pr6 did not: the
        // table must still show four columns, with the gaps starred
        // and footnoted rather than silently collapsed.
        let files = vec![
            pipeline_fixture(4, 0.30, 30.0),
            pipeline_fixture(7, 0.31, 29.0),
        ];
        let table = render(&files);
        assert!(table.contains("pr4"), "{table}");
        assert!(table.contains("pr5*"), "{table}");
        assert!(table.contains("pr6*"), "{table}");
        assert!(table.contains("pr7"), "{table}");
        assert!(
            table.contains("* pr6: no BENCH_pr6.json committed — gap, not a regression"),
            "{table}"
        );
        // Gap columns carry no values anywhere.
        for line in table.lines().filter(|l| l.starts_with("serve.")) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cells.len(), 5, "{line}");
            assert_eq!(cells[2], "-", "pr5 gap cell: {line}");
            assert_eq!(cells[3], "-", "pr6 gap cell: {line}");
        }
    }

    #[test]
    fn large_scale_reports_key_their_own_kind() {
        let large = "{\"bench\": \"pipeline\", \"scale\": \"large\",\
            \"index_build\": [\
              {\"mode\": \"single\", \"threads\": 1, \"summary\": {\"mean_ms\": 900.0, \"median_ms\": 880.0, \"p95_ms\": 950.0}},\
              {\"mode\": \"sharded\", \"threads\": 8, \"summary\": {\"mean_ms\": 300.0, \"median_ms\": 290.0, \"p95_ms\": 340.0}, \"speedup_vs_serial\": 3.03}],\
            \"scan\": [\
              {\"mode\": \"sharded\", \"threads\": 2, \"summary\": {\"mean_ms\": 20.0, \"median_ms\": 19.0, \"p95_ms\": 24.0}, \"speedup_vs_serial\": 1.8}],\
            \"pruning\": {\"queries\": 50, \"queries_pruned\": 12, \"shards_pruned_total\": 40},\
            \"determinism\": {\"mismatches\": 0},\
            \"differential\": {\"mismatches\": 0}}";
        let f = parse_bench_file("BENCH_pr8.json", large).expect("parses");
        assert_eq!(f.kind, "pipeline.large");
        let get = |k: &str| f.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("index_build.single.t1.median_ms"), Some(880.0));
        assert_eq!(get("index_build.sharded.t8.median_ms"), Some(290.0));
        assert_eq!(get("speedup.index_build.t8"), Some(3.03));
        assert_eq!(get("scan.sharded.t2.median_ms"), Some(19.0));
        assert_eq!(get("speedup.scan.t2"), Some(1.8));
        assert_eq!(get("pruning.queries_pruned"), Some(12.0));
        assert_eq!(get("determinism.mismatches"), Some(0.0));

        // A large report never gates against a smoke baseline: the
        // kinds differ, so this pair produces no findings even at a
        // zero-tolerance threshold (large medians are ~2000x smoke's).
        let smoke = pipeline_fixture(7, 0.30, 30.0);
        assert_eq!(check(&[smoke, f], 0.1), vec![]);
    }

    #[test]
    fn refinement_reports_key_their_own_kind() {
        let refine = "{\"bench\": \"pipeline\", \"scale\": \"refinement\",\
            \"refinement\": {\
              \"counts\": {\"exact_hit\": 200, \"containment_hit\": 160, \"cold\": 40, \"other\": 0},\
              \"exact_hit\": {\"mean_ms\": 0.009, \"median_ms\": 0.008, \"p95_ms\": 0.016},\
              \"containment_hit\": {\"mean_ms\": 0.29, \"median_ms\": 0.20, \"p95_ms\": 0.77},\
              \"cold\": {\"mean_ms\": 1.56, \"median_ms\": 1.40, \"p95_ms\": 2.28},\
              \"containment_speedup\": 7.0},\
            \"containment\": {\"queries\": 150, \"mismatches\": 0, \"status\": \"ok\"},\
            \"speculation\": {\"considered\": 398, \"filled\": 8, \"already_cached\": 0,\
              \"degraded\": 0, \"tree_hits_after\": 8, \"status\": \"ok\"}}";
        let f = parse_bench_file("BENCH_pr9.json", refine).expect("parses");
        assert_eq!(f.kind, "pipeline.refinement");
        let get = |k: &str| f.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("serve.containment.median_ms"), Some(0.20));
        assert_eq!(get("serve.containment.p95_ms"), Some(0.77));
        assert_eq!(get("serve.exact.median_ms"), Some(0.008));
        assert_eq!(get("serve.refine_cold.median_ms"), Some(1.40));
        assert_eq!(get("refinement.count.containment_hit"), Some(160.0));
        assert_eq!(get("speedup.serve.containment"), Some(7.0));
        assert_eq!(get("containment.mismatches"), Some(0.0));
        assert_eq!(get("speculation.filled"), Some(8.0));
        assert_eq!(get("speculation.tree_hits_after"), Some(8.0));

        // A refinement report never gates against a smoke baseline:
        // the kinds differ, so this pair produces no findings.
        let smoke = pipeline_fixture(7, 0.30, 30.0);
        assert_eq!(check(&[smoke, f], 0.1), vec![]);
    }

    #[test]
    fn ingest_reports_key_their_own_kind() {
        let ingest = "{\"bench\": \"pipeline\", \"scale\": \"ingest\",\
            \"warmed\": 120, \"batch_rows\": 32,\
            \"ingest\": {\
              \"appends\": 12, \"rows_appended\": 384,\
              \"append\": {\"mean_ms\": 0.9, \"median_ms\": 0.8, \"p95_ms\": 1.4},\
              \"append_epoch\": {\"mean_ms\": 0.5, \"median_ms\": 0.4, \"p95_ms\": 0.8},\
              \"evicted\": 40, \"kept\": 80, \"mismatches\": 0, \"status\": \"ok\"},\
            \"retention\": {\"queries\": 120, \"selective_live\": 80, \"epoch_live\": 0, \"status\": \"ok\"}}";
        let f = parse_bench_file("BENCH_pr10.json", ingest).expect("parses");
        assert_eq!(f.kind, "pipeline.ingest");
        let get = |k: &str| f.metrics.iter().find(|(m, _)| m == k).map(|(_, v)| *v);
        assert_eq!(get("ingest.append.median_ms"), Some(0.8));
        assert_eq!(get("ingest.append_epoch.median_ms"), Some(0.4));
        assert_eq!(get("ingest.evicted"), Some(40.0));
        assert_eq!(get("ingest.kept"), Some(80.0));
        assert_eq!(get("ingest.mismatches"), Some(0.0));
        assert_eq!(get("retention.selective_live"), Some(80.0));
        assert_eq!(get("retention.epoch_live"), Some(0.0));

        // An ingest report never gates against a smoke baseline.
        let smoke = pipeline_fixture(7, 0.30, 30.0);
        assert_eq!(check(&[smoke, f], 0.1), vec![]);
    }

    #[test]
    fn ingest_mismatches_fail_absolutely() {
        let text = "{\"bench\": \"pipeline\", \"scale\": \"ingest\",\
            \"ingest\": {\"appends\": 12, \"mismatches\": 1, \"status\": \"stale\"}}";
        let f = parse_bench_file("BENCH_pr10.json", text).expect("parses");
        let findings = check(&[f], f64::INFINITY);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "ingest.mismatches");
        assert_eq!(findings[0].kind, "pipeline.ingest");
    }

    #[test]
    fn containment_mismatches_fail_absolutely() {
        let text = "{\"bench\": \"pipeline\", \"scale\": \"refinement\",\
            \"containment\": {\"queries\": 150, \"mismatches\": 2, \"status\": \"fail\"}}";
        let f = parse_bench_file("BENCH_pr9.json", text).expect("parses");
        let findings = check(&[f], 0.1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "containment.mismatches");
    }

    #[test]
    fn determinism_mismatches_fail_absolutely() {
        let text = "{\"bench\": \"pipeline\", \"scale\": \"large\",\
            \"scan\": [{\"mode\": \"single\", \"threads\": 1, \"summary\": {\"median_ms\": 1.0}}],\
            \"determinism\": {\"mismatches\": 3}}";
        let f = parse_bench_file("BENCH_pr8.json", text).expect("parses");
        let findings = check(&[f], f64::INFINITY);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "determinism.mismatches");
        assert_eq!(findings[0].kind, "pipeline.large");
    }

    #[test]
    fn only_the_latest_pair_is_gated() {
        // pr3 -> pr4 regressed badly, but pr4 -> pr5 recovered: clean.
        let files = vec![
            pipeline_fixture(3, 0.10, 30.0),
            pipeline_fixture(4, 10.0, 30.0),
            pipeline_fixture(5, 0.12, 30.0),
        ];
        assert_eq!(check(&files, 50.0), vec![]);
    }
}
