//! The perf observatory CLI: read every committed `BENCH_pr<N>.json`,
//! print per-kind trajectory tables (a metric per row, a PR per
//! column), and — under `--check` — fail on cross-PR regressions.
//!
//! ```text
//! bench_report [--dir PATH] [--check] [--max-regression PCT] [--out PATH]
//! ```
//!
//! `--dir` defaults to the repo root (resolved from the crate
//! manifest under `cargo run`, else the current directory). `--check`
//! compares the newest PR against the previous one per bench kind;
//! duration metrics gate upward, speedups downward, differential
//! mismatches absolutely. The threshold is
//! [`qcat_bench::report::DEFAULT_MAX_REGRESSION_PCT`] unless
//! overridden. Exits 0 when clean, 1 on regressions, 2 on I/O or
//! usage errors. `--out` additionally writes the rendered tables to a
//! file (the CI artifact).

use qcat_bench::report::{check, parse_bench_file, render, DEFAULT_MAX_REGRESSION_PCT};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    dir: PathBuf,
    check: bool,
    max_regression_pct: f64,
    out: Option<PathBuf>,
}

fn default_dir() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop();
            p.pop();
            p
        }
        None => PathBuf::from("."),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "bench_report: {problem}\n\
         usage: bench_report [--dir PATH] [--check] [--max-regression PCT] [--out PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = Args {
        dir: default_dir(),
        check: false,
        max_regression_pct: DEFAULT_MAX_REGRESSION_PCT,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => match it.next() {
                Some(v) => args.dir = PathBuf::from(v),
                None => return usage("--dir needs a path"),
            },
            "--check" => args.check = true,
            "--max-regression" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => args.max_regression_pct = v,
                None => return usage("--max-regression needs a number (percent)"),
            },
            "--out" => match it.next() {
                Some(v) => args.out = Some(PathBuf::from(v)),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown flag: {other}")),
        }
    }

    let entries = match std::fs::read_dir(&args.dir) {
        Ok(e) => e,
        Err(e) => return usage(&format!("cannot read {}: {e}", args.dir.display())),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| qcat_bench::report::parse_pr_number(n).is_some())
        .collect();
    names.sort();
    let mut files = Vec::new();
    for name in &names {
        let path = args.dir.join(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return usage(&format!("cannot read {}: {e}", path.display())),
        };
        match parse_bench_file(name, &text) {
            Ok(f) => files.push(f),
            Err(e) => return usage(&e),
        }
    }
    if files.is_empty() {
        return usage(&format!(
            "no BENCH_pr<N>.json reports in {}",
            args.dir.display()
        ));
    }

    let table = render(&files);
    print!("{table}");
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &table) {
            return usage(&format!("cannot write {}: {e}", out.display()));
        }
        println!("wrote {}", out.display());
    }

    if !args.check {
        return ExitCode::SUCCESS;
    }
    let findings = check(&files, args.max_regression_pct);
    if findings.is_empty() {
        println!(
            "bench_report: no regressions beyond {:.0}% across {} report(s)",
            args.max_regression_pct,
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("REGRESSION {f}");
        }
        println!("bench_report: {} regression(s)", findings.len());
        ExitCode::FAILURE
    }
}
