//! Hermetic end-to-end pipeline benchmark, two tiers:
//!
//! - `--scale smoke` (default): parse → execute → categorize over the
//!   Smoke fixture, comparing the scan and index access paths and the
//!   cold/warm serving path. Besides timings, the report carries a
//!   `differential` section: every sampled workload query is executed
//!   along scan, auto, and forced-index paths and the row sets must
//!   be identical — `"status": "ok"` is asserted by
//!   `scripts/check.sh`. A `chaos` section replays serves against a
//!   budgeted server under a deterministic fault plan and records how
//!   every request ended (ok / degraded / shed / structured error);
//!   nothing may fall through unaccounted.
//!
//! - `--scale refinement`: the drill-down serving tier. Builds
//!   chains of progressively narrowed queries (conjunct prefixes of
//!   multi-conjunct workload queries — dropping a conjunct always
//!   widens, so each prefix provably subsumes the next), replays them
//!   against a server with answer containment enabled, and reports
//!   per-class latency summaries (exact hit / containment hit /
//!   cold), the containment-vs-cold speedup, a byte-identical
//!   containment differential (`containment.mismatches` is gated
//!   absolutely by `bench_report --check`), and a speculative
//!   precomputation section.
//!
//! - `--scale large`: the paper-scale data plane. Generates millions
//!   of rows and a six-figure workload (shrinkable via
//!   `QCAT_LARGE_ROWS` / `QCAT_LARGE_QUERIES` /
//!   `QCAT_LARGE_SHARD_ROWS` for CI smokes), reshards the relation
//!   into pool-sized morsels, and measures index build and full scans
//!   across a thread sweep against the single-shard serial baseline —
//!   plus per-phase span breakdowns, shard-pruning counters, a
//!   layout/path/width differential, and a row-hash determinism
//!   section. Report schema in docs/PERFORMANCE.md.
//!
//! - `--scale ingest`: the mutable-tail serving tier. Warms two
//!   servers with the same distinct workload queries — one with
//!   selective invalidation (the default), one with the whole-table
//!   epoch-bump baseline — then interleaves append rounds through
//!   `Server::append_rows` and replays the warm set. It reports the
//!   append latency summaries, how many cached entries each server
//!   kept alive (selective must retain strictly more than the
//!   baseline), and `ingest.mismatches`: every answer the surviving
//!   caches serve must be byte-identical to a from-scratch recompute
//!   (gated absolutely by `bench_report --check`).
//!
//! Std-only like `bench_categorize` (same schema conventions).
//!
//! ```text
//! bench_pipeline [--scale smoke|refinement|large|ingest] [--runs N] [--seed S] [--queries N] [--out PATH]
//! ```

use qcat_bench::{
    bench_env, fnv1a_rows, json_escape, json_num, large_tier_dims, summarize, Summary,
};
use qcat_data::Schema;
use qcat_exec::{execute_normalized_with, execute_normalized_with_threads, plan, AccessPath};
use qcat_serve::{ServeOutcome, Server, ServerConfig, SpeculateConfig};
use qcat_sql::normalize::{AttrCondition, NormalizedQuery};
use qcat_study::{StudyEnv, StudyScale};
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    runs: Option<usize>,
    seed: u64,
    queries: usize,
    out: Option<String>,
    scale: String,
}

impl Args {
    /// Runs default 30 at smoke scale (sub-ms probes need samples),
    /// 10 at refinement scale (each run replays every chain twice),
    /// 5 at large scale (each run is a multi-second full pass), and
    /// 12 at ingest scale (each run is one append round per server).
    fn runs(&self) -> usize {
        self.runs.unwrap_or(match self.scale.as_str() {
            "large" => 5,
            "refinement" => 10,
            "ingest" => 12,
            _ => 30,
        })
    }

    fn out(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            match self.scale.as_str() {
                "large" => "BENCH_pr8.json".to_string(),
                "refinement" => "BENCH_pr9.json".to_string(),
                "ingest" => "BENCH_pr10.json".to_string(),
                _ => "BENCH_pr5.json".to_string(),
            }
        })
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: None,
        seed: 1234,
        queries: 200,
        out: None,
        scale: "smoke".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--runs" => args.runs = Some(value("--runs").parse().expect("--runs: not a number")),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: not a number"),
            "--queries" => {
                args.queries = value("--queries").parse().expect("--queries: not a number")
            }
            "--out" => args.out = Some(value("--out")),
            "--scale" => {
                args.scale = value("--scale");
                assert!(
                    ["smoke", "refinement", "large", "ingest"].contains(&args.scale.as_str()),
                    "--scale: smoke, refinement, large, or ingest"
                );
            }
            "--help" | "-h" => {
                println!(
                    "bench_pipeline [--scale smoke|refinement|large|ingest] [--runs N] \
                     [--seed S] [--queries N] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Render a normalized query back to the SQL subset, so the serving
/// layer (which takes SQL strings) can replay workload queries.
fn sql_of(query: &NormalizedQuery, schema: &Schema) -> String {
    let mut conjuncts = Vec::new();
    for (attr, cond) in &query.conditions {
        let name = schema.name_of(*attr);
        match cond {
            AttrCondition::InStr(values) => {
                let list = values
                    .iter()
                    .map(|v| format!("'{}'", v.replace('\'', "''")))
                    .collect::<Vec<_>>()
                    .join(",");
                conjuncts.push(format!("{name} IN ({list})"));
            }
            AttrCondition::InNum(values) => {
                let list = values
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                conjuncts.push(format!("{name} IN ({list})"));
            }
            AttrCondition::Range(r) => {
                if let Some(lo) = r.finite_lo() {
                    let op = if r.lo_inclusive { ">=" } else { ">" };
                    conjuncts.push(format!("{name} {op} {lo}"));
                }
                if let Some(hi) = r.finite_hi() {
                    let op = if r.hi_inclusive { "<=" } else { "<" };
                    conjuncts.push(format!("{name} {op} {hi}"));
                }
            }
        }
    }
    let mut sql = format!("SELECT * FROM {}", query.table);
    if !conjuncts.is_empty() {
        let _ = write!(sql, " WHERE {}", conjuncts.join(" AND "));
    }
    sql
}

fn time_ns(mut f: impl FnMut()) -> u64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as u64
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"mean_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}}}",
        json_num(s.mean_ms),
        json_num(s.median_ms),
        json_num(s.p95_ms)
    )
}

fn main() {
    let args = parse_args();
    match args.scale.as_str() {
        "large" => run_large(&args),
        "refinement" => run_refinement(&args),
        "ingest" => run_ingest(&args),
        _ => run_smoke(&args),
    }
}

fn run_smoke(args: &Args) {
    let runs = args.runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_pipeline: smoke fixture, seed {}, {} runs, {} cores",
        args.seed, runs, cores
    );
    let env = bench_env(args.seed, 8);
    let relation = env.env.relation.clone();
    let schema = relation.schema().clone();
    let n = relation.len();
    relation.build_indexes();
    let index_bytes = relation.indexes().map_or(0, |ix| ix.heap_bytes());
    println!("  {} rows, index heap {} bytes", n, index_bytes);

    // ---- Differential: scan / auto / forced-index row-set equality
    // over a slice of real workload queries.
    let sample: Vec<&NormalizedQuery> =
        env.env.log.queries().iter().take(args.queries).collect();
    let mut mismatches = 0usize;
    for q in &sample {
        let scan = execute_normalized_with(&relation, q, AccessPath::ForceScan)
            .expect("scan path failed");
        for path in [AccessPath::Auto, AccessPath::ForceIndex] {
            let other =
                execute_normalized_with(&relation, q, path).expect("index path failed");
            if other.rows() != scan.rows() {
                mismatches += 1;
                eprintln!("  MISMATCH ({path:?}): {}", sql_of(q, &schema));
            }
        }
    }
    let diff_status = if mismatches == 0 { "ok" } else { "mismatch" };
    println!(
        "  differential: {} queries x 2 paths, {} mismatches ({})",
        sample.len(),
        mismatches,
        diff_status
    );

    // ---- Two probes from the selective (<5%) workload slice. The
    // exec probe is the *most* selective query — where the index
    // path's advantage over a full scan is the point being measured.
    // The serve probe is the *largest* result still under 5%, so the
    // cold path (execute + categorize + render) does representative
    // work for the cold/warm cache comparison.
    let selective: Vec<(&NormalizedQuery, usize)> = sample
        .iter()
        .filter_map(|q| {
            let rs = execute_normalized_with(&relation, q, AccessPath::ForceScan).ok()?;
            let len = rs.len();
            (len > 0 && (len as f64) < 0.05 * n as f64).then_some((*q, len))
        })
        .collect();
    let &(exec_probe, exec_rows) = selective
        .iter()
        .min_by_key(|&&(_, len)| len)
        .expect("no selective non-empty workload query in the sample");
    let &(serve_probe, serve_rows) = selective
        .iter()
        .max_by_key(|&&(_, len)| len)
        .expect("no selective non-empty workload query in the sample");
    let exec_sel = exec_rows as f64 / n as f64;
    let serve_sel = serve_rows as f64 / n as f64;
    println!(
        "  exec probe:  {} ({} rows, {:.2}% selectivity)",
        sql_of(exec_probe, &schema),
        exec_rows,
        100.0 * exec_sel
    );
    println!(
        "  serve probe: {} ({} rows, {:.2}% selectivity)",
        sql_of(serve_probe, &schema),
        serve_rows,
        100.0 * serve_sel
    );

    let mut scan_ns = Vec::with_capacity(runs);
    let mut index_ns = Vec::with_capacity(runs);
    for _ in 0..runs {
        scan_ns.push(time_ns(|| {
            let rs = execute_normalized_with(&relation, exec_probe, AccessPath::ForceScan)
                .expect("scan failed");
            std::hint::black_box(rs.len());
        }));
        index_ns.push(time_ns(|| {
            let rs = execute_normalized_with(&relation, exec_probe, AccessPath::Auto)
                .expect("index failed");
            std::hint::black_box(rs.len());
        }));
    }
    let scan = summarize(&scan_ns);
    let index = summarize(&index_ns);
    // Speedups are median-based: on a busy single-core host one
    // scheduler hiccup in N runs can double a mean, and the summary
    // already reports mean/median/p95 for anyone who wants the rest.
    let index_speedup = scan.median_ms / index.median_ms;
    println!(
        "  exec scan median {:.4} ms | index median {:.4} ms | speedup {:.1}x",
        scan.median_ms, index.median_ms, index_speedup
    );

    // ---- Serving: cold (caches cleared every run) vs. warm (tree
    // cache hit) on the same probe query.
    let server = Server::new(ServerConfig::default());
    server
        .register_table(
            &serve_probe.table,
            relation.clone(),
            env.env.log.clone(),
            env.env.prep.clone(),
        )
        .expect("register study table");
    let probe_sql = sql_of(serve_probe, &schema);
    let mut cold_ns = Vec::with_capacity(runs);
    let mut warm_ns = Vec::with_capacity(runs);
    for _ in 0..runs {
        server.clear_caches();
        cold_ns.push(time_ns(|| {
            let served = server.serve(&probe_sql).expect("cold serve");
            assert_eq!(served.outcome, ServeOutcome::Cold);
            std::hint::black_box(served.rows);
        }));
        warm_ns.push(time_ns(|| {
            let served = server.serve(&probe_sql).expect("warm serve");
            assert_eq!(served.outcome, ServeOutcome::TreeCacheHit);
            std::hint::black_box(served.rows);
        }));
    }
    let cold = summarize(&cold_ns);
    let warm = summarize(&warm_ns);
    let warm_speedup = cold.median_ms / warm.median_ms;
    println!(
        "  serve cold median {:.4} ms | warm median {:.4} ms | speedup {:.1}x",
        cold.median_ms, warm.median_ms, warm_speedup
    );

    // ---- Chaos: the serving path under a tight budget and a
    // deterministic fault plan. Caches are cleared before every serve
    // so each request exercises the full fill; every request must end
    // in one of the accounted buckets or the report is marked bad.
    let chaos_queries = sample.len().min(40);
    let mut chaos_config = ServerConfig::default();
    chaos_config.budget = qcat_fault::Budget::UNLIMITED.with_max_nodes(6);
    let chaos_server = Server::new(chaos_config);
    chaos_server
        .register_table(
            &serve_probe.table,
            relation.clone(),
            env.env.log.clone(),
            env.env.prep.clone(),
        )
        .expect("register chaos table");
    let plan = qcat_fault::FaultPlan::parse(&format!(
        "pool.task:error:p=0.25:seed={seed};serve.fill:error:p=0.15:seed={seed}",
        seed = args.seed
    ))
    .expect("chaos fault plan");
    let (mut chaos_ok, mut chaos_degraded, mut chaos_errors) = (0usize, 0usize, 0usize);
    for q in sample.iter().take(chaos_queries) {
        chaos_server.clear_caches();
        let sql = sql_of(q, &schema);
        match qcat_fault::with_plan(&plan, || chaos_server.serve(&sql)) {
            Ok(served) if served.tree.degraded().is_some() => chaos_degraded += 1,
            Ok(_) => chaos_ok += 1,
            Err(_) => chaos_errors += 1,
        }
    }
    let chaos_shed = 0usize; // single-threaded replay: admission never trips
    let chaos_status = if chaos_ok + chaos_degraded + chaos_shed + chaos_errors == chaos_queries
        && chaos_ok > 0
    {
        "ok"
    } else {
        "unaccounted"
    };
    println!(
        "  chaos: {} queries -> {} ok, {} degraded, {} shed, {} errors ({})",
        chaos_queries, chaos_ok, chaos_degraded, chaos_shed, chaos_errors, chaos_status
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n  \"scale\": \"smoke\",\n");
    let _ = write!(
        out,
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    );
    let _ = write!(
        out,
        "  \"seed\": {}, \"runs\": {}, \"cores\": {}, \"rows\": {},\n",
        args.seed, runs, cores, n
    );
    let _ = write!(out, "  \"index_heap_bytes\": {},\n", index_bytes);
    let _ = write!(
        out,
        "  \"exec_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        exec_rows,
        json_num(exec_sel)
    );
    let _ = write!(
        out,
        "  \"serve_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        serve_rows,
        json_num(serve_sel)
    );
    out.push_str("  \"access_path\": [\n");
    let _ = write!(
        out,
        "    {{\"path\": \"scan\", \"summary\": {}}},\n",
        summary_json(&scan)
    );
    let _ = write!(
        out,
        "    {{\"path\": \"index\", \"summary\": {}, \"speedup_vs_scan\": {}}}\n",
        summary_json(&index),
        json_num(index_speedup)
    );
    out.push_str("  ],\n");
    out.push_str("  \"serve\": {\n");
    let _ = write!(out, "    \"cold\": {},\n", summary_json(&cold));
    let _ = write!(
        out,
        "    \"warm\": {},\n    \"warm_speedup\": {}\n",
        summary_json(&warm),
        json_num(warm_speedup)
    );
    out.push_str("  },\n");
    let _ = write!(
        out,
        "  \"differential\": {{\"queries\": {}, \"paths\": [\"auto\", \"force_index\"], \"mismatches\": {}, \"status\": \"{}\"}},\n",
        sample.len(),
        mismatches,
        diff_status
    );
    let _ = write!(
        out,
        "  \"chaos\": {{\"queries\": {}, \"ok\": {}, \"degraded\": {}, \"shed\": {}, \"errors\": {}, \"status\": \"{}\"}}\n",
        chaos_queries, chaos_ok, chaos_degraded, chaos_shed, chaos_errors, chaos_status
    );
    out.push_str("}\n");
    let out_path = args.out();
    std::fs::write(&out_path, out).expect("write bench report");
    println!("  wrote {out_path}");
    if mismatches > 0 || chaos_status != "ok" {
        std::process::exit(1);
    }
}

/// The drill-down serving tier: chains of progressively narrowed
/// queries replayed against a containment-enabled server, classified
/// into exact hits, containment hits, and cold fills — plus a
/// byte-identical containment differential and a speculative
/// precomputation section.
fn run_refinement(args: &Args) {
    let runs = args.runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_pipeline: refinement tier, seed {}, {} runs, {} cores",
        args.seed, runs, cores
    );
    let env = StudyEnv::generate(
        StudyScale::Custom {
            rows: 60_000,
            queries: 400,
        },
        args.seed,
    );
    let relation = env.relation.clone();
    let schema = relation.schema().clone();
    let n = relation.len();
    relation.build_indexes();
    println!("  {} rows", n);

    // ---- Drill-down chains, the paper's exploration pattern: start
    // broad, keep adding constraints. Each chain conjoins four
    // *individually broad* conjuncts (15–70% selective) harvested
    // from the workload, one new attribute per step; every prefix
    // provably subsumes the next. Broad conjuncts are the
    // interesting case for containment: the planner's best index on
    // the cold path still yields a large candidate set, while the
    // containment donor is the (much smaller) running conjunction.
    let mut template = env
        .log
        .queries()
        .first()
        .expect("non-empty workload")
        .clone();
    template.projection = None;
    template.order_by.clear();
    template.limit = None;
    let mut by_attr: std::collections::BTreeMap<_, Vec<_>> = Default::default();
    let mut seen_conj = std::collections::HashSet::new();
    for q in env.log.queries() {
        for (attr, cond) in &q.conditions {
            let mut single = template.clone();
            single.conditions = [(*attr, cond.clone())].into_iter().collect();
            if !seen_conj.insert(qcat_serve::fingerprint(&single)) {
                continue;
            }
            let bucket = by_attr.entry(*attr).or_insert_with(Vec::new);
            if bucket.len() >= 4 {
                continue;
            }
            let rows = execute_normalized_with(&relation, &single, AccessPath::ForceScan)
                .expect("conjunct probe")
                .len();
            let sel = rows as f64 / n as f64;
            if (0.25..=0.5).contains(&sel) {
                bucket.push(cond.clone());
            }
        }
    }
    by_attr.retain(|_, conds| !conds.is_empty());
    let attrs: Vec<_> = by_attr.keys().copied().collect();
    assert!(
        attrs.len() >= 6,
        "need 6 attributes with broad workload conjuncts, found {}",
        attrs.len()
    );
    // Fingerprints are globally deduplicated so each class stays
    // honest: a head shared between chains would turn the second
    // chain's cold leg into a tree hit.
    let mut seen = std::collections::HashSet::new();
    let mut chains: Vec<Vec<NormalizedQuery>> = Vec::new();
    for i in 0..10usize {
        let mut query = template.clone();
        query.conditions.clear();
        let mut chain = Vec::new();
        // The head already carries three conjuncts: a user who has
        // refined twice is the one who keeps refining, and it keeps
        // every timed step's donor (the running conjunction) well
        // below the cold planner's best single-attribute candidate
        // set.
        for step in 0..6usize {
            let attr = attrs[(i + step) % attrs.len()];
            let conds = &by_attr[&attr];
            query
                .conditions
                .insert(attr, conds[i % conds.len()].clone());
            if step >= 2 {
                chain.push(query.clone());
            }
        }
        if chain
            .iter()
            .all(|c| seen.insert(qcat_serve::fingerprint(c)))
        {
            chains.push(chain);
        }
    }
    let total_queries: usize = chains.iter().map(Vec::len).sum();
    assert!(
        !chains.is_empty(),
        "no multi-conjunct workload queries to build drill-down chains from"
    );
    println!(
        "  {} chains, {} distinct queries ({} refinement steps)",
        chains.len(),
        total_queries,
        total_queries - chains.len()
    );

    let table = chains[0][0].table.clone();
    let server = Server::new(ServerConfig::default());
    server
        .register_table(&table, relation.clone(), env.log.clone(), env.prep.clone())
        .expect("register warm table");
    // The cold baseline server never keeps donors: its caches are
    // cleared before every serve, so it measures the full fill for
    // the *same* queries the warm server answers by containment.
    let cold_server = Server::new(ServerConfig::default());
    cold_server
        .register_table(&table, relation.clone(), env.log.clone(), env.prep.clone())
        .expect("register cold table");

    let rec = qcat_obs::Recorder::metrics_only();
    let mut exact_ns = Vec::new();
    let mut contain_ns = Vec::new();
    let mut cold_ns = Vec::new();
    let (mut exact_hits, mut containment_hits, mut colds, mut other) = (0usize, 0, 0, 0);
    let mut classify = |outcome: ServeOutcome| match outcome {
        ServeOutcome::TreeCacheHit | ServeOutcome::ResultCacheHit => exact_hits += 1,
        ServeOutcome::ContainmentHit => containment_hits += 1,
        ServeOutcome::Cold => colds += 1,
        _ => other += 1,
    };
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    qcat_obs::with_recorder(&rec, || {
        for _ in 0..runs {
            server.clear_caches();
            for chain in &chains {
                // Chain head: cold by construction.
                let served = server
                    .serve(&sql_of(&chain[0], &schema))
                    .expect("head serve");
                classify(served.outcome);
                for tight in &chain[1..] {
                    let sql = sql_of(tight, &schema);
                    let mut warm_served = None;
                    contain_ns.push(time_ns(|| {
                        warm_served = Some(server.serve(&sql).expect("refined serve"));
                    }));
                    let warm_served = warm_served.expect("timed serve ran");
                    classify(warm_served.outcome);
                    cold_server.clear_caches();
                    let mut cold_served = None;
                    cold_ns.push(time_ns(|| {
                        cold_served = Some(cold_server.serve(&sql).expect("cold serve"));
                    }));
                    let cold_served = cold_served.expect("timed serve ran");
                    checked += 1;
                    if warm_served.rendered != cold_served.rendered
                        || warm_served.rows != cold_served.rows
                    {
                        mismatches += 1;
                        eprintln!("  CONTAINMENT MISMATCH: {sql}");
                    }
                }
            }
            // Second pass: every chain query repeats as an exact hit.
            for q in chains.iter().flatten() {
                let sql = sql_of(q, &schema);
                let mut served = None;
                exact_ns.push(time_ns(|| {
                    served = Some(server.serve(&sql).expect("repeat serve"));
                }));
                classify(served.expect("timed serve ran").outcome);
            }
        }
    });
    let exact = summarize(&exact_ns);
    let contain = summarize(&contain_ns);
    let cold = summarize(&cold_ns);
    let containment_speedup = cold.median_ms / contain.median_ms;
    let contain_status = if mismatches == 0 && containment_hits > 0 {
        "ok"
    } else {
        "mismatch"
    };
    println!(
        "  classes: {} exact, {} containment, {} cold, {} other",
        exact_hits, containment_hits, colds, other
    );
    println!(
        "  cold median {:.4} ms | containment median {:.4} ms | speedup {:.1}x",
        cold.median_ms, contain.median_ms, containment_speedup
    );
    println!(
        "  exact median {:.4} ms | differential: {} checked, {} mismatches ({})",
        exact.median_ms, checked, mismatches, contain_status
    );

    // ---- Speculation: an idle pass on a fresh server precomputes
    // the hottest workload queries; serving the whole distinct
    // workload afterwards must produce exactly `filled` tree hits.
    let spec_server = Server::new(ServerConfig::default());
    spec_server
        .register_table(&table, relation.clone(), env.log.clone(), env.prep.clone())
        .expect("register speculation table");
    let spec_cfg = SpeculateConfig {
        max_fills: 8,
        ..SpeculateConfig::default()
    };
    let report = spec_server
        .speculate(&table, &spec_cfg)
        .expect("speculation pass");
    let mut distinct = std::collections::HashSet::new();
    let mut spec_tree_hits = 0usize;
    for q in env.log.queries() {
        if !distinct.insert(qcat_serve::fingerprint(q)) {
            continue;
        }
        let served = spec_server.serve(&sql_of(q, &schema)).expect("post-spec serve");
        if served.outcome == ServeOutcome::TreeCacheHit {
            spec_tree_hits += 1;
        }
    }
    let spec_status = if report.filled > 0 && spec_tree_hits == report.filled {
        "ok"
    } else {
        "bad"
    };
    println!(
        "  speculation: {} considered, {} filled, {} degraded -> {} first-serve tree hits ({})",
        report.considered, report.filled, report.degraded, spec_tree_hits, spec_status
    );

    let snap = rec.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n  \"scale\": \"refinement\",\n");
    let _ = write!(
        out,
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    );
    let _ = write!(
        out,
        "  \"seed\": {}, \"runs\": {}, \"cores\": {}, \"rows\": {},\n",
        args.seed, runs, cores, n
    );
    let _ = write!(
        out,
        "  \"chains\": {}, \"chain_queries\": {},\n",
        chains.len(),
        total_queries
    );
    out.push_str("  \"refinement\": {\n");
    let _ = write!(
        out,
        "    \"counts\": {{\"exact_hit\": {}, \"containment_hit\": {}, \"cold\": {}, \"other\": {}}},\n",
        exact_hits, containment_hits, colds, other
    );
    let _ = write!(out, "    \"exact_hit\": {},\n", summary_json(&exact));
    let _ = write!(out, "    \"containment_hit\": {},\n", summary_json(&contain));
    let _ = write!(out, "    \"cold\": {},\n", summary_json(&cold));
    let _ = write!(
        out,
        "    \"containment_speedup\": {}\n  }},\n",
        json_num(containment_speedup)
    );
    let _ = write!(
        out,
        "  \"containment\": {{\"queries\": {}, \"mismatches\": {}, \"status\": \"{}\"}},\n",
        checked, mismatches, contain_status
    );
    let _ = write!(
        out,
        "  \"speculation\": {{\"considered\": {}, \"filled\": {}, \"already_cached\": {}, \"degraded\": {}, \"tree_hits_after\": {}, \"status\": \"{}\"}},\n",
        report.considered,
        report.filled,
        report.already_cached,
        report.degraded,
        spec_tree_hits,
        spec_status
    );
    let _ = write!(
        out,
        "  \"counters\": {{\"serve.cache.containment_hit\": {}, \"serve.containment.rows_donor\": {}, \"serve.containment.rows_out\": {}, \"serve.cache.result.miss\": {}, \"serve.cache.hit\": {}}}\n",
        counter("serve.cache.containment_hit"),
        counter("serve.containment.rows_donor"),
        counter("serve.containment.rows_out"),
        counter("serve.cache.result.miss"),
        counter("serve.cache.hit")
    );
    out.push_str("}\n");
    let out_path = args.out();
    std::fs::write(&out_path, out).expect("write bench report");
    println!("  wrote {out_path}");
    if contain_status != "ok" || spec_status != "ok" {
        std::process::exit(1);
    }
}

/// The mutable-tail serving tier: two warmed servers — selective
/// invalidation vs. the whole-table epoch-bump baseline — take the
/// same append rounds, then replay the warm set. Selective must keep
/// strictly more exact cache hits alive, and nothing the surviving
/// caches serve may differ from a from-scratch recompute.
fn run_ingest(args: &Args) {
    let runs = args.runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_pipeline: ingest tier, seed {}, {} append rounds, {} cores",
        args.seed, runs, cores
    );
    let env = StudyEnv::generate(
        StudyScale::Custom {
            rows: 60_000,
            queries: 400,
        },
        args.seed,
    );
    let relation = env.relation.clone();
    let schema = relation.schema().clone();
    let n = relation.len();
    relation.build_indexes();
    println!("  {} rows", n);

    // Distinct workload queries form the warm set both servers cache
    // before any append lands.
    let mut seen = std::collections::HashSet::new();
    let sample: Vec<&NormalizedQuery> = env
        .log
        .queries()
        .iter()
        .filter(|q| seen.insert(qcat_serve::fingerprint(q)))
        .take(args.queries)
        .collect();
    assert!(!sample.is_empty(), "empty distinct workload");
    let table = sample[0].table.clone();

    let selective = Server::new(ServerConfig::default());
    selective
        .register_table(&table, relation.clone(), env.log.clone(), env.prep.clone())
        .expect("register selective table");
    let mut epoch_cfg = ServerConfig::default();
    epoch_cfg.selective_invalidation = false;
    let epoch = Server::new(epoch_cfg);
    epoch
        .register_table(&table, relation.clone(), env.log.clone(), env.prep.clone())
        .expect("register epoch-baseline table");

    let mut warmed = 0usize;
    for q in &sample {
        let sql = sql_of(q, &schema);
        selective.serve(&sql).expect("selective warm serve");
        epoch.serve(&sql).expect("epoch warm serve");
        warmed += 1;
    }
    println!("  warmed {} distinct queries on both servers", warmed);

    // Every append round lands the same narrow batch: copies of row 0,
    // so the delta's per-column footprint is one point and the
    // workload's predicates split cleanly into provably-disjoint
    // (keepable) and possibly-intersecting (must-evict) entries.
    let template_row = relation.row(0).expect("row 0 of the study relation");
    let batch: Vec<Vec<qcat_data::Value>> = (0..32).map(|_| template_row.clone()).collect();

    let mut sel_append_ns = Vec::with_capacity(runs);
    let mut epoch_append_ns = Vec::with_capacity(runs);
    let (mut evicted_total, mut kept_total) = (0usize, 0usize);
    let mut rows_appended = 0usize;
    for _ in 0..runs {
        let mut outcome = None;
        sel_append_ns.push(time_ns(|| {
            outcome = Some(
                selective
                    .append_rows(&table, &batch)
                    .expect("selective append"),
            );
        }));
        let outcome = outcome.expect("timed append ran");
        assert_eq!(outcome.added, batch.len());
        evicted_total += outcome.evicted;
        kept_total += outcome.kept;
        rows_appended += outcome.added;
        epoch_append_ns.push(time_ns(|| {
            epoch.append_rows(&table, &batch).expect("epoch append");
        }));
    }
    assert_eq!(
        selective.generation(&table),
        Some(runs as u64),
        "every append round advanced the generation"
    );
    let sel_append = summarize(&sel_append_ns);
    let epoch_append = summarize(&epoch_append_ns);
    println!(
        "  append median: selective {:.4} ms | epoch baseline {:.4} ms",
        sel_append.median_ms, epoch_append.median_ms
    );
    println!(
        "  selective invalidation: {} entries evicted, {} kept across {} rounds",
        evicted_total, kept_total, runs
    );

    // Retention replay: the first post-append serve of each warmed
    // query. Only exact hits count as "retained" — a containment hit
    // could come from a donor refilled moments earlier in this same
    // pass, which would credit the epoch baseline with entries it
    // actually dropped.
    let retained = |outcome: ServeOutcome| {
        matches!(
            outcome,
            ServeOutcome::TreeCacheHit | ServeOutcome::ResultCacheHit
        )
    };
    let (mut selective_live, mut epoch_live) = (0usize, 0usize);
    for q in &sample {
        let sql = sql_of(q, &schema);
        if retained(selective.serve(&sql).expect("selective replay").outcome) {
            selective_live += 1;
        }
        if retained(epoch.serve(&sql).expect("epoch replay").outcome) {
            epoch_live += 1;
        }
    }
    let retention_status = if selective_live > epoch_live { "ok" } else { "bad" };
    println!(
        "  retention: selective {} / epoch {} of {} warmed entries still exact hits ({})",
        selective_live, epoch_live, warmed, retention_status
    );

    // Zero-staleness differential: whatever the surviving caches
    // answer must match a recompute from flushed caches, byte for
    // byte — rows and rendered tree both.
    let mut cached_pass = Vec::with_capacity(sample.len());
    for q in &sample {
        let served = selective.serve(&sql_of(q, &schema)).expect("cached pass");
        cached_pass.push((served.rows, served.rendered));
    }
    selective.clear_caches();
    let mut mismatches = 0usize;
    for (q, (rows, rendered)) in sample.iter().zip(&cached_pass) {
        let sql = sql_of(q, &schema);
        let fresh = selective.serve(&sql).expect("fresh pass");
        if fresh.rows != *rows || fresh.rendered != *rendered {
            mismatches += 1;
            eprintln!("  STALE ANSWER: {sql}");
        }
    }
    let ingest_status = if mismatches == 0 { "ok" } else { "stale" };
    println!(
        "  staleness: {} queries checked, {} mismatches ({})",
        sample.len(),
        mismatches,
        ingest_status
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n  \"scale\": \"ingest\",\n");
    let _ = write!(
        out,
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    );
    let _ = write!(
        out,
        "  \"seed\": {}, \"runs\": {}, \"cores\": {}, \"rows\": {},\n",
        args.seed, runs, cores, n
    );
    let _ = write!(
        out,
        "  \"warmed\": {}, \"batch_rows\": {},\n",
        warmed,
        batch.len()
    );
    out.push_str("  \"ingest\": {\n");
    let _ = write!(
        out,
        "    \"appends\": {}, \"rows_appended\": {},\n",
        runs, rows_appended
    );
    let _ = write!(out, "    \"append\": {},\n", summary_json(&sel_append));
    let _ = write!(
        out,
        "    \"append_epoch\": {},\n",
        summary_json(&epoch_append)
    );
    let _ = write!(
        out,
        "    \"evicted\": {}, \"kept\": {}, \"mismatches\": {}, \"status\": \"{}\"\n",
        evicted_total, kept_total, mismatches, ingest_status
    );
    out.push_str("  },\n");
    let _ = write!(
        out,
        "  \"retention\": {{\"queries\": {}, \"selective_live\": {}, \"epoch_live\": {}, \"status\": \"{}\"}}\n",
        warmed, selective_live, epoch_live, retention_status
    );
    out.push_str("}\n");
    let out_path = args.out();
    std::fs::write(&out_path, out).expect("write bench report");
    println!("  wrote {out_path}");
    if ingest_status != "ok" || retention_status != "ok" {
        std::process::exit(1);
    }
}

/// One timed sweep entry of the large tier: a layout/thread-width
/// combination with its summary and (for non-baseline entries) the
/// median speedup over the serial single-shard baseline.
struct SweepEntry {
    mode: &'static str,
    threads: usize,
    summary: Summary,
    speedup_vs_serial: Option<f64>,
}

fn sweep_json(entries: &[SweepEntry]) -> String {
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"summary\": {}",
            e.mode,
            e.threads,
            summary_json(&e.summary)
        );
        if let Some(s) = e.speedup_vs_serial {
            let _ = write!(out, ", \"speedup_vs_serial\": {}", json_num(s));
        }
        out.push_str(if i + 1 < entries.len() { "},\n" } else { "}\n" });
    }
    out
}

/// The paper-scale data-plane tier: sharded relation, morsel-parallel
/// scans and index builds vs. the single-shard serial baseline.
fn run_large(args: &Args) {
    let runs = args.runs();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (rows_target, queries_target, shard_rows) = large_tier_dims();
    println!(
        "bench_pipeline: large tier, target {} rows / {} queries, shard_rows {}, \
         seed {}, {} runs, {} cores",
        rows_target, queries_target, shard_rows, args.seed, runs, cores
    );
    if cores <= 1 {
        println!(
            "  WARNING: only one core visible — thread-sweep entries share \
             one CPU and the report is marked \"degraded\": true"
        );
    }
    let gen_start = Instant::now();
    let env = StudyEnv::generate(
        StudyScale::Custom {
            rows: rows_target,
            queries: queries_target,
        },
        args.seed,
    );
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    let single = env.relation.clone();
    let n = single.len();
    let workload_queries = env.log.len();
    println!(
        "  generated in {:.1}s: {} rows, {} parsed workload queries",
        gen_seconds, n, workload_queries
    );
    let sharded = single.resharded(shard_rows).expect("reshard relation");
    let shards = sharded.shards().shard_count();
    println!("  sharded layout: {} shards of <= {} rows", shards, shard_rows);
    // Thread sweep: serial, a middle width, and the widest. Always
    // emitted even on narrow hosts so report columns line up; the
    // cores field says how honest each width is.
    let sweep: [usize; 3] = [1, 2, 8];

    // ---- Index build: serial single-shard baseline, then per-shard
    // morsel builds across the sweep. Fresh (index-free) clones of the
    // same columns each run; clone cost stays outside the timer.
    let rec = qcat_obs::Recorder::metrics_only();
    let mut build_entries: Vec<SweepEntry> = Vec::new();
    let mut scan_entries: Vec<SweepEntry> = Vec::new();
    let mut det_hash: Option<u64> = None;
    let mut det_mismatches = 0usize;
    let mut broad_rows = 0usize;
    let mut sel_rows = 0usize;
    let mut auto_summary = Summary {
        mean_ms: 0.0,
        median_ms: 0.0,
        p95_ms: 0.0,
    };
    let mut sel_scan_summary = auto_summary;
    let sample: Vec<&NormalizedQuery> = env.log.queries().iter().take(args.queries).collect();
    qcat_obs::with_recorder(&rec, || {
        let serial_ns: Vec<u64> = (0..runs)
            .map(|_| {
                let fresh = single.resharded(0).expect("reshard");
                time_ns(|| {
                    fresh.try_build_indexes(1).expect("serial index build");
                })
            })
            .collect();
        let serial = summarize(&serial_ns);
        println!(
            "  index build single-shard serial: median {:.1} ms",
            serial.median_ms
        );
        build_entries.push(SweepEntry {
            mode: "single",
            threads: 1,
            summary: serial,
            speedup_vs_serial: None,
        });
        for &t in &sweep {
            let ns: Vec<u64> = (0..runs)
                .map(|_| {
                    let fresh = single.resharded(shard_rows).expect("reshard");
                    time_ns(|| {
                        fresh.try_build_indexes(t).expect("sharded index build");
                    })
                })
                .collect();
            let s = summarize(&ns);
            let speedup = serial.median_ms / s.median_ms;
            println!(
                "  index build sharded threads={t}: median {:.1} ms ({:.2}x vs serial)",
                s.median_ms, speedup
            );
            build_entries.push(SweepEntry {
                mode: "sharded",
                threads: t,
                summary: s,
                speedup_vs_serial: Some(speedup),
            });
        }

        // Both layouts keep cached indexes from here on.
        single.build_indexes();
        sharded.build_indexes();

        // ---- Probe selection from the workload sample: the broadest
        // query stresses the scan path, the most selective non-empty
        // query stresses the index path.
        let lens: Vec<usize> = sample
            .iter()
            .map(|q| {
                execute_normalized_with(&single, q, AccessPath::ForceScan)
                    .expect("probe scan")
                    .len()
            })
            .collect();
        let bi = (0..lens.len())
            .max_by_key(|&i| lens[i])
            .expect("empty workload sample");
        let si = (0..lens.len())
            .filter(|&i| lens[i] > 0)
            .min_by_key(|&i| lens[i])
            .expect("no non-empty workload query");
        let (broad_probe, sel_probe) = (sample[bi], sample[si]);
        (broad_rows, sel_rows) = (lens[bi], lens[si]);
        println!(
            "  broad probe {} rows ({:.1}%), selective probe {} rows ({:.3}%)",
            broad_rows,
            100.0 * broad_rows as f64 / n as f64,
            sel_rows,
            100.0 * sel_rows as f64 / n as f64
        );

        // ---- Full-scan sweep on the broad probe: single-shard serial
        // baseline vs. morsel-parallel sharded scans. Every run's row
        // ids are hashed; all hashes must collide into one value.
        let mut hash_check = |rows: &[u32]| {
            let h = fnv1a_rows(rows);
            match det_hash {
                None => det_hash = Some(h),
                Some(expect) if expect != h => det_mismatches += 1,
                Some(_) => {}
            }
        };
        let serial_scan_ns: Vec<u64> = (0..runs)
            .map(|_| {
                time_ns(|| {
                    let rs = execute_normalized_with_threads(
                        &single,
                        broad_probe,
                        AccessPath::ForceScan,
                        1,
                    )
                    .expect("serial scan");
                    hash_check(rs.rows());
                })
            })
            .collect();
        let serial_scan = summarize(&serial_scan_ns);
        println!(
            "  scan single-shard serial: median {:.1} ms",
            serial_scan.median_ms
        );
        scan_entries.push(SweepEntry {
            mode: "single",
            threads: 1,
            summary: serial_scan,
            speedup_vs_serial: None,
        });
        for &t in &sweep {
            let ns: Vec<u64> = (0..runs)
                .map(|_| {
                    time_ns(|| {
                        let rs = execute_normalized_with_threads(
                            &sharded,
                            broad_probe,
                            AccessPath::ForceScan,
                            t,
                        )
                        .expect("sharded scan");
                        hash_check(rs.rows());
                    })
                })
                .collect();
            let s = summarize(&ns);
            let speedup = serial_scan.median_ms / s.median_ms;
            println!(
                "  scan sharded threads={t}: median {:.1} ms ({:.2}x vs serial)",
                s.median_ms, speedup
            );
            scan_entries.push(SweepEntry {
                mode: "sharded",
                threads: t,
                summary: s,
                speedup_vs_serial: Some(speedup),
            });
        }

        // ---- Index probe on the selective query: sharded serial scan
        // vs. the planner's pruned index path.
        let sel_scan_ns: Vec<u64> = (0..runs)
            .map(|_| {
                time_ns(|| {
                    let rs = execute_normalized_with_threads(
                        &sharded,
                        sel_probe,
                        AccessPath::ForceScan,
                        1,
                    )
                    .expect("selective scan");
                    std::hint::black_box(rs.len());
                })
            })
            .collect();
        sel_scan_summary = summarize(&sel_scan_ns);
        let auto_ns: Vec<u64> = (0..runs)
            .map(|_| {
                time_ns(|| {
                    let rs = execute_normalized_with_threads(
                        &sharded,
                        sel_probe,
                        AccessPath::Auto,
                        1,
                    )
                    .expect("auto path");
                    std::hint::black_box(rs.len());
                })
            })
            .collect();
        auto_summary = summarize(&auto_ns);
    });
    let index_bytes = sharded.indexes().map_or(0, |ix| ix.heap_bytes());
    let index_speedup = sel_scan_summary.median_ms / auto_summary.median_ms;
    let sel_probe = sample
        .iter()
        .copied()
        .find(|q| {
            execute_normalized_with(&single, q, AccessPath::ForceScan)
                .map(|rs| rs.len() == sel_rows && sel_rows > 0)
                .unwrap_or(false)
        })
        .expect("selective probe recoverable");
    let (_, sel_explain) =
        plan::select_rows(&sharded, sel_probe, AccessPath::Auto).expect("explain probe");
    println!(
        "  selective probe: scan median {:.2} ms | index median {:.2} ms | \
         speedup {:.1}x | {} of {} shards pruned",
        sel_scan_summary.median_ms,
        auto_summary.median_ms,
        index_speedup,
        sel_explain.shards_pruned,
        shards
    );

    // ---- Differential + pruning: every sampled query, sharded layout
    // vs. the single-shard scan truth, across paths and widths.
    let mut mismatches = 0usize;
    let mut shards_pruned_total = 0usize;
    let mut queries_pruned = 0usize;
    for q in &sample {
        let truth = execute_normalized_with(&single, q, AccessPath::ForceScan)
            .expect("truth scan");
        for t in [1usize, 8] {
            for path in [AccessPath::Auto, AccessPath::ForceScan, AccessPath::ForceIndex] {
                let (rows, explain) =
                    plan::select_rows_with_threads(&sharded, q, path, t).expect("sharded path");
                if rows.as_slice() != truth.rows() {
                    mismatches += 1;
                    eprintln!("  MISMATCH ({path:?}, threads={t})");
                }
                if path == AccessPath::Auto && t == 1 {
                    shards_pruned_total += explain.shards_pruned;
                    if explain.shards_pruned > 0 {
                        queries_pruned += 1;
                    }
                }
            }
        }
    }
    let diff_status = if mismatches == 0 { "ok" } else { "mismatch" };
    let det_status = if det_mismatches == 0 { "ok" } else { "mismatch" };
    println!(
        "  differential: {} queries x 3 paths x 2 widths, {} mismatches ({})",
        sample.len(),
        mismatches,
        diff_status
    );
    println!(
        "  pruning: {}/{} sampled queries pruned shards ({} shard-skips total)",
        queries_pruned,
        sample.len(),
        shards_pruned_total
    );

    let phases: Vec<qcat_obs::SpanStats> = rec
        .snapshot()
        .span_stats()
        .into_iter()
        .filter(|s| s.name.starts_with("exec.") || s.name.starts_with("data.index"))
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n  \"scale\": \"large\",\n");
    let _ = write!(
        out,
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    );
    let _ = write!(
        out,
        "  \"seed\": {}, \"runs\": {}, \"cores\": {}, \"degraded\": {},\n",
        args.seed,
        runs,
        cores,
        // One visible core means every multi-thread sweep entry ran on
        // shared hardware: emit the columns, but flag the report.
        cores <= 1
    );
    let _ = write!(
        out,
        "  \"rows\": {}, \"workload_queries\": {}, \"shard_rows\": {}, \"shards\": {},\n",
        n, workload_queries, shard_rows, shards
    );
    let _ = write!(
        out,
        "  \"gen_seconds\": {}, \"index_heap_bytes\": {},\n",
        json_num(gen_seconds),
        index_bytes
    );
    let _ = write!(
        out,
        "  \"broad_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        broad_rows,
        json_num(broad_rows as f64 / n as f64)
    );
    let _ = write!(
        out,
        "  \"exec_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        sel_rows,
        json_num(sel_rows as f64 / n as f64)
    );
    out.push_str("  \"index_build\": [\n");
    out.push_str(&sweep_json(&build_entries));
    out.push_str("  ],\n  \"scan\": [\n");
    out.push_str(&sweep_json(&scan_entries));
    out.push_str("  ],\n  \"access_path\": [\n");
    let _ = write!(
        out,
        "    {{\"path\": \"scan\", \"summary\": {}}},\n",
        summary_json(&sel_scan_summary)
    );
    let _ = write!(
        out,
        "    {{\"path\": \"index\", \"summary\": {}, \"speedup_vs_scan\": {}, \"shards_pruned\": {}}}\n",
        summary_json(&auto_summary),
        json_num(index_speedup),
        sel_explain.shards_pruned
    );
    out.push_str("  ],\n");
    let _ = write!(
        out,
        "  \"pruning\": {{\"queries\": {}, \"queries_pruned\": {}, \"shards_pruned_total\": {}}},\n",
        sample.len(),
        queries_pruned,
        shards_pruned_total
    );
    let _ = write!(
        out,
        "  \"determinism\": {{\"scan_runs_hashed\": {}, \"mismatches\": {}, \"row_hash\": \"{:#018x}\", \"status\": \"{}\"}},\n",
        (1 + sweep.len()) * runs,
        det_mismatches,
        det_hash.unwrap_or(0),
        det_status
    );
    let _ = write!(
        out,
        "  \"differential\": {{\"queries\": {}, \"paths\": [\"auto\", \"force_scan\", \"force_index\"], \"threads\": [1, 8], \"mismatches\": {}, \"status\": \"{}\"}},\n",
        sample.len(),
        mismatches,
        diff_status
    );
    out.push_str("  \"phases\": [\n");
    for (j, p) in phases.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"count\": {}, \"mean_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}, \"total_ms\": {}}}{}\n",
            json_escape(&p.name),
            p.count,
            json_num(p.mean_ns / 1e6),
            json_num(p.p50_ns as f64 / 1e6),
            json_num(p.p95_ns as f64 / 1e6),
            json_num(p.total_ns as f64 / 1e6),
            if j + 1 < phases.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    let out_path = args.out();
    std::fs::write(&out_path, out).expect("write bench report");
    println!("  wrote {out_path}");
    if mismatches > 0 || det_mismatches > 0 {
        std::process::exit(1);
    }
}
