//! Hermetic end-to-end pipeline benchmark: parse → execute →
//! categorize over the Smoke fixture, comparing the scan and index
//! access paths and the cold/warm serving path, and writing a
//! `BENCH_pr5.json` report.
//!
//! Std-only like `bench_categorize` (same schema conventions; see
//! docs/PERFORMANCE.md). Besides timings, the report carries a
//! `differential` section: every sampled workload query is executed
//! along scan, auto, and forced-index paths and the row sets must be
//! identical — `"status": "ok"` is asserted by `scripts/check.sh`.
//! A `chaos` section replays serves against a budgeted server under a
//! deterministic fault plan and records how every request ended
//! (ok / degraded / shed / structured error); nothing may fall
//! through unaccounted.
//!
//! ```text
//! bench_pipeline [--runs N] [--seed S] [--queries N] [--out PATH]
//! ```

use qcat_bench::{bench_env, json_escape, json_num, summarize, Summary};
use qcat_exec::{execute_normalized_with, AccessPath};
use qcat_serve::{ServeOutcome, Server, ServerConfig};
use qcat_sql::normalize::{AttrCondition, NormalizedQuery};
use qcat_data::Schema;
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    runs: usize,
    seed: u64,
    queries: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: 30,
        seed: 1234,
        queries: 200,
        out: "BENCH_pr5.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--runs" => args.runs = value("--runs").parse().expect("--runs: not a number"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: not a number"),
            "--queries" => {
                args.queries = value("--queries").parse().expect("--queries: not a number")
            }
            "--out" => args.out = value("--out"),
            "--help" | "-h" => {
                println!("bench_pipeline [--runs N] [--seed S] [--queries N] [--out PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Render a normalized query back to the SQL subset, so the serving
/// layer (which takes SQL strings) can replay workload queries.
fn sql_of(query: &NormalizedQuery, schema: &Schema) -> String {
    let mut conjuncts = Vec::new();
    for (attr, cond) in &query.conditions {
        let name = schema.name_of(*attr);
        match cond {
            AttrCondition::InStr(values) => {
                let list = values
                    .iter()
                    .map(|v| format!("'{}'", v.replace('\'', "''")))
                    .collect::<Vec<_>>()
                    .join(",");
                conjuncts.push(format!("{name} IN ({list})"));
            }
            AttrCondition::InNum(values) => {
                let list = values
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                conjuncts.push(format!("{name} IN ({list})"));
            }
            AttrCondition::Range(r) => {
                if let Some(lo) = r.finite_lo() {
                    let op = if r.lo_inclusive { ">=" } else { ">" };
                    conjuncts.push(format!("{name} {op} {lo}"));
                }
                if let Some(hi) = r.finite_hi() {
                    let op = if r.hi_inclusive { "<=" } else { "<" };
                    conjuncts.push(format!("{name} {op} {hi}"));
                }
            }
        }
    }
    let mut sql = format!("SELECT * FROM {}", query.table);
    if !conjuncts.is_empty() {
        let _ = write!(sql, " WHERE {}", conjuncts.join(" AND "));
    }
    sql
}

fn time_ns(mut f: impl FnMut()) -> u64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as u64
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"mean_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}}}",
        json_num(s.mean_ms),
        json_num(s.median_ms),
        json_num(s.p95_ms)
    )
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_pipeline: smoke fixture, seed {}, {} runs, {} cores",
        args.seed, args.runs, cores
    );
    let env = bench_env(args.seed, 8);
    let relation = env.env.relation.clone();
    let schema = relation.schema().clone();
    let n = relation.len();
    relation.build_indexes();
    let index_bytes = relation.indexes().map_or(0, |ix| ix.heap_bytes());
    println!("  {} rows, index heap {} bytes", n, index_bytes);

    // ---- Differential: scan / auto / forced-index row-set equality
    // over a slice of real workload queries.
    let sample: Vec<&NormalizedQuery> =
        env.env.log.queries().iter().take(args.queries).collect();
    let mut mismatches = 0usize;
    for q in &sample {
        let scan = execute_normalized_with(&relation, q, AccessPath::ForceScan)
            .expect("scan path failed");
        for path in [AccessPath::Auto, AccessPath::ForceIndex] {
            let other =
                execute_normalized_with(&relation, q, path).expect("index path failed");
            if other.rows() != scan.rows() {
                mismatches += 1;
                eprintln!("  MISMATCH ({path:?}): {}", sql_of(q, &schema));
            }
        }
    }
    let diff_status = if mismatches == 0 { "ok" } else { "mismatch" };
    println!(
        "  differential: {} queries x 2 paths, {} mismatches ({})",
        sample.len(),
        mismatches,
        diff_status
    );

    // ---- Two probes from the selective (<5%) workload slice. The
    // exec probe is the *most* selective query — where the index
    // path's advantage over a full scan is the point being measured.
    // The serve probe is the *largest* result still under 5%, so the
    // cold path (execute + categorize + render) does representative
    // work for the cold/warm cache comparison.
    let selective: Vec<(&NormalizedQuery, usize)> = sample
        .iter()
        .filter_map(|q| {
            let rs = execute_normalized_with(&relation, q, AccessPath::ForceScan).ok()?;
            let len = rs.len();
            (len > 0 && (len as f64) < 0.05 * n as f64).then_some((*q, len))
        })
        .collect();
    let &(exec_probe, exec_rows) = selective
        .iter()
        .min_by_key(|&&(_, len)| len)
        .expect("no selective non-empty workload query in the sample");
    let &(serve_probe, serve_rows) = selective
        .iter()
        .max_by_key(|&&(_, len)| len)
        .expect("no selective non-empty workload query in the sample");
    let exec_sel = exec_rows as f64 / n as f64;
    let serve_sel = serve_rows as f64 / n as f64;
    println!(
        "  exec probe:  {} ({} rows, {:.2}% selectivity)",
        sql_of(exec_probe, &schema),
        exec_rows,
        100.0 * exec_sel
    );
    println!(
        "  serve probe: {} ({} rows, {:.2}% selectivity)",
        sql_of(serve_probe, &schema),
        serve_rows,
        100.0 * serve_sel
    );

    let mut scan_ns = Vec::with_capacity(args.runs);
    let mut index_ns = Vec::with_capacity(args.runs);
    for _ in 0..args.runs {
        scan_ns.push(time_ns(|| {
            let rs = execute_normalized_with(&relation, exec_probe, AccessPath::ForceScan)
                .expect("scan failed");
            std::hint::black_box(rs.len());
        }));
        index_ns.push(time_ns(|| {
            let rs = execute_normalized_with(&relation, exec_probe, AccessPath::Auto)
                .expect("index failed");
            std::hint::black_box(rs.len());
        }));
    }
    let scan = summarize(&scan_ns);
    let index = summarize(&index_ns);
    // Speedups are median-based: on a busy single-core host one
    // scheduler hiccup in N runs can double a mean, and the summary
    // already reports mean/median/p95 for anyone who wants the rest.
    let index_speedup = scan.median_ms / index.median_ms;
    println!(
        "  exec scan median {:.4} ms | index median {:.4} ms | speedup {:.1}x",
        scan.median_ms, index.median_ms, index_speedup
    );

    // ---- Serving: cold (caches cleared every run) vs. warm (tree
    // cache hit) on the same probe query.
    let server = Server::new(ServerConfig::default());
    server
        .register_table(
            &serve_probe.table,
            relation.clone(),
            env.env.log.clone(),
            env.env.prep.clone(),
        )
        .expect("register study table");
    let probe_sql = sql_of(serve_probe, &schema);
    let mut cold_ns = Vec::with_capacity(args.runs);
    let mut warm_ns = Vec::with_capacity(args.runs);
    for _ in 0..args.runs {
        server.clear_caches();
        cold_ns.push(time_ns(|| {
            let served = server.serve(&probe_sql).expect("cold serve");
            assert_eq!(served.outcome, ServeOutcome::Cold);
            std::hint::black_box(served.rows);
        }));
        warm_ns.push(time_ns(|| {
            let served = server.serve(&probe_sql).expect("warm serve");
            assert_eq!(served.outcome, ServeOutcome::TreeCacheHit);
            std::hint::black_box(served.rows);
        }));
    }
    let cold = summarize(&cold_ns);
    let warm = summarize(&warm_ns);
    let warm_speedup = cold.median_ms / warm.median_ms;
    println!(
        "  serve cold median {:.4} ms | warm median {:.4} ms | speedup {:.1}x",
        cold.median_ms, warm.median_ms, warm_speedup
    );

    // ---- Chaos: the serving path under a tight budget and a
    // deterministic fault plan. Caches are cleared before every serve
    // so each request exercises the full fill; every request must end
    // in one of the accounted buckets or the report is marked bad.
    let chaos_queries = sample.len().min(40);
    let mut chaos_config = ServerConfig::default();
    chaos_config.budget = qcat_fault::Budget::UNLIMITED.with_max_nodes(6);
    let chaos_server = Server::new(chaos_config);
    chaos_server
        .register_table(
            &serve_probe.table,
            relation.clone(),
            env.env.log.clone(),
            env.env.prep.clone(),
        )
        .expect("register chaos table");
    let plan = qcat_fault::FaultPlan::parse(&format!(
        "pool.task:error:p=0.25:seed={seed};serve.fill:error:p=0.15:seed={seed}",
        seed = args.seed
    ))
    .expect("chaos fault plan");
    let (mut chaos_ok, mut chaos_degraded, mut chaos_errors) = (0usize, 0usize, 0usize);
    for q in sample.iter().take(chaos_queries) {
        chaos_server.clear_caches();
        let sql = sql_of(q, &schema);
        match qcat_fault::with_plan(&plan, || chaos_server.serve(&sql)) {
            Ok(served) if served.tree.degraded().is_some() => chaos_degraded += 1,
            Ok(_) => chaos_ok += 1,
            Err(_) => chaos_errors += 1,
        }
    }
    let chaos_shed = 0usize; // single-threaded replay: admission never trips
    let chaos_status = if chaos_ok + chaos_degraded + chaos_shed + chaos_errors == chaos_queries
        && chaos_ok > 0
    {
        "ok"
    } else {
        "unaccounted"
    };
    println!(
        "  chaos: {} queries -> {} ok, {} degraded, {} shed, {} errors ({})",
        chaos_queries, chaos_ok, chaos_degraded, chaos_shed, chaos_errors, chaos_status
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pipeline\",\n  \"scale\": \"smoke\",\n");
    let _ = write!(
        out,
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    );
    let _ = write!(
        out,
        "  \"seed\": {}, \"runs\": {}, \"cores\": {}, \"rows\": {},\n",
        args.seed, args.runs, cores, n
    );
    let _ = write!(out, "  \"index_heap_bytes\": {},\n", index_bytes);
    let _ = write!(
        out,
        "  \"exec_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        exec_rows,
        json_num(exec_sel)
    );
    let _ = write!(
        out,
        "  \"serve_probe\": {{\"rows\": {}, \"selectivity\": {}}},\n",
        serve_rows,
        json_num(serve_sel)
    );
    out.push_str("  \"access_path\": [\n");
    let _ = write!(
        out,
        "    {{\"path\": \"scan\", \"summary\": {}}},\n",
        summary_json(&scan)
    );
    let _ = write!(
        out,
        "    {{\"path\": \"index\", \"summary\": {}, \"speedup_vs_scan\": {}}}\n",
        summary_json(&index),
        json_num(index_speedup)
    );
    out.push_str("  ],\n");
    out.push_str("  \"serve\": {\n");
    let _ = write!(out, "    \"cold\": {},\n", summary_json(&cold));
    let _ = write!(
        out,
        "    \"warm\": {},\n    \"warm_speedup\": {}\n",
        summary_json(&warm),
        json_num(warm_speedup)
    );
    out.push_str("  },\n");
    let _ = write!(
        out,
        "  \"differential\": {{\"queries\": {}, \"paths\": [\"auto\", \"force_index\"], \"mismatches\": {}, \"status\": \"{}\"}},\n",
        sample.len(),
        mismatches,
        diff_status
    );
    let _ = write!(
        out,
        "  \"chaos\": {{\"queries\": {}, \"ok\": {}, \"degraded\": {}, \"shed\": {}, \"errors\": {}, \"status\": \"{}\"}}\n",
        chaos_queries, chaos_ok, chaos_degraded, chaos_shed, chaos_errors, chaos_status
    );
    out.push_str("}\n");
    std::fs::write(&args.out, out).expect("write bench report");
    println!("  wrote {}", args.out);
    if mismatches > 0 || chaos_status != "ok" {
        std::process::exit(1);
    }
}
