//! Hermetic categorization benchmark: times `Categorizer::categorize`
//! over the Smoke fixture at each configured worker-thread count and
//! writes a `BENCH_*.json` report.
//!
//! Everything is std-only — no criterion, no registry access — so this
//! runs inside the tier-1 gate. Methodology and the JSON schema are
//! documented in docs/PERFORMANCE.md.
//!
//! ```text
//! bench_categorize [--runs N] [--cases N] [--seed S] [--out PATH]
//! ```

use qcat_bench::{
    bench_env_at, json_escape, json_num, large_tier_dims, summarize, BenchEnv, Summary,
};
use qcat_core::Categorizer;
use qcat_study::StudyScale;
use std::time::Instant;

/// Upper bounds of the result-set size buckets; the last bucket is
/// open-ended. Smoke-scale oversized results land across the first
/// three; larger scales fill the tail.
const SIZE_BUCKET_BOUNDS: &[usize] = &[1_000, 2_000, 5_000];

fn bucket_label(size: usize) -> String {
    let mut lo = 0usize;
    for &hi in SIZE_BUCKET_BOUNDS {
        if size <= hi {
            return format!("{}-{}", lo + 1, hi);
        }
        lo = hi;
    }
    format!(">{lo}")
}

struct Args {
    runs: usize,
    cases: usize,
    seed: u64,
    out: String,
    scale: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        runs: 5,
        cases: 8,
        seed: 1234,
        out: "BENCH_pr3.json".to_string(),
        scale: "smoke".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--runs" => args.runs = value("--runs").parse().expect("--runs: not a number"),
            "--cases" => args.cases = value("--cases").parse().expect("--cases: not a number"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: not a number"),
            "--out" => args.out = value("--out"),
            "--scale" => {
                args.scale = value("--scale");
                assert!(
                    args.scale == "smoke" || args.scale == "large",
                    "--scale: smoke or large"
                );
            }
            "--help" | "-h" => {
                println!(
                    "bench_categorize [--runs N] [--cases N] [--seed S] \
                     [--scale smoke|large] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Wall-clock samples for one thread count: overall and per size
/// bucket, plus the categorizer's span profile for the same calls.
struct ThreadResult {
    /// `"serial"` or `"auto"`: which sweep entry this is. Both are
    /// always emitted, even when they resolve to the same width, so
    /// report consumers never have to guess which one is missing.
    mode: &'static str,
    threads: usize,
    total: Summary,
    total_mean_ms: f64,
    buckets: Vec<(String, usize, Summary)>,
    phases: Vec<qcat_obs::SpanStats>,
}

fn run_at(env: &BenchEnv, mode: &'static str, threads: usize, runs: usize) -> ThreadResult {
    let config = env.env.config.with_threads(threads);
    let categorizer = Categorizer::new(&env.stats, config);
    let rec = qcat_obs::Recorder::metrics_only();
    let mut all_ns: Vec<u64> = Vec::with_capacity(runs * env.cases.len());
    let mut by_bucket: Vec<(String, Vec<u64>)> = Vec::new();
    let mut warm = None;
    qcat_obs::with_recorder(&rec, || {
        // One untimed warmup pass so lazy allocator growth and cache
        // warming do not land in the first run's samples; the span
        // profile is the post-warmup delta for the same reason.
        for (qw, result) in &env.cases {
            std::hint::black_box(categorizer.categorize(result, Some(qw)).node_count());
        }
        warm = Some(rec.snapshot());
        for _ in 0..runs {
            for (qw, result) in &env.cases {
                let start = Instant::now();
                let tree = categorizer.categorize(result, Some(qw));
                let ns = start.elapsed().as_nanos() as u64;
                std::hint::black_box(tree.node_count());
                all_ns.push(ns);
                let label = bucket_label(result.len());
                match by_bucket.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, v)) => v.push(ns),
                    None => by_bucket.push((label, vec![ns])),
                }
            }
        }
    });
    let measured = match warm {
        Some(w) => rec.snapshot().delta(&w),
        None => rec.snapshot(),
    };
    let phases = measured
        .span_stats()
        .into_iter()
        .filter(|s| s.name.starts_with("categorize"))
        .collect();
    let total_mean_ms = summarize(&all_ns).mean_ms;
    ThreadResult {
        mode,
        threads,
        total: summarize(&all_ns),
        total_mean_ms,
        buckets: by_bucket
            .into_iter()
            .map(|(l, v)| (l, v.len() / runs, summarize(&v)))
            .collect(),
        phases,
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"mean_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}}}",
        json_num(s.mean_ms),
        json_num(s.median_ms),
        json_num(s.p95_ms)
    )
}

fn render_json(args: &Args, env: &BenchEnv, cores: usize, results: &[ThreadResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"categorize\",\n  \"scale\": \"{}\",\n",
        json_escape(&args.scale)
    ));
    out.push_str(&format!(
        "  \"schema_version\": {}, \"git\": \"{}\",\n",
        qcat_bench::BENCH_SCHEMA_VERSION,
        json_escape(&qcat_bench::git_describe())
    ));
    out.push_str(&format!(
        "  \"seed\": {}, \"runs\": {}, \"cases\": {}, \"cores\": {},\n",
        args.seed,
        args.runs,
        env.cases.len(),
        cores
    ));
    // One visible core means the "auto" entry measured a serial run:
    // any speedup column is meaningless, and consumers must not read
    // this report as evidence about the parallel pool.
    out.push_str(&format!(
        "  \"degraded\": {},\n",
        if cores <= 1 { "true" } else { "false" }
    ));
    let serial_mean = results
        .iter()
        .find(|r| r.mode == "serial")
        .map(|r| r.total_mean_ms);
    out.push_str("  \"threads\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"mode\": \"{}\",\n      \"threads\": {},\n",
            json_escape(r.mode),
            r.threads
        ));
        out.push_str(&format!("      \"total\": {},\n", summary_json(&r.total)));
        if let Some(serial) = serial_mean {
            let speedup = if r.total_mean_ms > 0.0 {
                serial / r.total_mean_ms
            } else {
                f64::NAN
            };
            out.push_str(&format!(
                "      \"speedup_vs_serial\": {},\n",
                json_num(speedup)
            ));
        }
        out.push_str("      \"size_buckets\": [\n");
        for (j, (label, cases, s)) in r.buckets.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"bucket\": \"{}\", \"cases\": {}, \"summary\": {}}}{}\n",
                json_escape(label),
                cases,
                summary_json(s),
                if j + 1 < r.buckets.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n      \"phases\": [\n");
        for (j, p) in r.phases.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"count\": {}, \"mean_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}, \"total_ms\": {}}}{}\n",
                json_escape(&p.name),
                p.count,
                json_num(p.mean_ns / 1e6),
                json_num(p.p50_ns as f64 / 1e6),
                json_num(p.p95_ns as f64 / 1e6),
                json_num(p.total_ns as f64 / 1e6),
                if j + 1 < r.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    // Detect hardware parallelism exactly once; everything downstream
    // (sweep, JSON, warnings) keys off this one observation.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_categorize: {} fixture, seed {}, {} runs, {} cores",
        args.scale, args.seed, args.runs, cores
    );
    if cores <= 1 {
        println!(
            "  WARNING: only one core visible — the \"auto\" entry runs \
             serially and the report is marked \"degraded\": true"
        );
    }
    let scale = if args.scale == "large" {
        let (rows, queries, _) = large_tier_dims();
        println!("  large tier: {rows} rows, {queries} workload queries");
        StudyScale::Custom { rows, queries }
    } else {
        StudyScale::Smoke
    };
    let env = bench_env_at(scale, args.seed, args.cases);
    println!(
        "  {} oversized cases (sizes {:?})",
        env.cases.len(),
        env.cases.iter().map(|(_, r)| r.len()).collect::<Vec<_>>()
    );
    // Serial baseline, then the environment-resolved width (the
    // production default). Both entries are always emitted — on a
    // single-core host they coincide, and the "degraded" flag says so.
    let sweep: [(&'static str, usize); 2] =
        [("serial", 1), ("auto", qcat_pool::resolve_threads(0))];
    let results: Vec<ThreadResult> = sweep
        .iter()
        .map(|&(mode, t)| {
            let r = run_at(&env, mode, t, args.runs);
            println!(
                "  {}(threads={}): mean {:.2} ms, median {:.2} ms, p95 {:.2} ms",
                mode, t, r.total.mean_ms, r.total.median_ms, r.total.p95_ms
            );
            r
        })
        .collect();
    if let (Some(serial), Some(auto)) = (
        results.iter().find(|r| r.mode == "serial"),
        results.iter().find(|r| r.mode == "auto"),
    ) {
        if auto.threads > 1 {
            println!(
                "  speedup threads={} vs serial: {:.2}x",
                auto.threads,
                serial.total_mean_ms / auto.total_mean_ms
            );
        }
    }
    let json = render_json(&args, &env, cores, &results);
    std::fs::write(&args.out, json).expect("write bench report");
    println!("  wrote {}", args.out);
}
