//! Shared fixtures for the Criterion benchmarks.

use qcat_exec::ResultSet;
use qcat_sql::{parse_and_normalize, NormalizedQuery};
use qcat_study::{broaden_query, StudyEnv, StudyScale};
use qcat_workload::WorkloadStatistics;
use std::sync::OnceLock;

/// A benchmark environment: generated dataset, workload statistics,
/// and a set of broadened queries with their results, built once per
/// process.
pub struct BenchEnv {
    /// The study environment (relation, log, geography, config).
    pub env: StudyEnv,
    /// Statistics over the full log.
    pub stats: WorkloadStatistics,
    /// `(broadened query, result)` cases spanning a range of result
    /// sizes.
    pub cases: Vec<(NormalizedQuery, ResultSet)>,
}

/// The process-wide benchmark environment (Smoke scale keeps
/// `cargo bench` minutes, not hours; the `repro` binary covers the
/// paper-scale runs).
pub fn bench_env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(|| {
        let env = StudyEnv::generate(StudyScale::Smoke, 1234);
        let stats = env.stats_for(&env.log);
        let schema = env.relation.schema().clone();
        let mut cases = Vec::new();
        for w in env.log.queries() {
            if cases.len() >= 24 {
                break;
            }
            let Some(qw) = broaden_query(w, &schema, &env.geography) else {
                continue;
            };
            let Ok(result) = qcat_exec::execute_normalized(&env.relation, &qw) else {
                continue;
            };
            if result.len() > env.config.max_leaf_tuples {
                cases.push((qw, result));
            }
        }
        assert!(!cases.is_empty(), "bench fixture produced no cases");
        BenchEnv { env, stats, cases }
    })
}

/// A medium-selectivity query against the fixture relation.
pub fn sample_query(env: &BenchEnv) -> NormalizedQuery {
    let seattle = env
        .env
        .geography
        .region_of("Bellevue")
        .expect("standard geography")
        .neighborhoods
        .iter()
        .map(|h| format!("'{h}'"))
        .collect::<Vec<_>>()
        .join(", ");
    parse_and_normalize(
        &format!(
            "SELECT * FROM listproperty WHERE neighborhood IN ({seattle}) \
             AND price BETWEEN 150000 AND 600000"
        ),
        env.env.relation.schema(),
    )
    .expect("valid query")
}
