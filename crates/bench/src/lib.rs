//! First-party benchmark harness: fixtures and summary statistics for
//! the hermetic `bench_categorize` binary.
//!
//! No criterion — the tier-1 build resolves offline, so measurement is
//! `std::time::Instant` around whole categorize calls plus the
//! qcat-obs span profile for the per-phase breakdown. See
//! docs/PERFORMANCE.md for the methodology and the `BENCH_*.json`
//! schema.

use qcat_exec::ResultSet;
use qcat_sql::NormalizedQuery;
use qcat_study::{broaden_query, StudyEnv, StudyScale};
use qcat_workload::WorkloadStatistics;

pub mod report;

/// Schema version stamped into every `BENCH_*.json` report. Version 2
/// added `schema_version` and `git` provenance fields; version 1
/// reports predate the stamp (and parse as before — `bench_report`
/// does not require it).
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// The current `git describe --always --dirty` of the working tree,
/// or `"unknown"` when git is unavailable (hermetic build
/// environments without a repo). Provenance only — never parsed.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A benchmark environment: generated dataset, workload statistics,
/// and a set of broadened queries with their results.
pub struct BenchEnv {
    /// The study environment (relation, log, geography, config).
    pub env: StudyEnv,
    /// Statistics over the full log.
    pub stats: WorkloadStatistics,
    /// `(broadened query, result)` cases spanning a range of result
    /// sizes.
    pub cases: Vec<(NormalizedQuery, ResultSet)>,
}

/// Build the Smoke-scale benchmark environment: deterministic for a
/// given `seed`, capped at `max_cases` oversized result sets.
pub fn bench_env(seed: u64, max_cases: usize) -> BenchEnv {
    bench_env_at(StudyScale::Smoke, seed, max_cases)
}

/// Rows / queries / shard size of the `scale: large` bench tier:
/// paper volume by default, shrinkable through environment variables
/// so CI can smoke the same code path in seconds. Returns
/// `(rows, queries, shard_rows)`.
pub fn large_tier_dims() -> (usize, usize, usize) {
    (
        env_usize("QCAT_LARGE_ROWS", StudyScale::Paper.home_rows()),
        env_usize("QCAT_LARGE_QUERIES", StudyScale::Paper.workload_queries()),
        env_usize("QCAT_LARGE_SHARD_ROWS", 65_536),
    )
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// [`bench_env`] at an explicit [`StudyScale`] (the `scale: large`
/// tier runs `StudyScale::Custom` at paper volume).
pub fn bench_env_at(scale: StudyScale, seed: u64, max_cases: usize) -> BenchEnv {
    let env = StudyEnv::generate(scale, seed);
    let stats = env.stats_for(&env.log);
    let schema = env.relation.schema().clone();
    let mut cases = Vec::new();
    for w in env.log.queries() {
        if cases.len() >= max_cases {
            break;
        }
        let Some(qw) = broaden_query(w, &schema, &env.geography) else {
            continue;
        };
        let Ok(result) = qcat_exec::execute_normalized(&env.relation, &qw) else {
            continue;
        };
        if result.len() > env.config.max_leaf_tuples {
            cases.push((qw, result));
        }
    }
    assert!(!cases.is_empty(), "bench fixture produced no cases");
    BenchEnv { env, stats, cases }
}

/// Mean / median / p95 over a set of durations, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 50th percentile (nearest-rank).
    pub median_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
}

/// Summarize a sample of durations in nanoseconds. Empty samples
/// summarize to zeros.
pub fn summarize(samples_ns: &[u64]) -> Summary {
    if samples_ns.is_empty() {
        return Summary {
            mean_ms: 0.0,
            median_ms: 0.0,
            p95_ms: 0.0,
        };
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_unstable();
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    Summary {
        mean_ms: mean / 1e6,
        median_ms: quantile_ns(&sorted, 0.50) / 1e6,
        p95_ms: quantile_ns(&sorted, 0.95) / 1e6,
    }
}

/// Nearest-rank quantile of an ascending-sorted sample.
fn quantile_ns(sorted: &[u64], q: f64) -> f64 {
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

/// FNV-1a over a row-id list; the determinism sections of bench
/// reports pin that every (layout, access path, thread width)
/// combination hashed identical rows.
pub fn fnv1a_rows(rows: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &r in rows {
        for b in r.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON: finite numbers as-is, everything else as
/// `null` (JSON has no NaN/Infinity).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        // 1..=100 ms in ns.
        let ns: Vec<u64> = (1..=100u64).map(|i| i * 1_000_000).collect();
        let s = summarize(&ns);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.median_ms - 50.0).abs() < 1e-9);
        assert!((s.p95_ms - 95.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(summarize(&[]).mean_ms, 0.0);
    }

    #[test]
    fn escaping_and_numbers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "null");
        assert!(json_num(1.5).starts_with("1.5"));
    }

    #[test]
    fn fixture_produces_oversized_cases() {
        let b = bench_env(1234, 4);
        assert!(!b.cases.is_empty());
        for (_, r) in &b.cases {
            assert!(r.len() > b.env.config.max_leaf_tuples);
        }
        assert!(b.stats.n_queries() > 0);
    }
}
