//! Walking the real workspace: applies the source rules to the right
//! crates/files, the layering rule to every manifest, and the L1/L5
//! allowlist ratchet.

use crate::allowlist::Allowlist;
use crate::diag::Diagnostic;
use crate::manifest::check_layering;
use crate::scan::{lint_source, ScanOptions};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources are scanned for L1/L2 (the library layers
/// the cost model's correctness rests on, plus the observability
/// substrate every other crate calls into). `(crate name,
/// repo-relative source dir)`.
pub const SCANNED_CRATES: &[(&str, &str)] = &[
    ("qcat-core", "crates/core"),
    ("qcat-data", "crates/qcat-data"),
    ("qcat-sql", "crates/qcat-sql"),
    ("qcat-exec", "crates/qcat-exec"),
    ("qcat-obs", "crates/qcat-obs"),
    ("qcat-serve", "crates/qcat-serve"),
];

/// Repo-relative path of the L1/L5 allowlist.
pub const ALLOWLIST_PATH: &str = "lint-allowlist.txt";

/// Run Engine 1 (L1–L4 with the allowlist ratchet) over the
/// workspace rooted at `root`. Returns the surviving diagnostics;
/// an empty vector means the tree is clean.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    // A root with no crates/ would "pass" by scanning zero files;
    // refuse it instead so a mistyped --root is an error, not a
    // silent clean run.
    if !root.join("crates").is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    let mut diags = Vec::new();
    for &(crate_name, rel_dir) in SCANNED_CRATES {
        let src = root.join(rel_dir).join("src");
        for file in rust_files(&src)? {
            let source = fs::read_to_string(&file)?;
            let rel = relative(root, &file);
            let opts = options_for(crate_name, &rel);
            diags.extend(lint_source(&rel, &source, opts));
        }
    }
    diags.extend(lint_library_prints(root)?);
    diags.extend(lint_thread_spawns(root)?);
    diags.extend(lint_lock_discipline(root)?);
    diags.extend(lint_manifests(root)?);
    let allow_path = root.join(ALLOWLIST_PATH);
    if allow_path.exists() {
        let text = fs::read_to_string(&allow_path)?;
        let (allow, mut parse_diags) = Allowlist::parse(&text, ALLOWLIST_PATH);
        parse_diags.extend(allow.apply(ALLOWLIST_PATH, diags));
        diags = parse_diags;
    }
    diags.sort_by(|a, b| (a.file.clone(), a.line).cmp(&(b.file.clone(), b.line)));
    Ok(diags)
}

/// Rule selection for one file: L1 everywhere; the float-equality
/// half of L2 only in cost/order/rank/partition code; L4 only in
/// `qcat-core`.
fn options_for(crate_name: &str, rel_path: &str) -> ScanOptions {
    let filename = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let sensitive = ["cost", "order", "rank", "partition"]
        .iter()
        .any(|k| filename_mentions(filename, k) || rel_path.contains("/partition/"));
    ScanOptions {
        check_panics: true,
        check_float_cmp: true,
        float_eq_sensitive: sensitive,
        check_docs: crate_name == "qcat-core",
        check_prints: false, // L5 runs workspace-wide; see below
        check_spawns: false, // L6 too; see lint_thread_spawns
        check_locks: false,  // L7 too; see lint_lock_discipline
    }
}

/// Does `file` mention `key` starting at a word boundary? Plain
/// `contains` would make `recorder.rs` ordering-sensitive (it
/// contains "order" mid-word); `sibling_order.rs` still matches.
fn filename_mentions(file: &str, key: &str) -> bool {
    let bytes = file.as_bytes();
    let mut from = 0;
    while let Some(p) = file[from..].find(key) {
        let pos = from + p;
        if pos == 0 || !bytes[pos - 1].is_ascii_alphabetic() {
            return true;
        }
        from = pos + 1;
    }
    false
}

/// L5 over every library source in the workspace: all of `crates/*`
/// plus the facade's `src/`. Exempt: binary entry points (`src/bin/`,
/// `main.rs`), which own stdout/stderr, and `qcat-obs` itself, whose
/// exporters are the one sanctioned place console output is produced.
fn lint_library_prints(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let opts = ScanOptions {
        check_prints: true,
        ..ScanOptions::default()
    };
    let mut diags = Vec::new();
    let crates_dir = root.join("crates");
    let mut src_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && !p.ends_with("qcat-obs"))
        .map(|p| p.join("src"))
        .collect();
    src_dirs.push(root.join("src"));
    src_dirs.sort();
    for src in src_dirs {
        for file in rust_files(&src)? {
            let rel = relative(root, &file);
            if rel.contains("/bin/") || rel.ends_with("/main.rs") {
                continue;
            }
            let source = fs::read_to_string(&file)?;
            diags.extend(lint_source(&rel, &source, opts));
        }
    }
    Ok(diags)
}

/// L6 over every source in the workspace: all of `crates/*` plus the
/// facade's `src/`. Unlike L5, binaries are NOT exempt — a binary
/// that spawns its own threads bypasses `QCAT_THREADS` sizing and
/// recorder propagation just as thoroughly as a library would. The
/// single exemption is `crates/qcat-pool`, the sanctioned home of the
/// raw primitives.
fn lint_thread_spawns(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let opts = ScanOptions {
        check_spawns: true,
        ..ScanOptions::default()
    };
    let mut diags = Vec::new();
    let crates_dir = root.join("crates");
    let mut src_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && !p.ends_with("qcat-pool"))
        .map(|p| p.join("src"))
        .collect();
    src_dirs.push(root.join("src"));
    src_dirs.sort();
    for src in src_dirs {
        for file in rust_files(&src)? {
            let source = fs::read_to_string(&file)?;
            diags.extend(lint_source(&relative(root, &file), &source, opts));
        }
    }
    Ok(diags)
}

/// L7 over every source in the workspace: all of `crates/*` plus the
/// facade's `src/`, binaries included. No crate is exempt — poison
/// recovery is expected everywhere a mutex is shared, and the
/// sanctioned pattern (`.lock().unwrap_or_else(|e| e.into_inner())`
/// inside a designated helper such as `lock_recover` in qcat-serve or
/// `lock_state` in qcat-obs) does not match this rule's needles, so
/// the helpers themselves lint clean.
fn lint_lock_discipline(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let opts = ScanOptions {
        check_locks: true,
        ..ScanOptions::default()
    };
    let mut diags = Vec::new();
    let crates_dir = root.join("crates");
    let mut src_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .map(|p| p.join("src"))
        .collect();
    src_dirs.push(root.join("src"));
    src_dirs.sort();
    for src in src_dirs {
        for file in rust_files(&src)? {
            let source = fs::read_to_string(&file)?;
            diags.extend(lint_source(&relative(root, &file), &source, opts));
        }
    }
    Ok(diags)
}

/// L3 over every crate manifest in `crates/*`.
fn lint_manifests(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(diags);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let toml = fs::read_to_string(&manifest)?;
        let name = package_name(&toml).unwrap_or_default();
        diags.extend(check_layering(&name, &relative(root, &manifest), &toml));
    }
    Ok(diags)
}

/// The `[package] name` of a manifest.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, with `/` separators, for display.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_file_selection() {
        assert!(options_for("qcat-core", "crates/core/src/cost.rs").float_eq_sensitive);
        assert!(options_for("qcat-core", "crates/core/src/order.rs").float_eq_sensitive);
        assert!(options_for("qcat-core", "crates/core/src/rank.rs").float_eq_sensitive);
        assert!(
            options_for("qcat-core", "crates/core/src/partition/numeric.rs").float_eq_sensitive
        );
        assert!(options_for("qcat-core", "crates/core/src/sibling_order.rs").float_eq_sensitive);
        assert!(!options_for("qcat-core", "crates/core/src/tree.rs").float_eq_sensitive);
        assert!(!options_for("qcat-sql", "crates/qcat-sql/src/parser.rs").float_eq_sensitive);
        // "recorder" contains "order" only mid-word: not ordering code.
        assert!(!options_for("qcat-obs", "crates/qcat-obs/src/recorder.rs").float_eq_sensitive);
    }

    #[test]
    fn docs_only_in_core() {
        assert!(options_for("qcat-core", "crates/core/src/tree.rs").check_docs);
        assert!(!options_for("qcat-sql", "crates/qcat-sql/src/ast.rs").check_docs);
    }

    #[test]
    fn missing_root_is_an_error_not_a_clean_run() {
        let err = lint_workspace(Path::new("/nonexistent-qcat-root"))
            .expect_err("a root with no crates/ must not lint clean");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[package]\nname = \"qcat-data\"\nversion = \"0.1\"\n").as_deref(),
            Some("qcat-data")
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
