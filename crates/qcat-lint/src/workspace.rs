//! Walking the real workspace: applies the source rules to the right
//! crates/files, the layering rule to every manifest, and the
//! cross-file semantic rules (L8–L10) to the whole tree at once.
//!
//! Every source file is read once and lexed once; the per-file work
//! (lexing plus all Engine 1 rules, with the per-file rule selection
//! merged into a single [`ScanOptions`]) fans out across
//! `qcat-pool`, and the token streams then feed the Engine 2 symbol
//! table serially.

use crate::conc;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Lexed};
use crate::manifest::check_layering;
use crate::scan::{lint_lexed, ScanOptions};
use crate::syms::SymbolTable;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources are scanned for L1/L2/L4 (the library layers
/// the cost model's correctness rests on, plus the observability
/// substrate every other crate calls into). `(crate name,
/// repo-relative source dir)`.
pub const SCANNED_CRATES: &[(&str, &str)] = &[
    ("qcat-core", "crates/core"),
    ("qcat-data", "crates/qcat-data"),
    ("qcat-sql", "crates/qcat-sql"),
    ("qcat-exec", "crates/qcat-exec"),
    ("qcat-obs", "crates/qcat-obs"),
    ("qcat-serve", "crates/qcat-serve"),
];

/// How a workspace scan went, for wall-time reporting.
#[derive(Debug, Clone, Copy)]
pub struct ScanStats {
    /// Source files read, lexed, and analyzed.
    pub files: usize,
    /// Pool threads the per-file pass fanned out across.
    pub threads: usize,
}

/// One file's scan job: everything the parallel pass needs.
struct FileJob {
    rel: String,
    pkg: String,
    source: String,
    opts: ScanOptions,
}

/// Run Engines 1 and 2 (L1–L10) over the workspace rooted at `root`.
/// Returns the diagnostics; an empty vector means the tree is clean.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    lint_workspace_with_stats(root).map(|(diags, _)| diags)
}

/// [`lint_workspace`], also reporting scan statistics.
pub fn lint_workspace_with_stats(root: &Path) -> io::Result<(Vec<Diagnostic>, ScanStats)> {
    // A root with no crates/ would "pass" by scanning zero files;
    // refuse it instead so a mistyped --root is an error, not a
    // silent clean run.
    if !root.join("crates").is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }

    // Serial I/O: enumerate and read every source file once.
    let mut jobs = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let manifest = dir.join("Cargo.toml");
        let pkg = if manifest.is_file() {
            package_name(&fs::read_to_string(&manifest)?)
        } else {
            None
        };
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let pkg = pkg.unwrap_or_else(|| dir_name.clone());
        for file in rust_files(&dir.join("src"))? {
            let rel = relative(root, &file);
            jobs.push(FileJob {
                opts: options_for_file(&dir_name, &rel),
                rel,
                pkg: pkg.clone(),
                source: fs::read_to_string(&file)?,
            });
        }
    }
    // The facade crate's own src/ (package `qcat`).
    for file in rust_files(&root.join("src"))? {
        let rel = relative(root, &file);
        jobs.push(FileJob {
            opts: options_for_file("", &rel),
            rel,
            pkg: "qcat".to_string(),
            source: fs::read_to_string(&file)?,
        });
    }

    // Parallel per-file pass: one lex, all Engine 1 rules.
    let pool = qcat_pool::ThreadPool::new(0);
    let per_file: Vec<(Vec<Diagnostic>, Lexed)> = pool.map(&jobs, |_, job| {
        let lexed = lex(&job.source);
        let diags = lint_lexed(&job.rel, &job.source, &lexed, job.opts);
        (diags, lexed)
    });

    // Serial: fold the token streams into the Engine 2 symbol table.
    let mut diags = Vec::new();
    let mut table = SymbolTable::default();
    for (job, (file_diags, lexed)) in jobs.iter().zip(per_file) {
        diags.extend(file_diags);
        table.add_lexed(&job.rel, &job.pkg, lexed.tokens);
    }
    diags.extend(conc::analyze_table(&table));
    diags.extend(lint_manifests(root)?);
    diags.sort_by(|a, b| (a.file.clone(), a.line).cmp(&(b.file.clone(), b.line)));
    let stats = ScanStats {
        files: jobs.len(),
        threads: pool.threads(),
    };
    Ok((diags, stats))
}

/// The union of every Engine 1 rule's file selection, as one merged
/// option set:
///
/// - L1/L2/L4 only in [`SCANNED_CRATES`], via [`options_for`];
/// - L5 everywhere except `qcat-obs` (the sanctioned exporter) and
///   binary entry points (`src/bin/`, `main.rs`), which own
///   stdout/stderr;
/// - L6 everywhere except `qcat-pool`, the one crate sanctioned to
///   create threads (binaries are NOT exempt — an ad-hoc thread in a
///   binary bypasses `QCAT_THREADS` sizing and recorder propagation
///   just as thoroughly);
/// - L7 everywhere, binaries included — poison recovery is expected
///   wherever a mutex is shared, and the sanctioned pattern
///   (`.lock().unwrap_or_else(|e| e.into_inner())` inside a
///   designated helper such as `lock_recover`) does not match the
///   rule's needles.
fn options_for_file(crate_dir: &str, rel_path: &str) -> ScanOptions {
    let scanned = SCANNED_CRATES
        .iter()
        .find(|(_, dir)| {
            rel_path.starts_with(&format!("{dir}/src/"))
        })
        .map(|&(name, _)| name);
    let mut opts = match scanned {
        Some(name) => options_for(name, rel_path),
        None => ScanOptions::default(),
    };
    opts.check_prints = crate_dir != "qcat-obs"
        && !rel_path.contains("/bin/")
        && !rel_path.ends_with("/main.rs");
    opts.check_spawns = crate_dir != "qcat-pool";
    opts.check_locks = true;
    opts
}

/// Rule selection for one [`SCANNED_CRATES`] file: L1 everywhere; the
/// float-equality half of L2 only in cost/order/rank/partition code;
/// L4 only in `qcat-core`.
fn options_for(crate_name: &str, rel_path: &str) -> ScanOptions {
    let filename = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let sensitive = ["cost", "order", "rank", "partition"]
        .iter()
        .any(|k| filename_mentions(filename, k) || rel_path.contains("/partition/"));
    ScanOptions {
        check_panics: true,
        check_float_cmp: true,
        float_eq_sensitive: sensitive,
        check_docs: crate_name == "qcat-core",
        check_prints: false, // merged in by options_for_file
        check_spawns: false,
        check_locks: false,
    }
}

/// Does `file` mention `key` starting at a word boundary? Plain
/// `contains` would make `recorder.rs` ordering-sensitive (it
/// contains "order" mid-word); `sibling_order.rs` still matches.
fn filename_mentions(file: &str, key: &str) -> bool {
    let bytes = file.as_bytes();
    let mut from = 0;
    while let Some(p) = file[from..].find(key) {
        let pos = from + p;
        if pos == 0 || !bytes[pos - 1].is_ascii_alphabetic() {
            return true;
        }
        from = pos + 1;
    }
    false
}

/// L3 over every crate manifest in `crates/*`.
fn lint_manifests(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(diags);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let toml = fs::read_to_string(&manifest)?;
        let name = package_name(&toml).unwrap_or_default();
        diags.extend(check_layering(&name, &relative(root, &manifest), &toml));
    }
    Ok(diags)
}

/// The `[package] name` of a manifest.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, with `/` separators, for display.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_file_selection() {
        assert!(options_for("qcat-core", "crates/core/src/cost.rs").float_eq_sensitive);
        assert!(options_for("qcat-core", "crates/core/src/order.rs").float_eq_sensitive);
        assert!(options_for("qcat-core", "crates/core/src/rank.rs").float_eq_sensitive);
        assert!(
            options_for("qcat-core", "crates/core/src/partition/numeric.rs").float_eq_sensitive
        );
        assert!(options_for("qcat-core", "crates/core/src/sibling_order.rs").float_eq_sensitive);
        assert!(!options_for("qcat-core", "crates/core/src/tree.rs").float_eq_sensitive);
        assert!(!options_for("qcat-sql", "crates/qcat-sql/src/parser.rs").float_eq_sensitive);
        // "recorder" contains "order" only mid-word: not ordering code.
        assert!(!options_for("qcat-obs", "crates/qcat-obs/src/recorder.rs").float_eq_sensitive);
    }

    #[test]
    fn docs_only_in_core() {
        assert!(options_for("qcat-core", "crates/core/src/tree.rs").check_docs);
        assert!(!options_for("qcat-sql", "crates/qcat-sql/src/ast.rs").check_docs);
    }

    #[test]
    fn merged_options_cover_every_engine1_rule() {
        // A scanned library file gets everything.
        let o = options_for_file("core", "crates/core/src/cost.rs");
        assert!(o.check_panics && o.check_float_cmp && o.check_docs);
        assert!(o.check_prints && o.check_spawns && o.check_locks);
        // qcat-obs: prints are its job; everything else still applies.
        let o = options_for_file("qcat-obs", "crates/qcat-obs/src/recorder.rs");
        assert!(!o.check_prints && o.check_spawns && o.check_locks);
        assert!(o.check_panics, "qcat-obs is a scanned crate");
        // qcat-pool: the sanctioned home of raw threads.
        let o = options_for_file("qcat-pool", "crates/qcat-pool/src/lib.rs");
        assert!(o.check_prints && !o.check_spawns && o.check_locks);
        assert!(!o.check_panics, "qcat-pool is not L1-scanned");
        // Binaries own stdout but not threads or locks.
        let o = options_for_file("qcat-lint", "crates/qcat-lint/src/main.rs");
        assert!(!o.check_prints && o.check_spawns && o.check_locks);
        let o = options_for_file("", "src/bin/qcat-bench.rs");
        assert!(!o.check_prints && o.check_spawns && o.check_locks);
    }

    #[test]
    fn missing_root_is_an_error_not_a_clean_run() {
        let err = lint_workspace(Path::new("/nonexistent-qcat-root"))
            .expect_err("a root with no crates/ must not lint clean");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn package_name_parses() {
        assert_eq!(
            package_name("[package]\nname = \"qcat-data\"\nversion = \"0.1\"\n").as_deref(),
            Some("qcat-data")
        );
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }
}
