//! Engine 3: the JSONL trace auditor (rules T1–T5).
//!
//! `qcat-obs` emits one JSON object per line (schema in
//! `docs/OBSERVABILITY.md`). This module re-derives the invariants
//! that schema promises from the raw text, so a captured trace is
//! evidence rather than trust:
//!
//! - **T1** — every line parses as a flat JSON object with the
//!   required keys and types, `kind` is one of
//!   `span_open`/`span_close`/`event`, the optional identity keys
//!   (`trace`, `span`, `parent`) are non-negative integers, and `seq`
//!   strictly increases.
//! - **T2** — per (thread, trace), span opens and closes balance
//!   LIFO: a close names (and carries the span id of) the innermost
//!   open span of its own trace on its thread, recorded depths equal
//!   the thread's open-span count, and every stack is empty at end of
//!   file. Spans of different traces may interleave on one thread —
//!   a worker runs parented spans of the caller's trace — but within
//!   a trace the per-thread discipline is strict.
//! - **T3** — durations are non-negative, equal the close/open
//!   timestamp difference exactly (the recorder computes `dur_ns`
//!   from the same two timestamps it prints), and the direct
//!   children of a span do not collectively outlast it.
//! - **T4** — governance events (`serve.shed`, `serve.degraded`,
//!   `serve.cancel`) are emitted inside an open `serve.query` span on
//!   their thread, so every shed or degraded answer is attributable
//!   to the query that suffered it.
//! - **T5** — the causal tree is closed under parent links: a
//!   nonzero `parent` id names a span previously opened in the same
//!   trace, and no span id is reused within a trace.
//!
//! Lines without the identity keys (pre-trace recordings) default
//! them to 0 and audit exactly as before — trace 0 is "untraced".
//!
//! Timestamps and sequence numbers travel as JSON numbers, parsed to
//! `f64` — exact for integers up to 2^53, i.e. ~104 days of
//! nanoseconds, far beyond any study run.

use crate::diag::{Diagnostic, Rule};
use qcat_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;

/// Nanoseconds of slack T3 grants when comparing children against
/// their parent, absorbing monotonic-clock granularity on coarse
/// platforms. Exact-equality checks get no slack.
const CHILD_SUM_SLACK_NS: f64 = 1_000.0;

/// One open span on a per-(thread, trace) stack.
struct OpenSpan {
    name: String,
    span_id: u64,
    line: usize,
    ts_ns: f64,
    /// Total `dur_ns` of direct children closed so far.
    children_ns: f64,
}

/// Audit a JSONL trace. `origin` is the path reported in diagnostics;
/// `text` is the file's contents. Returns every violation found; an
/// empty vector means the trace is well-formed and balanced.
///
/// Lines that fail T1 are reported and excluded from the structural
/// checks, so one corrupt line yields one diagnostic, not a cascade.
pub fn audit_trace(origin: &str, text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut last_seq: Option<f64> = None;
    // Span stacks keyed by (thread, trace): LIFO holds within a trace
    // on a thread, while traces may interleave on the same thread.
    let mut stacks: BTreeMap<(String, u64), Vec<OpenSpan>> = BTreeMap::new();
    // Open-span count per thread — what the recorder prints as depth.
    let mut depths: BTreeMap<String, usize> = BTreeMap::new();
    // Every span id ever opened per trace, with its line (T5).
    let mut opened: BTreeMap<u64, BTreeMap<u64, usize>> = BTreeMap::new();
    let mut any_line = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        any_line = true;
        let Some(rec) = check_t1(origin, lineno, raw, &mut last_seq, &mut diags) else {
            continue;
        };
        // T5: the parent must already exist within this trace. Opens
        // are registered before their children appear (the recorder
        // allocates `seq` and writes under one lock), so an ordered
        // check is exact, not an approximation.
        if rec.parent != 0
            && opened
                .get(&rec.trace)
                .map_or(true, |ids| !ids.contains_key(&rec.parent))
        {
            diags.push(Diagnostic::at(
                origin,
                lineno,
                Rule::T5ParentExists,
                format!(
                    "{} `{}` claims parent {} but no such span opened in trace {}",
                    rec.kind, rec.name, rec.parent, rec.trace
                ),
            ));
        }
        match rec.kind.as_str() {
            "span_open" => {
                if rec.span != 0 {
                    let ids = opened.entry(rec.trace).or_default();
                    if let Some(first) = ids.get(&rec.span) {
                        diags.push(Diagnostic::at(
                            origin,
                            lineno,
                            Rule::T5ParentExists,
                            format!(
                                "span id {} reused within trace {} (first opened at line {first})",
                                rec.span, rec.trace
                            ),
                        ));
                    } else {
                        ids.insert(rec.span, lineno);
                    }
                }
                let depth = depths.entry(rec.thread.clone()).or_insert(0);
                if rec.depth != *depth {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T2SpanBalance,
                        format!(
                            "span_open `{}` at depth {} but thread `{}` has {} open span(s)",
                            rec.name, rec.depth, rec.thread, depth
                        ),
                    ));
                }
                *depth += 1;
                stacks
                    .entry((rec.thread.clone(), rec.trace))
                    .or_default()
                    .push(OpenSpan {
                        name: rec.name,
                        span_id: rec.span,
                        line: lineno,
                        ts_ns: rec.ts_ns,
                        children_ns: 0.0,
                    });
            }
            "span_close" => {
                let key = (rec.thread.clone(), rec.trace);
                let stack = stacks.entry(key).or_default();
                let Some(open) = stack.pop() else {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T2SpanBalance,
                        format!(
                            "span_close `{}` on thread `{}` with no span open in trace {}",
                            rec.name, rec.thread, rec.trace
                        ),
                    ));
                    continue;
                };
                if open.name != rec.name {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T2SpanBalance,
                        format!(
                            "span_close `{}` does not match innermost open span `{}` (line {})",
                            rec.name, open.name, open.line
                        ),
                    ));
                }
                if rec.span != open.span_id {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T2SpanBalance,
                        format!(
                            "span_close `{}` carries span id {} but the open (line {}) had {}",
                            rec.name, rec.span, open.line, open.span_id
                        ),
                    ));
                }
                let depth = depths.entry(rec.thread.clone()).or_insert(0);
                *depth = depth.saturating_sub(1);
                if rec.depth != *depth {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T2SpanBalance,
                        format!(
                            "span_close `{}` at depth {} but it sits at depth {}",
                            rec.name, rec.depth, depth
                        ),
                    ));
                }
                // dur_ns presence is T1; its arithmetic is T3.
                let dur = rec.dur_ns.unwrap_or(0.0);
                if dur < 0.0 {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T3Durations,
                        format!("span `{}` has negative dur_ns {dur}", rec.name),
                    ));
                }
                let from_ts = rec.ts_ns - open.ts_ns;
                if dur != from_ts {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T3Durations,
                        format!(
                            "span `{}` dur_ns {dur} but close-open timestamps give {from_ts}",
                            rec.name
                        ),
                    ));
                }
                let stack = stacks.entry((rec.thread.clone(), rec.trace)).or_default();
                if let Some(parent) = stack.last_mut() {
                    parent.children_ns += dur;
                }
                if open.children_ns > dur + CHILD_SUM_SLACK_NS {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T3Durations,
                        format!(
                            "span `{}` lasted {dur} ns but its direct children total {} ns",
                            rec.name, open.children_ns
                        ),
                    ));
                }
            }
            _ => {
                // "event": structurally free except for T4 — the
                // governance events must sit inside the serve.query
                // span whose outcome they explain, in any trace open
                // on the event's thread.
                const GOVERNANCE: &[&str] = &["serve.shed", "serve.degraded", "serve.cancel"];
                if GOVERNANCE.contains(&rec.name.as_str())
                    && !stacks
                        .iter()
                        .filter(|((thread, _), _)| *thread == rec.thread)
                        .any(|(_, stack)| stack.iter().any(|s| s.name == "serve.query"))
                {
                    diags.push(Diagnostic::at(
                        origin,
                        lineno,
                        Rule::T4ServeEnclosure,
                        format!(
                            "event `{}` on thread `{}` outside an open `serve.query` span",
                            rec.name, rec.thread
                        ),
                    ));
                }
            }
        }
    }

    if !any_line {
        diags.push(Diagnostic::file_level(
            origin,
            Rule::T1TraceSyntax,
            "trace is empty: an instrumented run must emit at least one line",
        ));
    }
    for ((thread, trace), stack) in &stacks {
        for open in stack {
            diags.push(Diagnostic::at(
                origin,
                open.line,
                Rule::T2SpanBalance,
                format!(
                    "span `{}` on thread `{thread}` (trace {trace}) opened here but never closed",
                    open.name
                ),
            ));
        }
    }
    diags
}

/// The fields of one schema-valid trace line. The identity triple
/// defaults to 0 ("untraced") when absent, keeping pre-trace
/// recordings auditable.
struct TraceRecord {
    kind: String,
    name: String,
    thread: String,
    depth: usize,
    ts_ns: f64,
    dur_ns: Option<f64>,
    trace: u64,
    span: u64,
    parent: u64,
}

/// T1 for one line: parse, check required keys/types and the `seq`
/// order. Returns the decoded record only when every check passes.
fn check_t1(
    origin: &str,
    lineno: usize,
    raw: &str,
    last_seq: &mut Option<f64>,
    diags: &mut Vec<Diagnostic>,
) -> Option<TraceRecord> {
    let t1 = |msg: String| Diagnostic::at(origin, lineno, Rule::T1TraceSyntax, msg);
    let v = match parse(raw) {
        Ok(v) => v,
        Err(e) => {
            diags.push(t1(format!("not valid JSON: {e}")));
            return None;
        }
    };
    if !matches!(v, JsonValue::Obj(_)) {
        diags.push(t1("line is not a JSON object".to_string()));
        return None;
    }
    let num = |key: &str| v.get(key).and_then(JsonValue::as_f64);
    let string = |key: &str| v.get(key).and_then(JsonValue::as_str);

    let mut missing = Vec::new();
    let seq = num("seq");
    let ts_ns = num("ts_ns");
    let thread = string("thread");
    let kind = string("kind");
    let name = string("name");
    let depth = num("depth");
    for (key, ok) in [
        ("seq", seq.is_some()),
        ("ts_ns", ts_ns.is_some()),
        ("thread", thread.is_some()),
        ("kind", kind.is_some()),
        ("name", name.is_some()),
        ("depth", depth.is_some()),
    ] {
        if !ok {
            missing.push(key);
        }
    }
    if !missing.is_empty() {
        diags.push(t1(format!(
            "missing or mistyped key(s): {}",
            missing.join(", ")
        )));
        return None;
    }
    let (seq, ts_ns, depth) = (
        seq.unwrap_or(0.0),
        ts_ns.unwrap_or(0.0),
        depth.unwrap_or(0.0),
    );
    let kind = kind.unwrap_or_default().to_string();
    if !matches!(kind.as_str(), "span_open" | "span_close" | "event") {
        diags.push(t1(format!("unknown kind `{kind}`")));
        return None;
    }
    let dur_ns = num("dur_ns");
    if kind == "span_close" && dur_ns.is_none() {
        diags.push(t1("span_close without numeric dur_ns".to_string()));
        return None;
    }
    if depth < 0.0 || depth.fract() != 0.0 {
        diags.push(t1(format!("depth {depth} is not a non-negative integer")));
        return None;
    }
    // Identity keys are optional (0 = none) but must be well-typed
    // when present.
    let mut ids = [0u64; 3];
    for (slot, key) in ids.iter_mut().zip(["trace", "span", "parent"]) {
        if v.get(key).is_none() {
            continue;
        }
        match num(key) {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => *slot = n as u64,
            _ => {
                diags.push(t1(format!("{key} is not a non-negative integer")));
                return None;
            }
        }
    }
    let [trace, span, parent] = ids;
    if span != 0 && kind == "event" {
        diags.push(t1("event carries a span id (span ids belong to span lines)".to_string()));
        return None;
    }
    if let Some(prev) = *last_seq {
        if seq <= prev {
            diags.push(t1(format!(
                "seq {seq} does not increase (previous was {prev})"
            )));
        }
    }
    *last_seq = Some(seq);
    Some(TraceRecord {
        kind,
        name: name.unwrap_or_default().to_string(),
        thread: thread.unwrap_or_default().to_string(),
        depth: depth as usize,
        ts_ns,
        dur_ns,
        trace,
        span,
        parent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, ts: u64, kind: &str, name: &str, depth: usize, dur: Option<u64>) -> String {
        let dur = dur.map_or(String::new(), |d| format!(",\"dur_ns\":{d}"));
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts},\"thread\":\"main\",\"kind\":\"{kind}\",\"name\":\"{name}\",\"depth\":{depth}{dur},\"fields\":{{}}}}"
        )
    }

    /// A line carrying the full identity triple.
    #[allow(clippy::too_many_arguments)]
    fn idline(
        seq: u64,
        ts: u64,
        thread: &str,
        kind: &str,
        name: &str,
        depth: usize,
        ids: (u64, u64, u64),
        dur: Option<u64>,
    ) -> String {
        let (trace, span, parent) = ids;
        let span = if span != 0 {
            format!(",\"span\":{span}")
        } else {
            String::new()
        };
        let dur = dur.map_or(String::new(), |d| format!(",\"dur_ns\":{d}"));
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts},\"thread\":\"{thread}\",\"kind\":\"{kind}\",\"name\":\"{name}\",\"depth\":{depth},\"trace\":{trace}{span},\"parent\":{parent}{dur},\"fields\":{{}}}}"
        )
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn balanced_trace_is_clean() {
        let text = [
            line(1, 10, "span_open", "outer", 0, None),
            line(2, 20, "span_open", "inner", 1, None),
            line(3, 25, "event", "tick", 2, None),
            line(4, 30, "span_close", "inner", 1, Some(10)),
            line(5, 50, "span_close", "outer", 0, Some(40)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]);
    }

    #[test]
    fn real_recorder_output_is_clean() {
        let rec = qcat_obs::Recorder::buffered();
        qcat_obs::with_recorder(&rec, || {
            let _a = qcat_obs::span!("a", n = 1i64);
            {
                let _b = qcat_obs::span!("b");
                qcat_obs::event!("e", msg = "hi");
            }
            let _c = qcat_obs::span!("c");
        });
        let text = rec.drain_jsonl();
        assert!(text.lines().count() >= 7, "{text}");
        assert_eq!(audit_trace("live.jsonl", &text), vec![]);
    }

    #[test]
    fn real_traced_recorder_output_is_clean() {
        let rec = qcat_obs::Recorder::buffered();
        qcat_obs::with_recorder(&rec, || {
            let scope = qcat_obs::TraceScope::start();
            assert_ne!(scope.id(), 0);
            let _a = qcat_obs::span!("serve.query");
            let _b = qcat_obs::span!("serve.fill");
            qcat_obs::event!("serve.degraded", reason = "shed");
        });
        let text = rec.drain_jsonl();
        assert_eq!(audit_trace("live.jsonl", &text), vec![], "{text}");
    }

    #[test]
    fn t1_rejects_garbage_missing_keys_and_bad_seq() {
        let text = [
            "not json at all".to_string(),
            "{\"seq\":1,\"kind\":\"event\"}".to_string(), // missing keys
            line(5, 10, "event", "a", 0, None),
            line(5, 11, "event", "b", 0, None), // seq repeats
            line(6, 12, "teleport", "c", 0, None), // unknown kind
            line(7, 13, "span_close", "d", 0, None), // close without dur
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        // The dur-less close is rejected at T1 and never reaches the
        // stack, so the trailing close does not also fire T2.
        assert_eq!(ids(&diags), vec!["T1", "T1", "T1", "T1", "T1"]);
    }

    #[test]
    fn t1_rejects_mistyped_identity_keys() {
        let bad_trace =
            "{\"seq\":1,\"ts_ns\":5,\"thread\":\"main\",\"kind\":\"event\",\"name\":\"a\",\"depth\":0,\"trace\":-3,\"fields\":{}}";
        let bad_span =
            "{\"seq\":2,\"ts_ns\":6,\"thread\":\"main\",\"kind\":\"event\",\"name\":\"a\",\"depth\":0,\"span\":1.5,\"fields\":{}}";
        let event_with_span =
            "{\"seq\":3,\"ts_ns\":7,\"thread\":\"main\",\"kind\":\"event\",\"name\":\"a\",\"depth\":0,\"span\":4,\"fields\":{}}";
        let text = [bad_trace, bad_span, event_with_span].join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T1", "T1", "T1"], "{diags:?}");
    }

    #[test]
    fn t2_catches_unbalanced_and_misnamed_closes() {
        let text = [
            line(1, 10, "span_open", "outer", 0, None),
            line(2, 20, "span_open", "inner", 1, None),
            line(3, 30, "span_close", "outer", 1, Some(10)), // wrong name
            line(4, 40, "span_close", "outer", 0, Some(30)),
            line(5, 50, "span_close", "ghost", 0, Some(1)), // nothing open
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert!(ids(&diags).contains(&"T2"), "{diags:?}");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("does not match innermost")),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.message.contains("no span open")),
            "{diags:?}"
        );
    }

    #[test]
    fn t2_reports_never_closed_spans() {
        let text = line(1, 10, "span_open", "leak", 0, None);
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T2"]);
        assert!(diags[0].message.contains("never closed"), "{diags:?}");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn t2_wrong_depth_is_flagged() {
        let text = [
            line(1, 10, "span_open", "outer", 0, None),
            line(2, 20, "span_open", "inner", 5, None), // depth lies
            line(3, 30, "span_close", "inner", 1, Some(10)),
            line(4, 40, "span_close", "outer", 0, Some(30)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T2"]);
        assert!(diags[0].message.contains("depth 5"), "{diags:?}");
    }

    #[test]
    fn t2_close_must_carry_the_open_span_id() {
        let text = [
            idline(1, 10, "main", "span_open", "a", 0, (7, 1, 0), None),
            idline(2, 30, "main", "span_close", "a", 0, (7, 2, 0), Some(20)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        // The close's span id 2 also never opened (T5) and mismatches
        // the innermost open (T2).
        assert!(ids(&diags).contains(&"T2"), "{diags:?}");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("carries span id 2")),
            "{diags:?}"
        );
    }

    #[test]
    fn t2_traces_interleave_on_one_thread_but_stay_lifo_within() {
        // An untraced outer span (trace 0) around a traced inner pair:
        // legal, because LIFO is per (thread, trace). The traced span
        // is a root of its own trace (parent 0) — parenthood never
        // crosses a trace boundary.
        let text = [
            idline(1, 10, "main", "span_open", "outer", 0, (0, 1, 0), None),
            idline(2, 20, "main", "span_open", "q", 1, (9, 2, 0), None),
            idline(3, 30, "main", "span_close", "q", 1, (9, 2, 0), Some(10)),
            idline(4, 40, "main", "span_close", "outer", 0, (0, 1, 0), Some(30)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]);

        // But closing across traces is not: trace 9's close cannot
        // consume trace 0's open.
        let text = [
            idline(1, 10, "main", "span_open", "outer", 0, (0, 1, 0), None),
            idline(2, 30, "main", "span_close", "outer", 0, (9, 1, 0), Some(20)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert!(
            diags
                .iter()
                .any(|d| d.rule.id() == "T2" && d.message.contains("no span open in trace 9")),
            "{diags:?}"
        );
    }

    #[test]
    fn t3_checks_duration_arithmetic_and_children() {
        let text = [
            line(1, 10, "span_open", "outer", 0, None),
            line(2, 20, "span_open", "kid", 1, None),
            // Claims 90ns but timestamps say 80.
            line(3, 100, "span_close", "kid", 1, Some(90)),
            // Parent lasted 95ns yet its child claims 90 + slack < ok;
            // add a second child to push the sum over parent + slack.
            line(4, 101, "span_open", "kid2", 1, None),
            line(5, 104, "span_close", "kid2", 1, Some(3)),
            line(6, 105, "span_close", "outer", 0, Some(95)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T3"]);
        assert!(diags[0].message.contains("timestamps give 80"), "{diags:?}");

        // Children exceeding the parent beyond slack: shrink the
        // parent to 1ns while a child claims (a consistent) 2000ns.
        let text = [
            line(1, 0, "span_open", "outer", 0, None),
            line(2, 1, "span_open", "kid", 1, None),
            line(3, 2001, "span_close", "kid", 1, Some(2000)),
            line(4, 2002, "span_close", "outer", 0, Some(2002)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]); // within parent

        let text = [
            line(1, 0, "span_open", "outer", 0, None),
            line(2, 1, "span_open", "kid", 1, None),
            line(3, 5001, "span_close", "kid", 1, Some(5000)),
            // Parent's own claim is consistent with its timestamps but
            // shorter than the child's total: impossible nesting.
            "{\"seq\":4,\"ts_ns\":2,\"thread\":\"main\",\"kind\":\"span_close\",\"name\":\"outer\",\"depth\":0,\"dur_ns\":2,\"fields\":{}}".to_string(),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert!(
            diags
                .iter()
                .any(|d| d.rule.id() == "T3" && d.message.contains("direct children total")),
            "{diags:?}"
        );
    }

    #[test]
    fn t4_governance_events_need_an_open_serve_query_span() {
        // Inside serve.query (even nested deeper): clean.
        let text = [
            line(1, 10, "span_open", "serve.query", 0, None),
            line(2, 20, "event", "serve.shed", 1, None),
            line(3, 25, "span_open", "serve.categorize", 1, None),
            line(4, 30, "event", "serve.degraded", 2, None),
            line(5, 40, "span_close", "serve.categorize", 1, Some(15)),
            line(6, 50, "span_close", "serve.query", 0, Some(40)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]);

        // Outside any span, or inside an unrelated span: flagged.
        let text = [
            line(1, 10, "event", "serve.shed", 0, None),
            line(2, 20, "span_open", "other", 0, None),
            line(3, 30, "event", "serve.cancel", 1, None),
            line(4, 40, "span_close", "other", 0, Some(20)),
            line(5, 50, "event", "cache.hit", 0, None), // non-governance: free
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T4", "T4"]);
        assert!(
            diags[0].message.contains("outside an open `serve.query` span"),
            "{diags:?}"
        );
    }

    #[test]
    fn t4_is_per_thread() {
        // serve.query open on `main` does not license a governance
        // event on another thread.
        let a = |seq: u64, ts: u64, kind: &str, name: &str, depth: usize, dur: Option<u64>| {
            line(seq, ts, kind, name, depth, dur).replace("\"main\"", "\"worker-1\"")
        };
        let text = [
            line(1, 10, "span_open", "serve.query", 0, None),
            a(2, 20, "event", "serve.degraded", 0, None),
            line(3, 30, "span_close", "serve.query", 0, Some(20)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T4"]);
        assert!(diags[0].message.contains("worker-1"), "{diags:?}");
    }

    #[test]
    fn t5_parents_must_exist_within_the_trace() {
        // A worker span parented to the caller's span in the same
        // trace, across threads: clean.
        let text = [
            idline(1, 10, "main", "span_open", "serve.query", 0, (3, 1, 0), None),
            idline(2, 20, "qcat-pool-0", "span_open", "item", 0, (3, 2, 1), None),
            idline(3, 25, "qcat-pool-0", "event", "tick", 1, (3, 0, 2), None),
            idline(4, 30, "qcat-pool-0", "span_close", "item", 0, (3, 2, 1), Some(10)),
            idline(5, 50, "main", "span_close", "serve.query", 0, (3, 1, 0), Some(40)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]);

        // A parent id from a *different* trace does not count, and an
        // unknown parent is flagged on events too.
        let text = [
            idline(1, 10, "main", "span_open", "a", 0, (3, 1, 0), None),
            idline(2, 20, "main", "span_open", "b", 1, (4, 2, 1), None), // parent 1 is trace 3
            idline(3, 25, "main", "event", "e", 2, (4, 0, 99), None),    // parent 99 never opened
            idline(4, 30, "main", "span_close", "b", 1, (4, 2, 1), Some(10)),
            idline(5, 40, "main", "span_close", "a", 0, (3, 1, 0), Some(30)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T5", "T5", "T5"], "{diags:?}");
        assert!(
            diags[0].message.contains("no such span opened in trace 4"),
            "{diags:?}"
        );
    }

    #[test]
    fn t5_span_ids_are_not_reused_within_a_trace() {
        let text = [
            idline(1, 10, "main", "span_open", "a", 0, (3, 1, 0), None),
            idline(2, 20, "main", "span_open", "b", 1, (3, 1, 1), None), // id 1 again
            idline(3, 30, "main", "span_close", "b", 1, (3, 1, 1), Some(10)),
            idline(4, 40, "main", "span_close", "a", 0, (3, 1, 0), Some(30)),
        ]
        .join("\n");
        let diags = audit_trace("t.jsonl", &text);
        assert_eq!(ids(&diags), vec!["T5"], "{diags:?}");
        assert!(diags[0].message.contains("reused within trace 3"), "{diags:?}");
    }

    #[test]
    fn empty_trace_is_a_finding() {
        let diags = audit_trace("t.jsonl", "\n  \n");
        assert_eq!(ids(&diags), vec!["T1"]);
        assert!(diags[0].message.contains("empty"), "{diags:?}");
    }

    #[test]
    fn threads_have_independent_stacks() {
        let a = |seq: u64, ts: u64, kind: &str, name: &str, depth: usize, dur: Option<u64>| {
            line(seq, ts, kind, name, depth, dur).replace("\"main\"", "\"worker-1\"")
        };
        let text = [
            line(1, 10, "span_open", "m", 0, None),
            a(2, 11, "span_open", "w", 0, None),
            a(3, 20, "span_close", "w", 0, Some(9)),
            line(4, 30, "span_close", "m", 0, Some(20)),
        ]
        .join("\n");
        assert_eq!(audit_trace("t.jsonl", &text), vec![]);
    }
}
