//! Engine 1: per-file rules L1, L2, L4, L5, L6, L7 over the lexer's
//! token stream.
//!
//! The preprocessing pass reconstructs each line from the real
//! tokens ([`crate::lexer`]): comments disappear, and string/char
//! literal contents are blanked (their tokens carry empty text), so
//! the rule passes work on clean text where substring searches
//! cannot be fooled by `"panic!"` inside a string, an `unwrap()` in
//! a comment, a raw string `r#"…"#`, or a nested `/* /* */ */`. A
//! second pass masks `#[cfg(test)]` / `#[test]` regions by brace
//! matching.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Lexed};

/// Which rule families to run on a file. The workspace driver sets
/// these per crate/file; tests set them directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// L1: flag `unwrap()`/`expect()`/`panic!` outside test code.
    pub check_panics: bool,
    /// L2: flag `partial_cmp().unwrap()` anywhere in the file and
    /// float `==`/`!=` (this half only fires when
    /// [`ScanOptions::float_eq_sensitive`] is also set).
    pub check_float_cmp: bool,
    /// L2 (second half): the file is cost/order/rank/partition code,
    /// where float `==`/`!=` is banned outright.
    pub float_eq_sensitive: bool,
    /// L4: flag undocumented `pub` items.
    pub check_docs: bool,
    /// L5: flag raw console output (`println!`, `eprintln!`,
    /// `print!`, `eprint!`, `dbg!`) outside test code.
    pub check_prints: bool,
    /// L6: flag raw `std::thread` spawning (`thread::spawn`,
    /// `thread::scope`, `thread::Builder`) outside test code.
    pub check_spawns: bool,
    /// L7: flag `.lock().unwrap()` / `.lock().expect(` outside test
    /// code — poison must be recovered, not re-panicked.
    pub check_locks: bool,
}

/// Source text after comment/literal blanking, with per-line facts
/// the rule passes need.
#[derive(Debug)]
pub struct CleanSource {
    /// The code with comments and literal contents replaced by
    /// spaces; same line count and column positions as the input.
    pub lines: Vec<String>,
    /// Line is (part of) a doc comment: `///`, `//!`, `/** */`.
    pub doc_line: Vec<bool>,
    /// Line lies inside a `#[cfg(test)]` item or `#[test]` function.
    pub test_line: Vec<bool>,
    /// Line is (part of) an outer attribute `#[...]`.
    pub attr_line: Vec<bool>,
}

impl CleanSource {
    /// Preprocess `source`.
    pub fn parse(source: &str) -> CleanSource {
        Self::from_lexed(source, &lex(source))
    }

    /// Preprocess from an existing lex of the same `source` (the
    /// workspace driver lexes once and shares the stream with the
    /// Engine 2 symbol table).
    pub fn from_lexed(source: &str, lexed: &Lexed) -> CleanSource {
        // Rebuild each line as spaces, then place every token's text
        // back at its original byte column. Comments produce no
        // tokens and literal tokens carry empty text, so both end up
        // blank while code keeps its exact positions.
        let mut lines: Vec<Vec<u8>> = source
            .split('\n')
            .map(|l| vec![b' '; l.len()])
            .collect();
        for t in &lexed.tokens {
            if t.text.is_empty() {
                continue;
            }
            let Some(line) = lines.get_mut(t.line - 1) else {
                continue;
            };
            for (k, &byte) in t.text.as_bytes().iter().enumerate() {
                if let Some(slot) = line.get_mut(t.col + k) {
                    *slot = byte;
                }
            }
        }
        let lines: Vec<String> = lines
            .into_iter()
            .map(|v| String::from_utf8_lossy(&v).into_owned())
            .collect();
        let doc_line = resize(lexed.doc_line.clone(), lines.len());
        let attr_line = mark_attr_lines(&lines);
        let test_line = mark_test_regions(&lines);
        CleanSource {
            lines,
            doc_line,
            test_line,
            attr_line,
        }
    }
}

fn resize(mut v: Vec<bool>, n: usize) -> Vec<bool> {
    v.resize(n, false);
    v
}

/// Mark lines belonging to outer attributes `#[...]`, including
/// multi-line attributes, by bracket counting.
fn mark_attr_lines(lines: &[String]) -> Vec<bool> {
    let mut attr = vec![false; lines.len()];
    let mut depth = 0i32;
    for (idx, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if depth > 0 {
            attr[idx] = true;
            depth += bracket_delta(line);
            continue;
        }
        if t.starts_with("#[") || t.starts_with("#![") {
            attr[idx] = true;
            depth = bracket_delta(line);
        }
    }
    attr
}

fn bracket_delta(line: &str) -> i32 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '[' => d += 1,
            ']' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Mark lines inside `#[cfg(test)]`-gated items and `#[test]`
/// functions by brace matching from the attribute.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut test = vec![false; lines.len()];
    let mut idx = 0;
    while idx < lines.len() {
        let t = lines[idx].trim_start();
        let is_test_attr = t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test")
            || t.starts_with("#[test]");
        if !is_test_attr {
            idx += 1;
            continue;
        }
        // Mark from the attribute through the end of the item it
        // gates: the first `{` onward until braces balance, or a `;`
        // before any `{` (e.g. `mod tests;`).
        let start = idx;
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'item: for (j, line) in lines.iter().enumerate().skip(start) {
            for c in line.chars() {
                match c {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = j;
                            break 'item;
                        }
                    }
                    ';' if !opened => {
                        end = j;
                        break 'item;
                    }
                    _ => {}
                }
            }
        }
        for flag in test.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
        idx = end + 1;
    }
    test
}

/// Run the enabled rule passes over one file.
pub fn lint_source(path: &str, source: &str, opts: ScanOptions) -> Vec<Diagnostic> {
    lint_lexed(path, source, &lex(source), opts)
}

/// [`lint_source`] over an existing lex of the same `source`.
pub fn lint_lexed(path: &str, source: &str, lexed: &Lexed, opts: ScanOptions) -> Vec<Diagnostic> {
    let clean = CleanSource::from_lexed(source, lexed);
    let mut diags = Vec::new();
    if opts.check_panics {
        lint_panics(path, &clean, &mut diags);
    }
    if opts.check_float_cmp {
        lint_partial_cmp_unwrap(path, &clean, &mut diags);
        if opts.float_eq_sensitive {
            lint_float_eq(path, &clean, &mut diags);
        }
    }
    if opts.check_docs {
        lint_missing_docs(path, &clean, &mut diags);
    }
    if opts.check_prints {
        lint_prints(path, &clean, &mut diags);
    }
    if opts.check_spawns {
        lint_spawns(path, &clean, &mut diags);
    }
    if opts.check_locks {
        lint_lock_unwraps(path, &clean, &mut diags);
    }
    diags.sort_by(|a, b| (a.line, a.rule.id()).cmp(&(b.line, b.rule.id())));
    diags
}

/// L1: panic-capable calls in non-test code.
fn lint_panics(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] {
            continue;
        }
        for (needle, what) in [
            (".unwrap()", "call to unwrap()"),
            (".expect(", "call to expect()"),
            ("panic!", "panic! invocation"),
        ] {
            for pos in find_all(line, needle) {
                // `panic!` must not be the tail of a longer macro name.
                if needle == "panic!" && pos > 0 {
                    let prev = line.as_bytes()[pos - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' {
                        continue;
                    }
                }
                diags.push(Diagnostic::at(path, idx + 1, Rule::L1Panic, what));
            }
        }
    }
}

/// L5: raw console writes in non-test library code. Progress and
/// diagnostics belong in `qcat-obs` events (recorder-gated, silent by
/// default) or on a caller-supplied sink; a library that prints
/// unconditionally corrupts `QCAT_TRACE=json` streams and cannot be
/// silenced. The macro name must start at an identifier boundary so
/// `eprintln!` is one finding, not also a `println!` finding.
fn lint_prints(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "dbg!"];
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] {
            continue;
        }
        for needle in NEEDLES {
            for pos in find_all(line, needle) {
                if pos > 0 {
                    let prev = line.as_bytes()[pos - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' {
                        continue; // tail of a longer name, e.g. e|println!
                    }
                }
                diags.push(Diagnostic::at(
                    path,
                    idx + 1,
                    Rule::L5RawPrint,
                    format!(
                        "raw `{needle}` in library code; emit a qcat-obs \
                         event or take a caller-supplied sink"
                    ),
                ));
            }
        }
    }
}

/// L6: raw `std::thread` spawning in non-test code. All parallelism
/// goes through `qcat_pool::ThreadPool`: ad-hoc threads ignore
/// `QCAT_THREADS`/`CategorizeConfig::threads` sizing, drop the
/// qcat-obs recorder (their metrics vanish), and reintroduce
/// scheduling-dependent result order. The pool crate itself is the
/// one place these primitives are legal; the workspace driver exempts
/// it. Matched at an identifier boundary so a method named
/// `my_thread::spawn`-alike cannot slip through while `spawner` etc.
/// stay clean.
fn lint_spawns(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] {
            continue;
        }
        for needle in NEEDLES {
            for pos in find_all(line, needle) {
                if pos > 0 {
                    let prev = line.as_bytes()[pos - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' {
                        continue; // tail of a longer path segment
                    }
                }
                diags.push(Diagnostic::at(
                    path,
                    idx + 1,
                    Rule::L6RawSpawn,
                    format!("raw `{needle}` outside qcat-pool; use qcat_pool::ThreadPool"),
                ));
            }
        }
    }
}

/// L7: `.lock().unwrap()` / `.lock().expect(` in non-test code. Once
/// any thread panics while holding a mutex, the mutex is poisoned and
/// every subsequent `.lock().unwrap()` panics too — a single injected
/// fault cascades into a permanently wedged server. Lock through a
/// designated poison-recovery helper instead
/// (`.lock().unwrap_or_else(|e| e.into_inner())`, see
/// `lock_recover` in qcat-serve), which this rule's needles
/// deliberately do not match.
fn lint_lock_unwraps(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: &[&str] = &[".lock().unwrap()", ".lock().expect("];
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] {
            continue;
        }
        for needle in NEEDLES {
            for _pos in find_all(line, needle) {
                diags.push(Diagnostic::at(
                    path,
                    idx + 1,
                    Rule::L7LockUnwrap,
                    format!(
                        "`{needle}…` re-panics on a poisoned mutex; recover with \
                         `.lock().unwrap_or_else(|e| e.into_inner())` via a \
                         designated helper"
                    ),
                ));
            }
        }
    }
}

/// L2 (first half): `.partial_cmp(..).unwrap()` — NaN panics at a
/// distance. Matched across line breaks.
fn lint_partial_cmp_unwrap(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    // Concatenate with newlines so offsets map back to lines.
    let text = clean.lines.join("\n");
    let line_of = |byte: usize| text[..byte].bytes().filter(|&c| c == b'\n').count();
    for pos in find_all(&text, ".partial_cmp") {
        if clean.test_line[line_of(pos)] {
            continue;
        }
        let b = text.as_bytes();
        let mut j = pos + ".partial_cmp".len();
        // Skip the argument list.
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b'(') {
            continue;
        }
        let mut depth = 0i32;
        while j < b.len() {
            match b[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if text[j..].starts_with(".unwrap()") || text[j..].starts_with(".expect(") {
            diags.push(Diagnostic::at(
                path,
                line_of(pos) + 1,
                Rule::L2FloatCmp,
                "partial_cmp().unwrap() panics on NaN; use f64::total_cmp",
            ));
        }
    }
}

/// L2 (second half): `==` / `!=` where either operand is visibly a
/// float — a float literal, an `f64::` constant, an `f32`/`f64`-
/// suffixed number, or an identifier annotated `: f64`/`: f32`
/// somewhere in the same file (parameters, lets, fields).
fn lint_float_eq(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    let float_ids = float_annotated_idents(clean);
    let floaty = |tok: &str| {
        is_float_token(tok) || {
            let last = tok.rsplit(|c| c == '.' || c == ':').next().unwrap_or(tok);
            float_ids.contains(last)
        }
    };
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] {
            continue;
        }
        let b = line.as_bytes();
        for op in ["==", "!="] {
            for pos in find_all(line, op) {
                // Exclude `<=`, `>=`, `=>`, `===`-ish neighbors.
                if pos > 0 && matches!(b[pos - 1], b'=' | b'!' | b'<' | b'>') {
                    continue;
                }
                if b.get(pos + 2) == Some(&b'=') {
                    continue;
                }
                let before = trailing_token(&line[..pos]);
                let after = leading_token(&line[pos + 2..]);
                if floaty(before) || floaty(after) {
                    diags.push(Diagnostic::at(
                        path,
                        idx + 1,
                        Rule::L2FloatCmp,
                        format!(
                            "float `{op}` comparison ({}) in cost/order/rank/partition code; \
                             use qcat_core::float::{{same, approx_eq}}",
                            if floaty(before) { before } else { after }
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers annotated `: f64` / `: f32` anywhere in the file —
/// function parameters, `let` bindings, struct fields. Purely
/// lexical, so a float that arrives via iteration or destructuring is
/// invisible; the rule errs toward missing those rather than
/// flagging integer comparisons.
fn float_annotated_idents(clean: &CleanSource) -> std::collections::HashSet<String> {
    let mut ids = std::collections::HashSet::new();
    for line in &clean.lines {
        for marker in [": f64", ": f32"] {
            for pos in find_all(line, marker) {
                let next = line.as_bytes().get(pos + marker.len());
                if matches!(next, Some(c) if c.is_ascii_alphanumeric() || *c == b'_') {
                    continue; // e.g. `: f64x4`
                }
                let ident = trailing_token(&line[..pos]);
                if !ident.is_empty()
                    && ident
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !ident.starts_with(|c: char| c.is_ascii_digit())
                {
                    ids.insert(ident.to_string());
                }
            }
        }
    }
    ids
}

/// The maximal operand-ish token ending `s` (after trailing spaces).
fn trailing_token(s: &str) -> &str {
    let s = s.trim_end();
    let start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':')))
        .map(|p| p + 1)
        .unwrap_or(0);
    &s[start..]
}

/// The maximal operand-ish token starting `s` (after leading spaces),
/// allowing a unary minus.
fn leading_token(s: &str) -> &str {
    let s = s.trim_start();
    let body = s.strip_prefix('-').unwrap_or(s);
    let end = body
        .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':')))
        .unwrap_or(body.len());
    let taken = s.len() - body.len() + end;
    &s[..taken]
}

/// True when `tok` is visibly a float expression: a float literal
/// (`0.0`, `1.`, `1e9`, `2f64`), an `f64::`/`f32::` path, or a
/// `.fract()`-style tail ending in a float literal.
fn is_float_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    // The literal may be the last path/field segment: `x.y` splits as
    // idents, but `bounds[idx]` was already cut at `]`. Examine the
    // final segment after any `::`.
    let last = tok.rsplit("::").next().unwrap_or(tok);
    float_literal(last)
}

/// Does `s` parse as a Rust float literal?
fn float_literal(s: &str) -> bool {
    let (s, suffixed) = match s.strip_suffix("f64").or_else(|| s.strip_suffix("f32")) {
        Some(body) => (body, true),
        None => (s, false),
    };
    let b = s.as_bytes();
    if b.is_empty() || !b[0].is_ascii_digit() {
        return false;
    }
    let mut i = 0;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i == b.len() {
        // Pure digits: only floaty with an explicit f32/f64 suffix.
        return suffixed;
    }
    let mut has_point_or_exp = false;
    if b[i] == b'.' {
        has_point_or_exp = true;
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        has_point_or_exp = true;
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        if i == b.len() || !b[i].is_ascii_digit() {
            return false;
        }
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
    }
    has_point_or_exp && i == b.len()
}

/// L4: `pub` items need a doc comment (or `#[doc = ..]`) above them.
fn lint_missing_docs(path: &str, clean: &CleanSource, diags: &mut Vec<Diagnostic>) {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe",
        "async", "extern",
    ];
    for (idx, line) in clean.lines.iter().enumerate() {
        if clean.test_line[idx] || clean.attr_line[idx] {
            continue;
        }
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let second = rest.split_whitespace().next().unwrap_or("");
        if !ITEM_KEYWORDS.contains(&second) {
            continue; // pub use, pub(crate), pub fields, …
        }
        if second == "mod" && t.trim_end().ends_with(';') {
            continue; // out-of-line module: docs are `//!` in its file
        }
        // Walk up over the item's attributes to the would-be docs.
        let mut above = idx;
        while above > 0 && clean.attr_line[above - 1] {
            above -= 1;
        }
        let documented = above > 0
            && (clean.doc_line[above - 1]
                || clean.lines[above - 1].trim_start().starts_with("#[doc"));
        // An attribute line may itself be `#[doc = "…"]`.
        let attr_doc = (above..idx)
            .any(|a| clean.lines[a].trim_start().starts_with("#[doc"));
        if !documented && !attr_doc {
            let name = rest
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .filter(|w| !w.is_empty())
                .find(|w| !ITEM_KEYWORDS.contains(w))
                .unwrap_or("<unnamed>");
            diags.push(Diagnostic::at(
                path,
                idx + 1,
                Rule::L4MissingDocs,
                format!("public item `{name}` lacks a doc comment"),
            ));
        }
    }
}

/// All byte offsets where `needle` occurs in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str, opts: ScanOptions) -> Vec<(usize, &'static str)> {
        lint_source("t.rs", src, opts)
            .into_iter()
            .map(|d| (d.line, d.rule.id()))
            .collect()
    }

    const ALL: ScanOptions = ScanOptions {
        check_panics: true,
        check_float_cmp: true,
        float_eq_sensitive: true,
        check_docs: false,
        check_prints: false,
        check_spawns: false,
        check_locks: false,
    };

    #[test]
    fn l1_flags_unwrap_expect_panic() {
        let src = "fn f() {\n    let x = y.unwrap();\n    z.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        assert_eq!(rules(src, ALL), vec![(2, "L1"), (3, "L1"), (4, "L1")]);
    }

    #[test]
    fn l1_ignores_strings_comments_and_tests() {
        let src = concat!(
            "fn f() {\n",
            "    // this .unwrap() is a comment\n",
            "    let s = \"panic! .unwrap()\";\n",
            "    let c = '\"'; let u = s.trim(); // ' tricky\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { x.unwrap(); panic!(); }\n",
            "}\n",
        );
        assert_eq!(rules(src, ALL), vec![]);
    }

    #[test]
    fn l1_ignores_unwrap_variants_and_doc_examples() {
        let src = concat!(
            "/// call .unwrap() like this: `x.unwrap()`\n",
            "fn f() {\n",
            "    let a = lock.read().unwrap_or_else(|e| e.into_inner());\n",
            "    let b = x.unwrap_or(0); let c = y.unwrap_or_default();\n",
            "    let d = debug_panic_flag; // not a panic! call\n",
            "}\n",
        );
        assert_eq!(rules(src, ALL), vec![]);
    }

    #[test]
    fn l1_raw_strings_do_not_confuse() {
        let src = "fn f() {\n    let s = r#\"contains \"quotes\" and .unwrap()\"#;\n    real.unwrap();\n}\n";
        assert_eq!(rules(src, ALL), vec![(3, "L1")]);
    }

    #[test]
    fn l2_partial_cmp_unwrap_even_across_lines() {
        let src = "fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    let o = x.partial_cmp(&y)\n        .unwrap();\n}\n";
        let r = rules(
            src,
            ScanOptions {
                check_panics: false,
                ..ALL
            },
        );
        assert_eq!(r, vec![(2, "L2"), (3, "L2")]);
    }

    #[test]
    fn l2_float_eq_flags_literals_and_constants() {
        let src = concat!(
            "fn f(x: f64) {\n",
            "    if x == 0.0 { }\n",
            "    if x != 1e-9 { }\n",
            "    if x == f64::INFINITY { }\n",
            "    if x.fract() == 0.0 { }\n",
            "    if 2f64 == x { }\n",
            "}\n",
        );
        let r = rules(
            src,
            ScanOptions {
                check_panics: false,
                ..ALL
            },
        );
        assert_eq!(
            r,
            vec![(2, "L2"), (3, "L2"), (4, "L2"), (5, "L2"), (6, "L2")]
        );
    }

    #[test]
    fn l2_float_eq_ignores_ints_and_non_sensitive_files() {
        let src = concat!(
            "fn f(i: usize, s: &str) {\n",
            "    if i == 0 { }\n",
            "    if i + 1 == names.len() { }\n",
            "    if s == \"0.0\" { }\n",
            "    if i <= 9 || i >= 2 { }\n",
            "}\n",
        );
        assert_eq!(
            rules(
                src,
                ScanOptions {
                    check_panics: false,
                    ..ALL
                }
            ),
            vec![]
        );
        // Same float code, but the file is not cost/order/rank/partition.
        let floaty = "fn f(x: f64) { if x == 0.0 { } }\n";
        let r = rules(
            floaty,
            ScanOptions {
                check_panics: false,
                check_float_cmp: true,
                float_eq_sensitive: false,
                ..ScanOptions::default()
            },
        );
        assert_eq!(r, vec![]);
    }

    #[test]
    fn l2_float_eq_tracks_f64_annotations() {
        let src = concat!(
            "fn f(vmin: f64, vmax: f64, n: usize) {\n",
            "    let hi: f64 = pick();\n",
            "    if hi == vmax { }\n",
            "    if n == 3 { }\n",
            "}\n",
        );
        let r = rules(
            src,
            ScanOptions {
                check_panics: false,
                ..ALL
            },
        );
        assert_eq!(r, vec![(3, "L2")]);
    }

    #[test]
    fn l2_total_cmp_is_clean() {
        let src = "fn f() {\n    v.sort_by(|a, b| a.total_cmp(b));\n    let m = xs.iter().copied().fold(f64::MIN, f64::max);\n}\n";
        assert_eq!(
            rules(
                src,
                ScanOptions {
                    check_panics: false,
                    ..ALL
                }
            ),
            vec![]
        );
    }

    const DOCS: ScanOptions = ScanOptions {
        check_panics: false,
        check_float_cmp: false,
        float_eq_sensitive: false,
        check_docs: true,
        check_prints: false,
        check_spawns: false,
        check_locks: false,
    };

    #[test]
    fn l4_flags_undocumented_pub_items() {
        let src = concat!(
            "/// Documented.\n",
            "pub fn good() {}\n",
            "pub fn bad() {}\n",
            "/// Documented struct.\n",
            "#[derive(Debug)]\n",
            "pub struct Good;\n",
            "#[derive(Debug)]\n",
            "pub struct Bad;\n",
            "pub use other::Thing;\n",
            "pub(crate) fn internal() {}\n",
        );
        assert_eq!(rules(src, DOCS), vec![(3, "L4"), (8, "L4")]);
    }

    #[test]
    fn l4_accepts_doc_attribute_and_inner_docs() {
        let src = concat!(
            "#[doc = \"machine docs\"]\n",
            "pub fn attr_documented() {}\n",
            "//! module docs\n",
            "pub mod documented_by_inner {}\n",
        );
        assert_eq!(rules(src, DOCS), vec![]);
    }

    #[test]
    fn l4_exempts_out_of_line_modules() {
        // `pub mod x;` carries its docs as `//!` inside x.rs, which a
        // single-file scan cannot see; inline undocumented modules
        // are still flagged.
        let src = "pub mod tree;\npub mod cost;\npub mod inline_bad { }\n";
        assert_eq!(rules(src, DOCS), vec![(3, "L4")]);
    }

    #[test]
    fn l4_skips_test_modules() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    pub fn helper() {}\n",
            "}\n",
        );
        assert_eq!(rules(src, DOCS), vec![]);
    }

    const PRINTS: ScanOptions = ScanOptions {
        check_panics: false,
        check_float_cmp: false,
        float_eq_sensitive: false,
        check_docs: false,
        check_prints: true,
        check_spawns: false,
        check_locks: false,
    };

    #[test]
    fn l5_flags_each_print_macro_once() {
        let src = concat!(
            "fn f() {\n",
            "    println!(\"out\");\n",
            "    eprintln!(\"err\");\n",
            "    print!(\"out\");\n",
            "    eprint!(\"err\");\n",
            "    dbg!(x);\n",
            "}\n",
        );
        assert_eq!(
            rules(src, PRINTS),
            vec![(2, "L5"), (3, "L5"), (4, "L5"), (5, "L5"), (6, "L5")]
        );
    }

    #[test]
    fn l5_ignores_tests_strings_comments_and_sinks() {
        let src = concat!(
            "fn f(w: &mut impl std::io::Write) {\n",
            "    // a println! in a comment\n",
            "    let s = \"println!\";\n",
            "    writeln!(w, \"through a sink\").ok();\n",
            "    let debug_flag = true; // dbg! mention\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { println!(\"fine in tests\"); dbg!(1); }\n",
            "}\n",
        );
        assert_eq!(rules(src, PRINTS), vec![]);
    }

    #[test]
    fn l5_path_qualified_macros_still_fire() {
        let src = "fn f() {\n    std::println!(\"x\");\n}\n";
        assert_eq!(rules(src, PRINTS), vec![(2, "L5")]);
    }

    const SPAWNS: ScanOptions = ScanOptions {
        check_panics: false,
        check_float_cmp: false,
        float_eq_sensitive: false,
        check_docs: false,
        check_prints: false,
        check_spawns: true,
        check_locks: false,
    };

    #[test]
    fn l6_flags_every_spawn_primitive() {
        let src = concat!(
            "fn f() {\n",
            "    let h = std::thread::spawn(|| 1);\n",
            "    thread::scope(|s| { });\n",
            "    let b = thread::Builder::new();\n",
            "}\n",
        );
        assert_eq!(rules(src, SPAWNS), vec![(2, "L6"), (3, "L6"), (4, "L6")]);
    }

    #[test]
    fn l6_ignores_tests_strings_comments_and_lookalikes() {
        let src = concat!(
            "fn f() {\n",
            "    // thread::spawn in a comment\n",
            "    let s = \"thread::spawn\";\n",
            "    my_thread::spawn();\n",
            "    pool.map(&items, |_, it| work(it));\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { std::thread::spawn(|| 1).join().unwrap(); }\n",
            "}\n",
        );
        assert_eq!(rules(src, SPAWNS), vec![]);
    }

    const LOCKS: ScanOptions = ScanOptions {
        check_panics: false,
        check_float_cmp: false,
        float_eq_sensitive: false,
        check_docs: false,
        check_prints: false,
        check_spawns: false,
        check_locks: true,
    };

    #[test]
    fn l7_flags_lock_unwrap_and_expect() {
        let src = concat!(
            "fn f(m: &std::sync::Mutex<u32>) {\n",
            "    let a = m.lock().unwrap();\n",
            "    let b = m.lock().expect(\"poisoned\");\n",
            "}\n",
        );
        assert_eq!(rules(src, LOCKS), vec![(2, "L7"), (3, "L7")]);
    }

    #[test]
    fn l7_accepts_poison_recovery_tests_and_lookalikes() {
        let src = concat!(
            "fn f(m: &std::sync::Mutex<u32>) {\n",
            "    // m.lock().unwrap() in a comment\n",
            "    let s = \".lock().unwrap()\";\n",
            "    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n",
            "    let r = result.unwrap(); // not a lock\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t(m: &std::sync::Mutex<u32>) { m.lock().unwrap(); }\n",
            "}\n",
        );
        assert_eq!(rules(src, LOCKS), vec![]);
    }

    #[test]
    fn test_region_ends_at_matching_brace() {
        let src = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { x.unwrap(); }\n",
            "}\n",
            "fn after() { y.unwrap(); }\n",
        );
        assert_eq!(rules(src, ALL), vec![(5, "L1")]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str {\n    x\n}\nfn g() { h.unwrap(); }\n";
        assert_eq!(rules(src, ALL), vec![(4, "L1")]);
    }

    /// Adversarial corpus for the lexer-backed rules: every needle
    /// the engine knows, hidden where only a real lexer can see it is
    /// not code — multi-hash raw strings, nested block comments, and
    /// lifetime-heavy generics — with one live violation after each
    /// hiding place to prove scanning resumes at the right byte.
    #[test]
    fn adversarial_hiding_places_fool_no_rule() {
        let opts = ScanOptions {
            check_prints: true,
            check_spawns: true,
            check_locks: true,
            ..ALL
        };
        // Needles inside a multi-hash raw string spanning lines.
        let src = concat!(
            "fn f() {\n",
            "    let s = r##\"x.unwrap() println!() thread::spawn(|| 1)\n",
            "        .lock().unwrap() \"# still inside \"#\"##;\n",
            "    live.unwrap();\n",
            "}\n",
        );
        assert_eq!(rules(src, opts), vec![(4, "L1")]);
        // Needles inside a nested block comment; code resumes on the
        // closing line.
        let src = concat!(
            "fn f() {\n",
            "    /* outer /* println!(\"hidden\"); x.unwrap(); */\n",
            "       thread::spawn still hidden */ live.unwrap();\n",
            "}\n",
        );
        assert_eq!(rules(src, opts), vec![(3, "L1")]);
        // Lifetimes next to char literals: `'a` must not open a char
        // and swallow the needle after it.
        let src = concat!(
            "fn f<'a, 'b>(x: &'a str, c: char) -> &'b str {\n",
            "    if c == 'u' { y.unwrap(); }\n",
            "    x\n",
            "}\n",
        );
        assert_eq!(rules(src, opts), vec![(2, "L1")]);
    }

    #[test]
    fn float_literal_matcher() {
        for good in ["0.0", "1.", "1.5e3", "1e9", "1E-9", "2f64", "3.25f32", "1_000.0"] {
            assert!(float_literal(good), "{good}");
        }
        for bad in ["0", "10", "x", "len", "1_000", "v0", "e9", "1.2.3"] {
            assert!(!float_literal(bad), "{bad}");
        }
    }
}
