//! Diagnostics shared by both lint engines.

use std::fmt;

/// A lint or audit rule. Source rules carry file:line positions;
/// audit rules refer to tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1: `unwrap()`/`expect()`/`panic!` in non-test library code.
    L1Panic,
    /// L2: NaN-unsafe float comparison (`partial_cmp().unwrap()`, or
    /// `==`/`!=` against a float) in cost/order/rank/partition code.
    L2FloatCmp,
    /// L3: forbidden inter-crate dependency (layering violation).
    L3Layering,
    /// L4: public item in `qcat-core` without a doc comment.
    L4MissingDocs,
    /// L5: raw `println!`/`eprintln!`/`dbg!` in non-test library code
    /// (binaries and the `qcat-obs` exporter are exempt).
    L5RawPrint,
    /// L6: raw `std::thread` spawning (`thread::spawn`,
    /// `thread::scope`, `thread::Builder`) outside `qcat-pool`, the
    /// one crate sanctioned to create threads. Ad-hoc threads bypass
    /// `QCAT_THREADS` sizing, recorder propagation, and the
    /// deterministic result order the pool guarantees.
    L6RawSpawn,
    /// L7: `.lock().unwrap()` / `.lock().expect(` in non-test code.
    /// A panicking peer poisons the mutex and every later lock call
    /// panics too — one crash becomes a wedge. Lock through a
    /// designated poison-recovery helper
    /// (`.lock().unwrap_or_else(|e| e.into_inner())`) instead.
    L7LockUnwrap,
    /// L8: a cycle in the workspace lock-acquisition graph — some
    /// path acquires lock B while holding lock A and another path
    /// acquires A while holding B (or re-acquires the same lock it
    /// already holds). Either schedule can deadlock.
    L8LockOrder,
    /// L9: a loop over rows/candidates/nodes inside a budget-governed
    /// region whose body reaches no `Gas` poll (`checkpoint`,
    /// `charge_*`), directly or via a callee — cancellation and
    /// budget enforcement would stall for the whole loop.
    L9CheckpointGap,
    /// L10: a collection-allocating call (`with_capacity`, `insert`,
    /// `push` in a loop) inside a budget-governed region that is not
    /// reached by any heap-accounting helper (`charge_heap` /
    /// `heap_bytes`) — the allocation is invisible to
    /// `max_heap_bytes`.
    L10BudgetBlindAlloc,
    /// A1: `P(C)` or `Pw(C)` outside `[0, 1]` (or NaN).
    A1Probability,
    /// A2: leaf node with `Pw != 1`.
    A2LeafPw,
    /// A3: sibling tuple-sets overlap.
    A3TsetDisjoint,
    /// A4: children do not cover the parent tuple-set.
    A4TsetCover,
    /// A5: a tuple violates the root→C label conjunction.
    A5LabelPath,
    /// A6: negative or non-finite CostAll/CostOne.
    A6CostSign,
    /// A7: CostAll report disagrees with brute-force Eq. 1 (> 1e-9).
    A7CostEq1,
    /// T1: a trace line is not valid JSONL of the documented schema,
    /// or `seq` fails to increase.
    T1TraceSyntax,
    /// T2: span opens/closes are not balanced LIFO per (thread,
    /// trace) — a close must name (and carry the span id of) the
    /// innermost open span of its own trace on its thread, and the
    /// recorded depth must match the thread's open-span count.
    T2SpanBalance,
    /// T3: a duration is negative, disagrees with its span's
    /// timestamps, or children outlast their parent.
    T3Durations,
    /// T4: a `serve.shed`/`serve.degraded`/`serve.cancel` event
    /// outside an open `serve.query` span on its thread — governance
    /// events must be attributable to the query they degraded.
    T4ServeEnclosure,
    /// T5: a line's `parent` id names a span that was never opened in
    /// its trace (or a span id is reused within a trace) — the causal
    /// tree must be closed under parent links.
    T5ParentExists,
}

impl Rule {
    /// The stable identifier printed in diagnostics and matched by
    /// tests, e.g. `L1`, `A3`, `T2`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1Panic => "L1",
            Rule::L2FloatCmp => "L2",
            Rule::L3Layering => "L3",
            Rule::L4MissingDocs => "L4",
            Rule::L5RawPrint => "L5",
            Rule::L6RawSpawn => "L6",
            Rule::L7LockUnwrap => "L7",
            Rule::L8LockOrder => "L8",
            Rule::L9CheckpointGap => "L9",
            Rule::L10BudgetBlindAlloc => "L10",
            Rule::A1Probability => "A1",
            Rule::A2LeafPw => "A2",
            Rule::A3TsetDisjoint => "A3",
            Rule::A4TsetCover => "A4",
            Rule::A5LabelPath => "A5",
            Rule::A6CostSign => "A6",
            Rule::A7CostEq1 => "A7",
            Rule::T1TraceSyntax => "T1",
            Rule::T2SpanBalance => "T2",
            Rule::T3Durations => "T3",
            Rule::T4ServeEnclosure => "T4",
            Rule::T5ParentExists => "T5",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation, printable as `file:line: [RULE] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file (or a pseudo-path
    /// like `<tree>` for audit findings).
    pub file: String,
    /// 1-based line, 0 when the finding has no line (manifest- or
    /// tree-level rules).
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Diagnostic at a source position.
    pub fn at(file: impl Into<String>, line: usize, rule: Rule, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: message.into(),
        }
    }

    /// Diagnostic with no meaningful line number.
    pub fn file_level(file: impl Into<String>, rule: Rule, message: impl Into<String>) -> Self {
        Self::at(file, 0, rule, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = Diagnostic::at("crates/core/src/cost.rs", 12, Rule::L1Panic, "call to unwrap()");
        assert_eq!(
            d.to_string(),
            "crates/core/src/cost.rs:12: [L1] call to unwrap()"
        );
        let f = Diagnostic::file_level("crates/qcat-sql/Cargo.toml", Rule::L3Layering, "depends on qcat-core");
        assert_eq!(
            f.to_string(),
            "crates/qcat-sql/Cargo.toml: [L3] depends on qcat-core"
        );
    }

    #[test]
    fn rule_ids_are_stable() {
        for (rule, id) in [
            (Rule::L1Panic, "L1"),
            (Rule::L2FloatCmp, "L2"),
            (Rule::L3Layering, "L3"),
            (Rule::L4MissingDocs, "L4"),
            (Rule::L5RawPrint, "L5"),
            (Rule::L6RawSpawn, "L6"),
            (Rule::L7LockUnwrap, "L7"),
            (Rule::L8LockOrder, "L8"),
            (Rule::L9CheckpointGap, "L9"),
            (Rule::L10BudgetBlindAlloc, "L10"),
            (Rule::A1Probability, "A1"),
            (Rule::A2LeafPw, "A2"),
            (Rule::A3TsetDisjoint, "A3"),
            (Rule::A4TsetCover, "A4"),
            (Rule::A5LabelPath, "A5"),
            (Rule::A6CostSign, "A6"),
            (Rule::A7CostEq1, "A7"),
            (Rule::T1TraceSyntax, "T1"),
            (Rule::T2SpanBalance, "T2"),
            (Rule::T3Durations, "T3"),
            (Rule::T4ServeEnclosure, "T4"),
            (Rule::T5ParentExists, "T5"),
        ] {
            assert_eq!(rule.id(), id);
        }
    }
}
