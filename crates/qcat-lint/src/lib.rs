#![warn(missing_docs)]

//! First-party static analysis for the qcat workspace.
//!
//! Four engines (see `docs/LINTS.md` for the full catalog):
//!
//! - **Engine 1 — source lint** ([`scan`], [`manifest`],
//!   [`workspace`]): per-file rules L1 (no panic sites in library
//!   code), L2 (no NaN-unsafe float comparisons in
//!   cost/order/rank/partition code), L3 (layering, from Cargo.toml),
//!   L4 (public items in `qcat-core` need docs), L5 (no raw
//!   `println!`/`eprintln!`/`dbg!` in library code — progress goes
//!   through `qcat-obs`), L6 (no ad-hoc threads outside `qcat-pool`),
//!   L7 (no `.lock().unwrap()`). All rules run over the [`lexer`]
//!   token stream, so string literals and comments can never produce
//!   false positives.
//! - **Engine 2 — semantic analysis** ([`lexer`], [`syms`],
//!   [`callgraph`], [`conc`]): a workspace-wide symbol table and call
//!   graph feeding cross-file rules L8 (lock-order cycles), L9
//!   (checkpoint coverage of governed loops in budget regions), and
//!   L10 (budget-blind allocations).
//! - **Engine 3 — invariant auditor** ([`audit`]): given any built
//!   [`qcat_core::CategoryTree`], verifies the paper's Section 4
//!   invariants (A1–A5) and that [`qcat_core::cost::cost_all`] agrees
//!   with an independent brute-force evaluation of Eq. 1 (A6–A7).
//! - **Engine 4 — trace auditor** ([`tracecheck`]): given a
//!   `QCAT_TRACE=json` JSONL capture, verifies schema and `seq` order
//!   (T1), per-thread LIFO span balance (T2), and duration arithmetic
//!   (T3). Run it with `qcat-lint --audit-trace <file>`.
//!
//! The binary (`cargo run -p qcat-lint -- --workspace`, or the
//! `cargo lint` alias) runs the source and semantic engines and exits
//! nonzero on any violation; the integration test under `tests/` does
//! the same so plain `cargo test` gates regressions.

pub mod audit;
pub mod callgraph;
pub mod conc;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod scan;
pub mod syms;
pub mod tracecheck;
pub mod workspace;

pub use conc::{analyze_sources, SourceFile};
pub use diag::{Diagnostic, Rule};
pub use scan::{lint_source, CleanSource, ScanOptions};
pub use tracecheck::audit_trace;
pub use workspace::lint_workspace;
