#![warn(missing_docs)]

//! First-party static analysis for the qcat workspace.
//!
//! Two engines (see `docs/LINTS.md` for the full catalog):
//!
//! - **Engine 1 — source lint** ([`scan`], [`manifest`],
//!   [`allowlist`], [`workspace`]): rules L1 (no panic sites in
//!   library code), L2 (no NaN-unsafe float comparisons in
//!   cost/order/rank/partition code), L3 (layering, from Cargo.toml),
//!   L4 (public items in `qcat-core` need docs). L1 carries a
//!   shrink-only allowlist for sites grandfathered from the seed.
//! - **Engine 2 — invariant auditor** ([`audit`]): given any built
//!   [`qcat_core::CategoryTree`], verifies the paper's Section 4
//!   invariants (A1–A5) and that [`qcat_core::cost::cost_all`] agrees
//!   with an independent brute-force evaluation of Eq. 1 (A6–A7).
//!
//! The binary (`cargo run -p qcat-lint -- --workspace`, or the
//! `cargo lint` alias) runs both engines and exits nonzero on any
//! violation; the integration test under `tests/` does the same so
//! plain `cargo test` gates regressions.

pub mod allowlist;
pub mod audit;
pub mod diag;
pub mod manifest;
pub mod scan;
pub mod workspace;

pub use allowlist::Allowlist;
pub use diag::{Diagnostic, Rule};
pub use scan::{lint_source, CleanSource, ScanOptions};
pub use workspace::lint_workspace;
