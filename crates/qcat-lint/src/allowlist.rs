//! The grandfather allowlist and its ratchet.
//!
//! `lint-allowlist.txt` at the repo root records, per rule and file,
//! how many violations are grandfathered from the seed. Only the
//! countable source rules may be allowlisted: L1 (panic sites) and L5
//! (raw prints). The counts are exact: more violations than allowed
//! fails the lint, and *fewer* fails too (rule `ALLOW`) — when a site
//! is fixed the allowlist entry must shrink with it, so the budget can
//! never be silently reused.

use crate::diag::{Diagnostic, Rule};
use std::collections::BTreeMap;

/// Rules that may carry grandfathered counts.
const ALLOWLISTED: &[Rule] = &[Rule::L1Panic, Rule::L5RawPrint];

fn rule_for_id(id: &str) -> Option<Rule> {
    ALLOWLISTED.iter().copied().find(|r| r.id() == id)
}

/// Parsed allowlist: (rule id, file) → grandfathered count.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: BTreeMap<(&'static str, String), usize>,
}

impl Allowlist {
    /// Parse the allowlist format: one `<rule> <path> <count>` per
    /// line where `<rule>` is `L1` or `L5`, `#` comments and blank
    /// lines ignored. Unknown rules or malformed lines produce
    /// `ALLOW` diagnostics rather than being dropped silently.
    pub fn parse(text: &str, origin: &str) -> (Allowlist, Vec<Diagnostic>) {
        let mut list = Allowlist::default();
        let mut diags = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                [rule, path, count] => match rule_for_id(rule) {
                    Some(r) => count.parse::<usize>().ok().map(|c| (r, *path, c)),
                    None => {
                        diags.push(Diagnostic::at(
                            origin,
                            idx + 1,
                            Rule::AllowlistStale,
                            format!("only L1 and L5 may be allowlisted, found `{rule}`"),
                        ));
                        continue;
                    }
                },
                [rule, ..] if rule_for_id(rule).is_none() => {
                    diags.push(Diagnostic::at(
                        origin,
                        idx + 1,
                        Rule::AllowlistStale,
                        format!("only L1 and L5 may be allowlisted, found `{rule}`"),
                    ));
                    continue;
                }
                _ => None,
            };
            match parsed {
                Some((rule, path, count)) if count > 0 => {
                    list.entries.insert((rule.id(), path.to_string()), count);
                }
                Some((_, path, _)) => {
                    diags.push(Diagnostic::at(
                        origin,
                        idx + 1,
                        Rule::AllowlistStale,
                        format!("zero-count entry for {path}; delete the line"),
                    ));
                }
                None => {
                    diags.push(Diagnostic::at(
                        origin,
                        idx + 1,
                        Rule::AllowlistStale,
                        format!("malformed allowlist line: `{line}`"),
                    ));
                }
            }
        }
        (list, diags)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no file is grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply the ratchet: suppress exactly-allowed L1/L5 findings,
    /// pass everything else through, and emit `ALLOW` diagnostics for
    /// over- and under-consumed entries.
    pub fn apply(&self, origin: &str, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut counts: BTreeMap<(&'static str, &str), usize> = BTreeMap::new();
        for d in &diags {
            if ALLOWLISTED.contains(&d.rule) {
                *counts.entry((d.rule.id(), d.file.as_str())).or_default() += 1;
            }
        }
        let mut out = Vec::new();
        for d in diags.iter() {
            if ALLOWLISTED.contains(&d.rule) {
                let key = (d.rule.id(), d.file.clone());
                let allowed = self.entries.get(&key).copied().unwrap_or(0);
                let actual = counts[&(d.rule.id(), d.file.as_str())];
                if actual <= allowed {
                    continue; // grandfathered (stale check below)
                }
            }
            out.push(d.clone());
        }
        for (&(rule, ref file), &allowed) in &self.entries {
            let actual = counts.get(&(rule, file.as_str())).copied().unwrap_or(0);
            if actual < allowed {
                out.push(Diagnostic::file_level(
                    origin,
                    Rule::AllowlistStale,
                    format!(
                        "stale allowlist: {file} allows {allowed} {rule} sites but only {actual} remain; \
                         shrink the entry (the allowlist may only ratchet down)"
                    ),
                ));
            } else if actual > allowed {
                out.push(Diagnostic::file_level(
                    origin,
                    Rule::AllowlistStale,
                    format!(
                        "{file} has {actual} {rule} sites but only {allowed} are grandfathered; \
                         fix the new sites (the allowlist may not grow)"
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(file: &str, line: usize) -> Diagnostic {
        Diagnostic::at(file, line, Rule::L1Panic, "call to unwrap()")
    }

    fn l5(file: &str, line: usize) -> Diagnostic {
        Diagnostic::at(file, line, Rule::L5RawPrint, "raw `println!`")
    }

    #[test]
    fn parse_accepts_l1_l5_and_rejects_others() {
        let (list, diags) = Allowlist::parse(
            "# seed debt\nL1 crates/core/src/a.rs 3\nL5 crates/core/src/a.rs 1\n\nL2 crates/core/src/b.rs 1\nL1 x 0\ngarbage\n",
            "lint-allowlist.txt",
        );
        assert_eq!(list.len(), 2);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == Rule::AllowlistStale));
    }

    #[test]
    fn exact_count_suppresses() {
        let (list, _) = Allowlist::parse("L1 f.rs 2\n", "allow");
        let out = list.apply("allow", vec![l1("f.rs", 1), l1("f.rs", 9)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn over_budget_reports_everything() {
        let (list, _) = Allowlist::parse("L1 f.rs 1\n", "allow");
        let out = list.apply("allow", vec![l1("f.rs", 1), l1("f.rs", 9)]);
        // Both L1 sites resurface plus the ALLOW explanation.
        assert_eq!(out.iter().filter(|d| d.rule == Rule::L1Panic).count(), 2);
        assert_eq!(
            out.iter().filter(|d| d.rule == Rule::AllowlistStale).count(),
            1
        );
    }

    #[test]
    fn under_budget_is_stale() {
        let (list, _) = Allowlist::parse("L1 f.rs 3\n", "allow");
        let out = list.apply("allow", vec![l1("f.rs", 1)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::AllowlistStale);
        assert!(out[0].message.contains("shrink"), "{}", out[0].message);
    }

    #[test]
    fn unlisted_files_pass_through() {
        let (list, _) = Allowlist::parse("L1 f.rs 1\n", "allow");
        let out = list.apply("allow", vec![l1("f.rs", 1), l1("g.rs", 2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, "g.rs");
    }

    #[test]
    fn l1_and_l5_budgets_are_independent() {
        // An L1 budget must not absorb L5 findings in the same file.
        let (list, _) = Allowlist::parse("L1 f.rs 1\n", "allow");
        let out = list.apply("allow", vec![l1("f.rs", 1), l5("f.rs", 2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::L5RawPrint);
        // And an L5 budget suppresses exactly its own rule.
        let (list, _) = Allowlist::parse("L5 f.rs 1\n", "allow");
        let out = list.apply("allow", vec![l5("f.rs", 2)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
