//! Call extraction and heuristic resolution over the symbol table.
//!
//! Calls are recognized lexically in each function body: `name(`
//! free/path calls and `.name(` method calls; `name!` macro
//! invocations are skipped. Resolution is by name against the
//! workspace symbol table, and returns **every** plausible
//! definition of the names it does resolve:
//!
//! - free calls prefer free definitions;
//! - `Type::name(` calls require a matching `impl Type`;
//! - `.name(` method calls require the receiver to correspond to the
//!   definition's `impl` type — `self.name(…)` must match the
//!   caller's own impl, and `catalog.get(…)` matches `impl Catalog`
//!   by name. Without types this is the only guard against
//!   `map.get(…)` resolving to every workspace `get`; a method call
//!   on a constructor temporary (`Categorizer::new(…).categorize(…)`)
//!   is typed by the constructor's qualifier, and any other temporary
//!   receiver (`…().get(…)`) resolves to nothing at all.
//!
//! Within those guards, over-approximating is the safe direction for
//! every consumer: the lock-order rule sees more potential
//! acquisitions, and the checkpoint/budget reachability sets grow
//! rather than shrink.

use crate::syms::{FnDef, SymbolTable};
use crate::lexer::{TokKind, Token};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name.
    pub name: String,
    /// `.name(` method call (vs free or path call).
    pub method: bool,
    /// `Type::name(` qualifier, when present.
    pub qualifier: Option<String>,
    /// Index of the name token in the file's token stream.
    pub tok: usize,
    /// Last field/variable identifier of the receiver chain
    /// (`self.slot.state.lock(…)` → `state`), when the receiver is a
    /// plain path.
    pub recv_last: Option<String>,
    /// Receiver chain starts at `self`.
    pub recv_self: bool,
    /// Receiver type when the receiver is a constructor-call
    /// temporary: `Categorizer::new(…).categorize(…)` →
    /// `Categorizer`.
    pub recv_type: Option<String>,
    /// Last identifier of the first argument (`lock_recover(&self.b)`
    /// → `b`), when the argument is a plain path.
    pub arg0_last: Option<String>,
    /// First argument's path contains `self`.
    pub arg0_self: bool,
}

/// The workspace call graph: per-function call lists plus resolved
/// edges in both directions.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[f]` — call sites inside `fns[f]`'s body.
    pub calls: Vec<Vec<Call>>,
    /// `callees[f]` — resolved definition indices `f` may call.
    pub callees: Vec<Vec<usize>>,
    /// `callers[f]` — inverse of `callees`.
    pub callers: Vec<Vec<usize>>,
}

/// Keywords and control constructs that look like `name(` but are not
/// calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "move", "let", "fn", "pub",
    "impl", "use", "struct", "enum", "unsafe", "async", "const", "static", "where", "dyn", "ref",
    "mut", "as", "break", "continue", "crate", "super", "mod", "trait", "type", "extern",
];

impl CallGraph {
    /// Extract and resolve every call in every function body.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let mut calls = Vec::with_capacity(table.fns.len());
        for def in &table.fns {
            let toks = table.tokens_of(def);
            calls.push(extract_calls(toks, def.body.0, def.body.1));
        }
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); table.fns.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); table.fns.len()];
        for (f, fcalls) in calls.iter().enumerate() {
            for call in fcalls {
                for target in resolve(table, Some(&table.fns[f]), call) {
                    if !callees[f].contains(&target) {
                        callees[f].push(target);
                        callers[target].push(f);
                    }
                }
            }
        }
        CallGraph {
            calls,
            callees,
            callers,
        }
    }

    /// All definitions reachable from `roots` along call edges
    /// (including the roots).
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.callees.len()];
        let mut work: Vec<usize> = roots.to_vec();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(f) = work.pop() {
            for &g in &self.callees[f] {
                if !seen[g] {
                    seen[g] = true;
                    work.push(g);
                }
            }
        }
        seen
    }

    /// Fixpoint of a boolean property that propagates from callees to
    /// callers: `out[f] = seed[f] ∨ ∃ callee g with out[g]`.
    pub fn any_callee_fixpoint(&self, seed: &[bool]) -> Vec<bool> {
        let mut out = seed.to_vec();
        let mut work: Vec<usize> = (0..out.len()).filter(|&f| out[f]).collect();
        while let Some(g) = work.pop() {
            for &f in &self.callers[g] {
                if !out[f] {
                    out[f] = true;
                    work.push(f);
                }
            }
        }
        out
    }

    /// Fixpoint of a boolean property that propagates from callers to
    /// callees: `out[f] = seed[f] ∨ ∃ caller c with out[c]`.
    pub fn any_caller_fixpoint(&self, seed: &[bool]) -> Vec<bool> {
        let mut out = seed.to_vec();
        let mut work: Vec<usize> = (0..out.len()).filter(|&f| out[f]).collect();
        while let Some(c) = work.pop() {
            for &f in &self.callees[c] {
                if !out[f] {
                    out[f] = true;
                    work.push(f);
                }
            }
        }
        out
    }
}

/// Resolve one call site to candidate definition indices. `caller`
/// (when known) anchors `self.name(…)` calls to the caller's own
/// impl type.
pub fn resolve(table: &SymbolTable, caller: Option<&FnDef>, call: &Call) -> Vec<usize> {
    let Some(candidates) = table.by_name.get(&call.name) else {
        return Vec::new();
    };
    // `Type::name(` — prefer definitions in `impl Type`.
    if let Some(q) = &call.qualifier {
        let qualified: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| table.fns[d].impl_type.as_deref() == Some(q.as_str()))
            .collect();
        if !qualified.is_empty() {
            return qualified;
        }
        // A lowercase qualifier is a module path (`baselines::build`),
        // so it reaches free fns by name. A type-looking qualifier
        // that names no workspace impl (e.g. `Vec::new`) resolves to
        // nothing rather than to every same-named fn.
        if q.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
            return candidates
                .iter()
                .copied()
                .filter(|&d| !table.fns[d].has_self && table.fns[d].impl_type.is_none())
                .collect();
        }
        return Vec::new();
    }
    if call.method {
        // `.name(` — self-taking definitions whose impl type the
        // receiver plausibly names.
        return candidates
            .iter()
            .copied()
            .filter(|&d| {
                let def = &table.fns[d];
                def.has_self && receiver_matches(caller, call, def.impl_type.as_deref())
            })
            .collect();
    }
    // A free-looking call through a local binding (`let run = |…| …;
    // … run(tx)`) or a closure parameter invokes the local callable,
    // not any global fn that shares its name.
    if caller.is_some_and(|c| locally_bound(table, c, call)) {
        return Vec::new();
    }
    // Free call — prefer genuinely free definitions. Associated fns
    // (`impl T { fn name() }`, no self) can only be invoked with a
    // `T::` qualifier, so they never match an unqualified call.
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&d| !table.fns[d].has_self && table.fns[d].impl_type.is_none())
        .collect();
    if !free.is_empty() {
        return free;
    }
    Vec::new()
}

/// Is the call name bound locally in the caller — a parameter or a
/// `let`/`let mut` binding before the call site?
fn locally_bound(table: &SymbolTable, caller: &FnDef, call: &Call) -> bool {
    if caller.params.iter().any(|p| p == &call.name) {
        return true;
    }
    let toks = table.tokens_of(caller);
    let end = call.tok.min(caller.body.1);
    let mut i = caller.body.0;
    while i + 1 < end {
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks[j].text == "mut" {
                j += 1;
            }
            if j < end && toks[j].text == call.name {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Does a method call's receiver plausibly name `impl_type`?
///
/// - `self.name(…)` (receiver is literally `self`): the definition
///   must share the caller's impl type.
/// - `self.server.name(…)` / `catalog.name(…)`: the last receiver
///   identifier must correspond to the impl type by name —
///   lowercased and underscore-stripped, equal to it or a prefix or
///   suffix of it (`catalog` → `Catalog`, `pool` → `ThreadPool`,
///   `builder` → `RelationBuilder`). Short receivers (< 3 chars)
///   match nothing: `b.finish()` says nothing about the type.
/// - A constructor-call temporary (`Type::new(…).name(…)`) matches
///   `impl Type` exactly; any other temporary receiver
///   (`lock().get(…)`) matches nothing.
fn receiver_matches(caller: Option<&FnDef>, call: &Call, impl_type: Option<&str>) -> bool {
    let Some(recv) = call.recv_last.as_deref() else {
        return call.recv_type.is_some() && call.recv_type.as_deref() == impl_type;
    };
    if recv == "self" {
        return match caller {
            Some(c) => {
                c.impl_type.is_some() && c.impl_type.as_deref() == impl_type
            }
            None => true,
        };
    }
    let Some(ty) = impl_type else {
        return false;
    };
    let recv: String = recv.chars().filter(|&c| c != '_').collect();
    if recv.len() < 3 {
        return false;
    }
    let ty = ty.to_ascii_lowercase();
    ty == recv || ty.starts_with(recv.as_str()) || ty.ends_with(recv.as_str())
}

/// Extract call sites from the token range `[start, end)`.
pub fn extract_calls(toks: &[Token], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // `name!` — macro invocation, not a call.
        if toks.get(i + 1).is_some_and(|n| n.text == "!") {
            i += 1;
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.text == "(") {
            i += 1;
            continue;
        }
        // `fn name(` — a nested definition, not a call.
        if i > start && toks[i - 1].text == "fn" {
            i += 1;
            continue;
        }
        let method = i > start && toks[i - 1].text == ".";
        let qualifier = if i >= start + 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            // `seg::name(` — the qualifier is the preceding segment.
            (i >= start + 3 && toks[i - 3].kind == TokKind::Ident)
                .then(|| toks[i - 3].text.clone())
        } else {
            None
        };
        let (recv_last, recv_self) = if method {
            receiver_path(toks, start, i - 1)
        } else {
            (None, false)
        };
        let recv_type = if method {
            receiver_ctor_type(toks, start, i - 1)
        } else {
            None
        };
        let (arg0_last, arg0_self) = first_arg_path(toks, i + 1, end);
        out.push(Call {
            name: t.text.clone(),
            method,
            qualifier,
            tok: i,
            recv_last,
            recv_self,
            recv_type,
            arg0_last,
            arg0_self,
        });
        i += 1;
    }
    out
}

/// Walk back from the `.` before a method name, collecting a plain
/// `a.b.c` receiver path. Returns (last identifier before the method,
/// path starts at `self`). A receiver ending in `)` or `]` (a call or
/// index result) yields `(None, false)`.
fn receiver_path(toks: &[Token], start: usize, dot: usize) -> (Option<String>, bool) {
    if dot == start || toks[dot - 1].kind != TokKind::Ident {
        return (None, false);
    }
    let last = toks[dot - 1].text.clone();
    let mut i = dot - 1;
    let mut is_self = toks[i].text == "self";
    while i >= start + 2 && toks[i - 1].text == "." && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
        if toks[i].text == "self" {
            is_self = true;
        }
    }
    (Some(last), is_self)
}

/// When the receiver of the method whose `.` is at `dot` is a
/// qualified-call temporary — `Type::ctor(…).method(…)` — the
/// qualifying type names the receiver. Chained methods on the
/// temporary (`Type::new(…).a().b(…)`) are not traced; only the
/// direct constructor-then-call shape is typed.
fn receiver_ctor_type(toks: &[Token], start: usize, dot: usize) -> Option<String> {
    if dot == start || toks[dot - 1].text != ")" {
        return None;
    }
    // Walk back over the balanced `(…)` of the receiver call.
    let mut depth = 0i32;
    let mut open = dot - 1;
    loop {
        match toks[open].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if open == start {
            return None;
        }
        open -= 1;
    }
    // `Type :: ctor (` — four tokens before the paren.
    if open >= start + 4
        && toks[open - 1].kind == TokKind::Ident
        && toks[open - 2].text == ":"
        && toks[open - 3].text == ":"
        && toks[open - 4].kind == TokKind::Ident
    {
        return Some(toks[open - 4].text.clone());
    }
    None
}

/// The first argument of the call whose `(` is at `open`: when it is
/// a plain (possibly `&`-prefixed) path, its last identifier and
/// whether the path mentions `self`.
fn first_arg_path(toks: &[Token], open: usize, end: usize) -> (Option<String>, bool) {
    let mut depth = 0i32;
    let mut last: Option<String> = None;
    let mut has_self = false;
    let mut plain = true;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "(" | "[" => {
                depth += 1;
                if depth > 1 {
                    plain = false;
                }
            }
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => break,
            "&" | "." | "mut" => {}
            "self" if toks[i].kind == TokKind::Ident => {
                has_self = true;
                last = Some("self".to_string());
            }
            _ if toks[i].kind == TokKind::Ident => last = Some(toks[i].text.clone()),
            _ => plain = false,
        }
        i += 1;
    }
    if plain {
        (last, has_self)
    } else {
        (None, has_self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syms::SymbolTable;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let mut t = SymbolTable::default();
        t.add_file("t.rs", "c", src);
        let g = CallGraph::build(&t);
        (t, g)
    }

    #[test]
    fn resolves_free_and_method_calls() {
        let (t, g) = graph(
            "fn helper() {}\n\
             struct S;\n\
             impl S {\n    fn work(&self) { helper(); self.inner(); }\n    fn inner(&self) {}\n}\n",
        );
        let work = t.fns.iter().position(|d| d.name == "work").unwrap();
        let helper = t.fns.iter().position(|d| d.name == "helper").unwrap();
        let inner = t.fns.iter().position(|d| d.name == "inner").unwrap();
        assert!(g.callees[work].contains(&helper));
        assert!(g.callees[work].contains(&inner));
        assert!(g.callers[helper].contains(&work));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_, g) = graph(
            "fn f() { println!(\"x\"); if (a) { } match (b) { _ => {} } g(); }\nfn g() {}\n",
        );
        let names: Vec<&str> = g.calls[0].iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g"]);
    }

    #[test]
    fn qualified_calls_prefer_the_impl() {
        let (t, g) = graph(
            "struct A; struct B;\n\
             impl A {\n    fn make() -> A { A }\n}\n\
             impl B {\n    fn make() -> B { B }\n}\n\
             fn f() { let _ = A::make(); }\n",
        );
        let f = t.fns.iter().position(|d| d.name == "f").unwrap();
        let a_make = t
            .fns
            .iter()
            .position(|d| d.name == "make" && d.impl_type.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(g.callees[f], vec![a_make]);
    }

    #[test]
    fn std_qualified_calls_resolve_to_nothing() {
        let (_, g) = graph("fn f() { let v = Vec::with_capacity(4); }\n");
        assert!(g.callees[0].is_empty());
        // The call site itself is still recorded (L10 needs it).
        assert_eq!(g.calls[0][0].name, "with_capacity");
        assert_eq!(g.calls[0][0].qualifier.as_deref(), Some("Vec"));
    }

    #[test]
    fn constructor_temporaries_are_typed() {
        let (t, g) = graph(
            "struct W; struct V;\n\
             impl W {\n    fn new(x: u32) -> W { W }\n    fn run(&self) {}\n}\n\
             impl V {\n    fn run(&self) {}\n}\n\
             fn f() { W::new(g(1)).run(); }\nfn g(x: u32) -> u32 { x }\n",
        );
        let f = t.fns.iter().position(|d| d.name == "f").unwrap();
        let w_run = t
            .fns
            .iter()
            .position(|d| d.name == "run" && d.impl_type.as_deref() == Some("W"))
            .unwrap();
        let v_run = t
            .fns
            .iter()
            .position(|d| d.name == "run" && d.impl_type.as_deref() == Some("V"))
            .unwrap();
        assert!(g.callees[f].contains(&w_run), "ctor temporary typed as W");
        assert!(!g.callees[f].contains(&v_run), "other impls excluded");
    }

    #[test]
    fn plain_temporaries_resolve_to_nothing() {
        let (t, g) = graph(
            "struct C;\n\
             impl C {\n    fn get(&self) {}\n}\n\
             fn f() { h().get(); }\nfn h() -> u32 { 0 }\n",
        );
        let f = t.fns.iter().position(|d| d.name == "f").unwrap();
        let get = t.fns.iter().position(|d| d.name == "get").unwrap();
        assert!(!g.callees[f].contains(&get));
    }

    #[test]
    fn receiver_and_arg_paths() {
        let (_, g) = graph("fn f(&self) { self.slot.state.lock(); lock_recover(&self.fills); }\n");
        let lock = &g.calls[0][0];
        assert_eq!(lock.recv_last.as_deref(), Some("state"));
        assert!(lock.recv_self);
        let rec = &g.calls[0][1];
        assert_eq!(rec.arg0_last.as_deref(), Some("fills"));
        assert!(rec.arg0_self);
    }

    #[test]
    fn fixpoints() {
        let (t, g) = graph(
            "fn leaf() { poll(); }\nfn poll() {}\nfn mid() { leaf(); }\nfn top() { mid(); }\n",
        );
        let poll = t.fns.iter().position(|d| d.name == "poll").unwrap();
        let top = t.fns.iter().position(|d| d.name == "top").unwrap();
        let mut seed = vec![false; t.fns.len()];
        seed[poll] = true;
        let up = g.any_callee_fixpoint(&seed);
        assert!(up[top], "polling propagates to callers");
        let mut seed2 = vec![false; t.fns.len()];
        seed2[top] = true;
        let down = g.any_caller_fixpoint(&seed2);
        assert!(down[poll], "coverage propagates to callees");
        let reach = g.reachable(&[top]);
        assert!(reach[poll]);
    }
}
