//! Engine 2: the cost-model invariant auditor (rules A1–A7).
//!
//! Verifies the Section 4 invariants of any built [`CategoryTree`]
//! and, for a [`CostReport`], that the production `cost_all` evaluator
//! agrees with an independent brute-force re-evaluation of Eq. 1:
//!
//! - **A1** `P(C)` and `Pw(C)` lie in `[0, 1]` (and are not NaN);
//! - **A2** leaves have `Pw = 1` (SHOWTUPLES is forced at leaves);
//! - **A3** sibling tuple-sets are pairwise disjoint;
//! - **A4** sibling tuple-sets cover the parent's exactly;
//! - **A5** every tuple satisfies the conjunction of labels on the
//!   path root→C (paper §3.1: a category's contents are its path
//!   predicate's answers);
//! - **A6** every reported cost is finite and ≥ 0;
//! - **A7** the report matches brute-force Eq. 1 within `1e-9`.
//!
//! The auditor never trusts the evaluator under test: A7 recomputes
//! CostAll by direct recursion over the tree (differential testing),
//! so a bug in the shared fold cannot mask itself.

use crate::diag::{Diagnostic, Rule};
use qcat_core::cost::CostReport;
use qcat_core::tree::{CategoryTree, NodeId};

/// Tolerance for A7: |report − brute force| per node.
pub const COST_TOLERANCE: f64 = 1e-9;

/// Pseudo-file used in audit diagnostics (there is no source file).
const TREE: &str = "<tree>";

/// Audit the structural/probability invariants A1–A5 of `tree`.
pub fn audit_tree(tree: &CategoryTree) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &id in &tree.dfs() {
        let node = tree.node(id);
        check_probabilities(id, node.p_explore, node.p_showtuples, &mut diags);
        if node.is_leaf() && node.p_showtuples.total_cmp(&1.0).is_ne() {
            diags.push(Diagnostic::file_level(
                TREE,
                Rule::A2LeafPw,
                format!("leaf {id} has Pw = {}, must be exactly 1", node.p_showtuples),
            ));
        }
        if !node.children.is_empty() {
            check_partition(tree, id, &mut diags);
        }
        check_label_path(tree, id, &mut diags);
    }
    diags
}

fn check_probabilities(id: NodeId, p: f64, pw: f64, diags: &mut Vec<Diagnostic>) {
    for (name, v) in [("P", p), ("Pw", pw)] {
        if !(0.0..=1.0).contains(&v) || v.is_nan() {
            diags.push(Diagnostic::file_level(
                TREE,
                Rule::A1Probability,
                format!("{name}({id}) = {v} is outside [0, 1]"),
            ));
        }
    }
}

/// A3 + A4: the children of `id` partition its tuple-set.
fn check_partition(tree: &CategoryTree, id: NodeId, diags: &mut Vec<Diagnostic>) {
    let node = tree.node(id);
    let mut union: Vec<u32> = Vec::with_capacity(node.tset.len());
    for &c in &node.children {
        union.extend_from_slice(&tree.node(c).tset);
    }
    union.sort_unstable();
    if let Some(w) = union.windows(2).find(|w| w[0] == w[1]) {
        diags.push(Diagnostic::file_level(
            TREE,
            Rule::A3TsetDisjoint,
            format!("children of {id} overlap: row {} appears in two siblings", w[0]),
        ));
        union.dedup();
    }
    let mut parent = node.tset.clone();
    parent.sort_unstable();
    if union != parent {
        diags.push(Diagnostic::file_level(
            TREE,
            Rule::A4TsetCover,
            format!(
                "children of {id} cover {} of its {} tuples",
                union.iter().filter(|r| parent.binary_search(r).is_ok()).count(),
                parent.len()
            ),
        ));
    }
}

/// A5: every row of `id` satisfies each label on the path root→id.
fn check_label_path(tree: &CategoryTree, id: NodeId, diags: &mut Vec<Diagnostic>) {
    let path = tree.path_labels(id);
    if path.is_empty() {
        return;
    }
    let node = tree.node(id);
    for &row in &node.tset {
        if let Some(label) = path.iter().find(|l| !l.matches_row(tree.relation(), row)) {
            diags.push(Diagnostic::file_level(
                TREE,
                Rule::A5LabelPath,
                format!(
                    "row {row} of {id} violates the path label on attribute {:?}",
                    label.attr
                ),
            ));
            break; // one finding per node keeps the report readable
        }
    }
}

/// Audit a CostAll report against `tree`: A6 sign/finiteness on every
/// node plus the A7 brute-force Eq. 1 comparison.
pub fn audit_cost_all(tree: &CategoryTree, report: &CostReport, label_cost: f64) -> Vec<Diagnostic> {
    let mut diags = audit_cost_signs(tree, report, "CostAll");
    if report.len() != tree.node_count() {
        return diags; // size mismatch already reported; indices unsafe
    }
    for &id in &tree.dfs() {
        let expected = brute_force_cost_all(tree, id, label_cost);
        let got = report.cost(id);
        if (got - expected).abs() > COST_TOLERANCE || got.is_nan() != expected.is_nan() {
            diags.push(Diagnostic::file_level(
                TREE,
                Rule::A7CostEq1,
                format!(
                    "CostAll({id}) = {got} but brute-force Eq. 1 gives {expected} \
                     (|Δ| > {COST_TOLERANCE})"
                ),
            ));
        }
    }
    diags
}

/// Audit a CostOne report: A6 sign/finiteness only (Eq. 2 has no
/// independent re-evaluation here; its sanity bound is CostOne ≤
/// CostAll, checked by the caller when both reports exist).
pub fn audit_cost_one(tree: &CategoryTree, report: &CostReport) -> Vec<Diagnostic> {
    audit_cost_signs(tree, report, "CostOne")
}

fn audit_cost_signs(tree: &CategoryTree, report: &CostReport, what: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if report.len() != tree.node_count() {
        diags.push(Diagnostic::file_level(
            TREE,
            Rule::A6CostSign,
            format!(
                "{what} report covers {} nodes, tree has {}",
                report.len(),
                tree.node_count()
            ),
        ));
        return diags;
    }
    for &id in &tree.dfs() {
        let c = report.cost(id);
        if !c.is_finite() || c < 0.0 {
            diags.push(Diagnostic::file_level(
                TREE,
                Rule::A6CostSign,
                format!("{what}({id}) = {c}, must be finite and ≥ 0"),
            ));
        }
    }
    diags
}

/// Independent Eq. 1 evaluation by direct recursion (no shared code
/// with `qcat_core::cost::cost_all`, which folds a DFS vector).
fn brute_force_cost_all(tree: &CategoryTree, id: NodeId, label_cost: f64) -> f64 {
    let node = tree.node(id);
    let tuples = node.tuple_count() as f64;
    if node.is_leaf() {
        return tuples;
    }
    let n = node.children.len() as f64;
    let explore: f64 = node
        .children
        .iter()
        .map(|&c| tree.node(c).p_explore * brute_force_cost_all(tree, c, label_cost))
        .sum();
    node.p_showtuples * tuples + (1.0 - node.p_showtuples) * (label_cost * n + explore)
}

/// Run the full audit: structure (A1–A5) plus freshly evaluated
/// CostAll/CostOne reports (A6–A7) at label cost `label_cost` and
/// CostOne fraction `frac`.
pub fn audit(tree: &CategoryTree, label_cost: f64, frac: f64) -> Vec<Diagnostic> {
    let mut diags = audit_tree(tree);
    let all = qcat_core::cost::cost_all(tree, label_cost);
    let one = qcat_core::cost::cost_one(tree, label_cost, frac);
    diags.extend(audit_cost_all(tree, &all, label_cost));
    diags.extend(audit_cost_one(tree, &one));
    // Cross-model sanity: finding one tuple is no harder than all.
    if frac <= 1.0 && one.total() > all.total() + COST_TOLERANCE {
        diags.push(Diagnostic::file_level(
            TREE,
            Rule::A6CostSign,
            format!(
                "CostOne(root) = {} exceeds CostAll(root) = {} at frac = {frac}",
                one.total(),
                all.total()
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_core::label::CategoryLabel;
    use qcat_core::tree::NodeId;
    use qcat_data::{AttrId, AttrType, Field, Relation, RelationBuilder, Schema};
    use qcat_sql::NumericRange;

    /// Relation with one numeric attribute, rows valued by index.
    fn numeric_relation(n: usize) -> Relation {
        let schema = Schema::new(vec![
            Field::new("price", AttrType::Float),
            Field::new("sqft", AttrType::Float),
        ])
        .expect("schema");
        let mut b = RelationBuilder::with_capacity(schema, n);
        for i in 0..n {
            b.push_row(&[(i as f64).into(), ((i % 5) as f64).into()])
                .expect("row");
        }
        b.finish().expect("relation")
    }

    /// A valid two-level tree over 20 rows: root → [0,10) (split by
    /// sqft into two grandchildren) and [10,20).
    fn valid_tree() -> CategoryTree {
        let rel = numeric_relation(20);
        let mut t = CategoryTree::new(rel, (0..20).collect());
        t.push_level(AttrId(0));
        let a = t.add_child(
            NodeId::ROOT,
            CategoryLabel::range(AttrId(0), NumericRange::half_open(0.0, 10.0)),
            (0..10).collect(),
            0.7,
        );
        t.add_child(
            NodeId::ROOT,
            CategoryLabel::range(AttrId(0), NumericRange::closed(10.0, 19.0)),
            (10..20).collect(),
            0.3,
        );
        t.push_level(AttrId(1));
        // sqft = row % 5: rows 0,1,5,6 have sqft < 2, the rest 2..=4.
        t.add_child(
            a,
            CategoryLabel::range(AttrId(1), NumericRange::half_open(0.0, 2.0)),
            vec![0, 1, 5, 6],
            0.5,
        );
        t.add_child(
            a,
            CategoryLabel::range(AttrId(1), NumericRange::closed(2.0, 4.0)),
            vec![2, 3, 4, 7, 8, 9],
            0.5,
        );
        t.set_p_showtuples(NodeId::ROOT, 0.3);
        t.set_p_showtuples(a, 0.6);
        t
    }

    /// A smaller, exactly-valid tree used by most tests: one level,
    /// two leaves.
    fn flat_tree() -> CategoryTree {
        let rel = numeric_relation(10);
        let mut t = CategoryTree::new(rel, (0..10).collect());
        t.push_level(AttrId(0));
        t.add_child(
            NodeId::ROOT,
            CategoryLabel::range(AttrId(0), NumericRange::half_open(0.0, 6.0)),
            (0..6).collect(),
            0.8,
        );
        t.add_child(
            NodeId::ROOT,
            CategoryLabel::range(AttrId(0), NumericRange::closed(6.0, 9.0)),
            (6..10).collect(),
            0.2,
        );
        t.set_p_showtuples(NodeId::ROOT, 0.25);
        t
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn valid_tree_audits_clean() {
        let t = flat_tree();
        assert_eq!(audit(&t, 1.0, 0.5), vec![]);
    }

    #[test]
    fn a1_probability_out_of_range() {
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[0];
        t.raw_node_mut(kid).p_explore = 1.5;
        assert!(ids(&audit_tree(&t)).contains(&"A1"));
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[0];
        t.raw_node_mut(kid).p_explore = f64::NAN;
        assert!(ids(&audit_tree(&t)).contains(&"A1"));
    }

    #[test]
    fn a2_leaf_pw_must_be_one() {
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[1];
        t.raw_node_mut(kid).p_showtuples = 0.9;
        let diags = audit_tree(&t);
        assert_eq!(ids(&diags), vec!["A2"]);
        assert!(diags[0].message.contains("Pw"), "{}", diags[0].message);
    }

    #[test]
    fn a3_overlapping_siblings() {
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[1];
        // Row 5 already belongs to the first child [0,6).
        t.raw_node_mut(kid).tset.push(5);
        let diags = audit_tree(&t);
        // Overlap also breaks exact cover and the second child's
        // label (row 5 < 6.0), so A3 must be present; the others may
        // fire too.
        assert!(ids(&diags).contains(&"A3"), "{diags:?}");
    }

    #[test]
    fn a4_children_must_cover() {
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[1];
        t.raw_node_mut(kid).tset.pop();
        let diags = audit_tree(&t);
        assert_eq!(ids(&diags), vec!["A4"]);
    }

    #[test]
    fn a5_label_conjunction() {
        let mut t = flat_tree();
        let kid = t.node(NodeId::ROOT).children[0];
        // Swap in a row that violates the child's own range label.
        t.raw_node_mut(kid).tset[0] = 9;
        let diags = audit_tree(&t);
        assert!(ids(&diags).contains(&"A5"), "{diags:?}");
    }

    #[test]
    fn a6_negative_and_nonfinite_costs() {
        let t = flat_tree();
        let mut costs = vec![1.0; t.node_count()];
        costs[1] = -2.0;
        let bad = CostReport::from_costs(costs);
        let diags = audit_cost_one(&t, &bad);
        assert_eq!(ids(&diags), vec!["A6"]);
        let nan = CostReport::from_costs(vec![f64::NAN; t.node_count()]);
        assert_eq!(
            audit_cost_one(&t, &nan).len(),
            t.node_count(),
            "every NaN entry reported"
        );
        // Size mismatch is also A6.
        let short = CostReport::from_costs(vec![1.0]);
        assert_eq!(ids(&audit_cost_one(&t, &short)), vec!["A6"]);
    }

    #[test]
    fn a7_corrupted_cost_all_detected() {
        let t = flat_tree();
        let good = qcat_core::cost::cost_all(&t, 1.0);
        assert_eq!(audit_cost_all(&t, &good, 1.0), vec![]);
        let mut costs: Vec<f64> = (0..t.node_count())
            .map(|i| good.cost(NodeId(i as u32)))
            .collect();
        costs[0] += 1e-6; // outside the 1e-9 tolerance
        let bad = CostReport::from_costs(costs);
        let diags = audit_cost_all(&t, &bad, 1.0);
        assert_eq!(ids(&diags), vec!["A7"]);
        assert!(diags[0].message.contains("brute-force"), "{}", diags[0].message);
    }

    #[test]
    fn a7_tolerates_rounding_noise() {
        let t = flat_tree();
        let good = qcat_core::cost::cost_all(&t, 1.0);
        let jitter: Vec<f64> = (0..t.node_count())
            .map(|i| good.cost(NodeId(i as u32)) + 1e-12)
            .collect();
        assert_eq!(audit_cost_all(&t, &CostReport::from_costs(jitter), 1.0), vec![]);
    }

    #[test]
    fn deep_tree_audits_clean_and_brute_force_agrees() {
        let t = valid_tree();
        assert_eq!(audit(&t, 2.0, 0.5), vec![]);
        let report = qcat_core::cost::cost_all(&t, 2.0);
        for &id in &t.dfs() {
            assert!(
                (report.cost(id) - brute_force_cost_all(&t, id, 2.0)).abs() <= COST_TOLERANCE
            );
        }
    }

    #[test]
    fn audit_clean_across_parameters() {
        let t = flat_tree();
        for label_cost in [0.0, 0.25, 1.0, 5.0] {
            for frac in [0.1, 0.5, 1.0] {
                assert_eq!(audit(&t, label_cost, frac), vec![], "K={label_cost} frac={frac}");
            }
        }
    }
}
