//! A lightweight item parser: turns a token stream into a
//! workspace-wide symbol table of function definitions.
//!
//! This is deliberately not a full parser. A single linear pass
//! tracks brace-scoped contexts (`mod`, `impl`, `fn`, plain blocks)
//! and records, for every `fn`, its name, enclosing `impl` type,
//! whether it takes `self`, its parameter names, its return-type and
//! body token ranges, and whether it is test code (a `#[test]`-family
//! attribute or an enclosing `#[cfg(test)]` module). The call-graph
//! and concurrency rules ([`crate::callgraph`], [`crate::conc`])
//! consume these records; anything the heuristics cannot see (macros
//! that define functions, trait default methods dispatched
//! dynamically) is simply absent, which errs toward missing edges,
//! never toward inventing them.

use crate::lexer::{lex, TokKind, Token};

/// One function definition found in a source file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Crate the file belongs to (package name, e.g. `qcat-serve`).
    pub krate: String,
    /// Index into [`SymbolTable::files`].
    pub file: usize,
    /// The function's bare name.
    pub name: String,
    /// Enclosing `impl` type, if any (`impl Server { fn f … }` →
    /// `Server`; `impl Display for Server` → `Server`).
    pub impl_type: Option<String>,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameter names, in order (patterns beyond plain `name: T`
    /// are skipped).
    pub params: Vec<String>,
    /// Token range `[start, end)` of the return-type tokens (between
    /// the parameter list and the body); empty when none.
    pub ret: (usize, usize),
    /// Token range `[start, end)` of the body, including the outer
    /// braces; `(0, 0)` for bodyless signatures.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Test code: `#[test]`-family attribute or inside `#[cfg(test)]`.
    pub is_test: bool,
}

/// One parsed source file.
#[derive(Debug)]
pub struct FileSyms {
    /// Repo-relative path, for diagnostics.
    pub path: String,
    /// Owning crate (package name).
    pub krate: String,
    /// The file's full token stream.
    pub tokens: Vec<Token>,
}

/// Function definitions across a set of files, indexed by name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Parsed files; [`FnDef::file`] indexes into this.
    pub files: Vec<FileSyms>,
    /// Every function definition found.
    pub fns: Vec<FnDef>,
    /// Bare name → indices into [`SymbolTable::fns`].
    pub by_name: std::collections::HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Parse `file` (already lexed or not) into the table.
    pub fn add_file(&mut self, path: &str, krate: &str, source: &str) {
        let tokens = lex(source).tokens;
        self.add_lexed(path, krate, tokens);
    }

    /// Add a file from an existing token stream.
    pub fn add_lexed(&mut self, path: &str, krate: &str, tokens: Vec<Token>) {
        let file_idx = self.files.len();
        let defs = parse_fns(&tokens, krate, file_idx);
        for def in defs {
            self.by_name
                .entry(def.name.clone())
                .or_default()
                .push(self.fns.len());
            self.fns.push(def);
        }
        self.files.push(FileSyms {
            path: path.to_string(),
            krate: krate.to_string(),
            tokens,
        });
    }

    /// The token stream a definition's ranges index into.
    pub fn tokens_of(&self, def: &FnDef) -> &[Token] {
        &self.files[def.file].tokens
    }

    /// The body tokens of a definition (empty for signatures).
    pub fn body_of(&self, def: &FnDef) -> &[Token] {
        &self.files[def.file].tokens[def.body.0..def.body.1]
    }
}

/// What encloses the current position during the parse.
#[derive(Debug)]
enum Ctx {
    Mod { is_test: bool },
    Impl { ty: Option<String> },
    Fn,
    Block,
}

fn parse_fns(toks: &[Token], krate: &str, file_idx: usize) -> Vec<FnDef> {
    let mut defs = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            // Outer attribute `#[…]`: scan to the matching bracket,
            // noting `test` (covers #[test], #[cfg(test)],
            // #[cfg(all(test, …))]; string contents are opaque so a
            // feature string cannot fake it).
            (TokKind::Punct, "#") if peek_is(toks, i + 1, "[") => {
                let (end, has_test) = scan_attr(toks, i + 1);
                pending_test |= has_test;
                i = end;
            }
            (TokKind::Ident, "mod") => {
                // `mod name {` opens a module scope; `mod name;` is
                // an out-of-line module.
                let mut j = i + 1;
                while j < toks.len()
                    && !matches!(toks[j].text.as_str(), "{" | ";")
                {
                    j += 1;
                }
                if peek_is(toks, j, "{") {
                    let parent_test = enclosing_test(&stack);
                    stack.push(Ctx::Mod {
                        is_test: pending_test || parent_test,
                    });
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                pending_test = false;
            }
            (TokKind::Ident, "impl") => {
                let (j, ty) = scan_impl_header(toks, i + 1);
                if peek_is(toks, j, "{") {
                    stack.push(Ctx::Impl { ty });
                    i = j + 1;
                } else {
                    i = j; // `impl Trait for Type;`-style — not ours
                }
                pending_test = false;
            }
            (TokKind::Ident, "fn") => {
                let is_test = pending_test || enclosing_test(&stack);
                pending_test = false;
                let impl_type = stack.iter().rev().find_map(|c| match c {
                    Ctx::Impl { ty } => Some(ty.clone()),
                    _ => None,
                });
                match scan_fn(toks, i, krate, file_idx, impl_type.flatten(), is_test) {
                    Some((def, Some(body_open))) => {
                        defs.push(def);
                        stack.push(Ctx::Fn);
                        i = body_open + 1;
                    }
                    Some((def, None)) => {
                        // Signature only; resume past its `;`.
                        let resume = def.ret.1 + 1;
                        defs.push(def);
                        i = resume;
                    }
                    None => i += 1,
                }
            }
            (TokKind::Punct, "{") => {
                stack.push(Ctx::Block);
                pending_test = false;
                i += 1;
            }
            (TokKind::Punct, "}") => {
                stack.pop();
                pending_test = false;
                i += 1;
            }
            (TokKind::Ident, "struct" | "enum" | "trait" | "use" | "const" | "static" | "type")
            | (TokKind::Punct, ";") => {
                pending_test = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    defs
}

fn peek_is(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

fn enclosing_test(stack: &[Ctx]) -> bool {
    stack
        .iter()
        .any(|c| matches!(c, Ctx::Mod { is_test: true }))
}

/// Scan an attribute starting at its `[`. Returns (index past the
/// closing `]`, whether the attribute mentions the ident `test`).
fn scan_attr(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, has_test);
                }
            }
            "test" if toks[i].kind == TokKind::Ident => has_test = true,
            _ => {}
        }
        i += 1;
    }
    (i, has_test)
}

/// Scan from just after `impl` to the body `{`. Returns (index of the
/// `{`, the implemented type). For `impl Trait for Type`, the type
/// after `for` wins.
fn scan_impl_header(toks: &[Token], start: usize) -> (usize, Option<String>) {
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => {
                // `->` in an `Fn(..) -> R` bound is not a closer.
                if !(i > 0 && toks[i - 1].text == "-") {
                    angle -= 1;
                }
            }
            (TokKind::Punct, "{") if angle <= 0 => return (i, ty),
            (TokKind::Punct, ";") => return (i, ty),
            (TokKind::Ident, "for") if angle <= 0 => ty = None,
            (TokKind::Ident, "where") if angle <= 0 => {
                // Type already fixed; skip ahead to the body.
                while i < toks.len() && toks[i].text != "{" {
                    i += 1;
                }
                return (i, ty);
            }
            (TokKind::Ident, name) if angle <= 0 => {
                // Later path segments overwrite (`foo::Bar` → Bar);
                // the first ident after `for` wins likewise.
                if ty.is_none() || peek_is(toks, i.wrapping_sub(1), ":") {
                    ty = Some(name.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (i, ty)
}

/// Parse one `fn` starting at the `fn` keyword. Returns the def and
/// the index of the body's `{` (None for bodyless signatures).
fn scan_fn(
    toks: &[Token],
    fn_kw: usize,
    krate: &str,
    file_idx: usize,
    impl_type: Option<String>,
    is_test: bool,
) -> Option<(FnDef, Option<usize>)> {
    let name_tok = toks.get(fn_kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Skip generics to the parameter list.
    let mut i = fn_kw + 2;
    if peek_is(toks, i, "<") {
        let mut angle = 0i32;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "<" => angle += 1,
                ">" if toks[i - 1].text != "-" => {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if !peek_is(toks, i, "(") {
        return None;
    }
    // Parameters: idents at paren depth 1 immediately followed by `:`
    // are parameter names; a bare `self` is the receiver.
    let mut params = Vec::new();
    let mut has_self = false;
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            "self" if depth == 1 && toks[i].kind == TokKind::Ident => has_self = true,
            _ if depth == 1 && toks[i].kind == TokKind::Ident && peek_is(toks, i + 1, ":") => {
                if toks[i].text != "mut" {
                    params.push(toks[i].text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Return type: everything to the body `{` or terminating `;`,
    // skipping angle-bracketed and where-clause internals only as far
    // as brace detection needs (a `{` inside a return type position
    // does not occur in this workspace's style).
    let ret_start = i;
    let mut angle = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => angle += 1,
            ">" if i > 0 && toks[i - 1].text != "-" => angle -= 1,
            "{" if angle <= 0 => {
                let ret = (ret_start, i);
                let body_end = match_brace(toks, i);
                let def = FnDef {
                    krate: krate.to_string(),
                    file: file_idx,
                    name,
                    impl_type,
                    has_self,
                    params,
                    ret,
                    body: (i, body_end),
                    line: toks[fn_kw].line,
                    is_test,
                };
                return Some((def, Some(i)));
            }
            ";" if angle <= 0 => {
                let def = FnDef {
                    krate: krate.to_string(),
                    file: file_idx,
                    name,
                    impl_type,
                    has_self,
                    params,
                    ret: (ret_start, i),
                    body: (0, 0),
                    line: toks[fn_kw].line,
                    is_test,
                };
                return Some((def, None));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index just past the brace matching the `{` at `open`.
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        t.add_file("t.rs", "test-crate", src);
        t
    }

    #[test]
    fn finds_free_and_method_fns() {
        let t = table(
            "fn free(a: u32, b: u32) -> u32 { a + b }\n\
             struct S;\n\
             impl S {\n    fn method(&self, x: u32) {}\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self, f: &mut F) -> R { todo!() }\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = t
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.impl_type.as_deref(), d.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("method", Some("S"), true),
                ("fmt", Some("S"), true),
            ]
        );
        assert_eq!(t.fns[0].params, vec!["a", "b"]);
        assert_eq!(t.fns[1].params, vec!["x"]);
    }

    #[test]
    fn generic_fns_and_impls() {
        let t = table(
            "fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                 mutex.lock().unwrap_or_else(|e| e.into_inner())\n\
             }\n\
             impl<V: Clone> EpochLru<V> {\n    fn get(&mut self, key: &str) -> Option<V> { None }\n}\n",
        );
        assert_eq!(t.fns[0].name, "lock_recover");
        assert_eq!(t.fns[0].params, vec!["mutex"]);
        let ret: Vec<&str> = t.files[0].tokens[t.fns[0].ret.0..t.fns[0].ret.1]
            .iter()
            .map(|x| x.text.as_str())
            .collect();
        assert!(ret.contains(&"MutexGuard"), "{ret:?}");
        assert_eq!(t.fns[1].impl_type.as_deref(), Some("EpochLru"));
        assert!(t.fns[1].has_self);
    }

    #[test]
    fn test_regions_are_marked() {
        let t = table(
            "fn live() {}\n\
             #[test]\nfn unit() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n\
             fn after() {}\n",
        );
        let flags: Vec<(&str, bool)> = t
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.is_test))
            .collect();
        assert_eq!(
            flags,
            vec![
                ("live", false),
                ("unit", true),
                ("helper", true),
                ("t", true),
                ("after", false),
            ]
        );
    }

    #[test]
    fn attr_between_items_does_not_leak() {
        let t = table("#[derive(Debug)]\nstruct S;\nfn live() {}\n");
        assert!(!t.fns[0].is_test);
    }

    #[test]
    fn bodies_cover_nested_braces() {
        let t = table("fn f() {\n    if x {\n        y();\n    }\n}\nfn g() {}\n");
        assert_eq!(t.fns.len(), 2);
        let body: Vec<&str> = t.body_of(&t.fns[0]).iter().map(|x| x.text.as_str()).collect();
        assert!(body.contains(&"y"));
        assert!(!body.contains(&"g"));
    }

    #[test]
    fn where_clause_impl() {
        let t = table("impl<T> Foo<T> where T: Clone {\n    fn go(&self) {}\n}\n");
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("Foo"));
    }
}
