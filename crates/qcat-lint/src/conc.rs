//! Engine 2 rules: cross-file concurrency and budget analysis.
//!
//! Three rules run over the workspace symbol table and call graph
//! ([`crate::syms`], [`crate::callgraph`]):
//!
//! - **L8 lock-order** — every `Mutex`/`RwLock` acquisition (direct
//!   `.lock()`/`.read()`/`.write()`, or through a guard-returning
//!   helper like `lock_recover`) opens a guard scope; acquisitions
//!   nested inside a live scope, directly or through callees, become
//!   edges in a lock-acquisition graph. A cycle — including the
//!   one-lock cycle of re-acquiring a lock already held — means some
//!   schedule can deadlock.
//! - **L9 checkpoint coverage** — inside budget-governed regions
//!   (call-graph descendants of non-test `with_budget` install
//!   sites), every `for` loop over governed collections (rows,
//!   candidates, nodes, …) must reach a `Gas` poll in its body,
//!   directly or via a callee.
//! - **L10 budget-blind allocation** — in the same regions,
//!   collection-allocating calls must be reachable from a
//!   heap-accounting call (`charge_heap`/`heap_bytes`) so
//!   `max_heap_bytes` sees the memory.
//!
//! Lock identity is `(crate, receiver field name)` — `slot.state`
//! and `self.slot.state` are deliberately the same lock, which
//! over-merges distinct locks that share a field name within one
//! crate (the safe direction: more merging means more detected
//! cycles, never fewer).

use crate::callgraph::{resolve, Call, CallGraph};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{TokKind, Token};
use crate::syms::{match_brace, FnDef, SymbolTable};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One source file handed to the semantic engine.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, used in diagnostics.
    pub path: String,
    /// Owning crate (package name, e.g. `qcat-serve`).
    pub krate: String,
    /// Full file contents.
    pub text: String,
}

/// Crates whose loops L9 audits for checkpoint coverage.
const L9_CRATES: &[&str] = &["qcat-exec", "qcat-core", "qcat-pool"];

/// Crates whose allocations L10 audits for heap accounting.
const L10_CRATES: &[&str] = &["qcat-serve", "qcat-exec", "qcat-core", "qcat-pool"];

/// Collection names whose iteration is budget-relevant: data rows,
/// split candidates, and tree nodes scale with the input relation,
/// unlike fixed-size config or schema vectors.
const GOVERNED_NAMES: &[&str] = &[
    "rows",
    "row_ids",
    "candidates",
    "nodes",
    "tuples",
    "items",
    "tset",
];

/// Identifiers that poll the thread-local `Gas`.
const POLL_NAMES: &[&str] = &[
    "checkpoint",
    "charge_rows",
    "charge_nodes",
    "charge_labels",
    "charge_heap",
    "filter_cancellable",
];

/// Identifiers that account heap to the budget.
const HEAP_ACCOUNT_NAMES: &[&str] = &["charge_heap", "heap_bytes"];

/// Run L8–L10 over a set of in-memory sources (fixture entry point).
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut table = SymbolTable::default();
    for f in files {
        table.add_file(&f.path, &f.krate, &f.text);
    }
    analyze_table(&table)
}

/// Run L8–L10 over an already-built symbol table.
pub fn analyze_table(table: &SymbolTable) -> Vec<Diagnostic> {
    let graph = CallGraph::build(table);
    let mut diags = Vec::new();
    lock_order(table, &graph, &mut diags);
    checkpoint_coverage(table, &graph, &mut diags);
    budget_blind_allocs(table, &graph, &mut diags);
    diags
}

// ----------------------------------------------------------------- L8

/// A lock's identity: (crate, field/variable name of the mutex).
type LockId = (String, String);

/// One acquisition event inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    lock: LockId,
    file: usize,
    line: usize,
    tok: usize,
    /// Token index (exclusive) where the guard is dead again.
    scope_end: usize,
}

/// Where a guard-returning helper gets its lock from.
#[derive(Debug, Clone)]
enum GuardSource {
    /// Locks a field of `self` (or another fixed path): identity is
    /// known at the definition.
    Field(LockId),
    /// Locks its first parameter: identity comes from each call site.
    Param,
}

fn lock_order(table: &SymbolTable, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let sources = guard_sources(table, graph);

    // Per-function acquisition events (non-test only — production
    // code never runs under test-only lock patterns).
    let n = table.fns.len();
    let mut acqs: Vec<Vec<Acq>> = vec![Vec::new(); n];
    for f in 0..n {
        if !table.fns[f].is_test {
            acqs[f] = fn_acqs(table, graph, &sources, f);
        }
    }

    // AcqSet(f): locks acquired by f or any callee, with one
    // representative acquisition site each.
    let mut sets: Vec<HashMap<LockId, (usize, usize)>> = acqs
        .iter()
        .map(|list| {
            let mut m = HashMap::new();
            for a in list {
                m.entry(a.lock.clone()).or_insert((a.file, a.line));
            }
            m
        })
        .collect();
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(g) = work.pop() {
        let entries: Vec<(LockId, (usize, usize))> =
            sets[g].iter().map(|(k, v)| (k.clone(), *v)).collect();
        for &f in &graph.callers[g] {
            let mut changed = false;
            for (k, v) in &entries {
                if !sets[f].contains_key(k) {
                    sets[f].insert(k.clone(), *v);
                    changed = true;
                }
            }
            if changed {
                work.push(f);
            }
        }
    }

    // Edges held → acquired, keeping the first witness per pair
    // (BTreeMap so diagnostics come out in a stable order).
    #[allow(clippy::type_complexity)]
    let mut edges: BTreeMap<(LockId, LockId), ((usize, usize), (usize, usize))> = BTreeMap::new();
    for f in 0..n {
        if table.fns[f].is_test {
            continue;
        }
        for a in &acqs[f] {
            // Another acquisition while a's guard is live.
            for b in &acqs[f] {
                if b.tok > a.tok && b.tok < a.scope_end {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(((a.file, a.line), (b.file, b.line)));
                }
            }
            // A call while a's guard is live: everything the callee
            // may acquire is acquired under a.
            for c in &graph.calls[f] {
                if c.tok <= a.tok || c.tok >= a.scope_end {
                    continue;
                }
                for g in resolve(table, Some(&table.fns[f]), c) {
                    for (lock, site) in &sets[g] {
                        edges
                            .entry((a.lock.clone(), lock.clone()))
                            .or_insert(((a.file, a.line), *site));
                    }
                }
            }
        }
    }

    // Self-edges: the same lock acquired while already held.
    let mut reported: HashSet<(LockId, LockId)> = HashSet::new();
    for ((a, b), (s1, s2)) in &edges {
        if a == b {
            let path = table.files[s2.0].path.clone();
            diags.push(Diagnostic::at(
                path,
                s2.1,
                Rule::L8LockOrder,
                format!(
                    "lock `{}` acquired while already held (first acquisition at {}:{}) — self-deadlock",
                    lock_name(a),
                    table.files[s1.0].path,
                    s1.1,
                ),
            ));
            reported.insert((a.clone(), b.clone()));
        }
    }

    // Cycles between distinct locks.
    let mut adj: HashMap<&LockId, Vec<&LockId>> = HashMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut pairs_done: HashSet<(LockId, LockId)> = HashSet::new();
    for ((a, b), (s1, s2)) in &edges {
        if a == b || !reaches(&adj, b, a) {
            continue;
        }
        let key = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if !pairs_done.insert(key) {
            continue;
        }
        let msg = if let Some((r1, r2)) = edges.get(&(b.clone(), a.clone())) {
            format!(
                "lock-order cycle between `{}` and `{}`: {}:{} acquires `{}` while holding `{}` (held since {}:{}), but {}:{} acquires `{}` while holding `{}` (held since {}:{})",
                lock_name(a),
                lock_name(b),
                table.files[s2.0].path,
                s2.1,
                lock_name(b),
                lock_name(a),
                table.files[s1.0].path,
                s1.1,
                table.files[r2.0].path,
                r2.1,
                lock_name(a),
                lock_name(b),
                table.files[r1.0].path,
                r1.1,
            )
        } else {
            format!(
                "lock-order cycle: `{}` (held since {}:{}) is held when `{}` is acquired at {}:{}, and `{}` transitively acquires `{}` again",
                lock_name(a),
                table.files[s1.0].path,
                s1.1,
                lock_name(b),
                table.files[s2.0].path,
                s2.1,
                lock_name(b),
                lock_name(a),
            )
        };
        diags.push(Diagnostic::at(
            table.files[s2.0].path.clone(),
            s2.1,
            Rule::L8LockOrder,
            msg,
        ));
    }
}

fn lock_name(l: &LockId) -> String {
    format!("{}::{}", l.0, l.1)
}

fn reaches<'a>(adj: &HashMap<&'a LockId, Vec<&'a LockId>>, from: &'a LockId, to: &LockId) -> bool {
    let mut seen: HashSet<&LockId> = HashSet::new();
    let mut work = vec![from];
    while let Some(x) = work.pop() {
        if x == to {
            return true;
        }
        if !seen.insert(x) {
            continue;
        }
        if let Some(next) = adj.get(x) {
            work.extend(next.iter().copied());
        }
    }
    false
}

/// Classify guard-returning helpers: a fn whose return type mentions
/// a `*Guard*` ident either locks a fixed field or locks its
/// parameter. Wrappers around wrappers resolve by fixpoint.
fn guard_sources(table: &SymbolTable, graph: &CallGraph) -> Vec<Option<GuardSource>> {
    let n = table.fns.len();
    let guardish: Vec<bool> = table
        .fns
        .iter()
        .map(|d| {
            let toks = table.tokens_of(d);
            toks[d.ret.0..d.ret.1]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("Guard"))
        })
        .collect();
    let mut sources: Vec<Option<GuardSource>> = vec![None; n];
    loop {
        let mut changed = false;
        for f in 0..n {
            if !guardish[f] || sources[f].is_some() {
                continue;
            }
            let def = &table.fns[f];
            let toks = table.tokens_of(def);
            let mut found: Option<GuardSource> = None;
            for c in &graph.calls[f] {
                if is_direct_acq(c, toks) {
                    found = match (&c.recv_last, c.recv_self) {
                        (Some(r), true) if r != "self" => {
                            Some(GuardSource::Field((def.krate.clone(), r.clone())))
                        }
                        (Some(r), false) if def.params.contains(r) => Some(GuardSource::Param),
                        (Some(r), false) => {
                            Some(GuardSource::Field((def.krate.clone(), r.clone())))
                        }
                        _ => None,
                    };
                    if found.is_some() {
                        break;
                    }
                } else {
                    // A call to an already-classified helper.
                    for g in resolve(table, Some(def), c) {
                        if let Some(s) = &sources[g] {
                            found = match s {
                                GuardSource::Field(id) => Some(GuardSource::Field(id.clone())),
                                GuardSource::Param => arg_guard_source(def, c),
                            };
                            break;
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
            }
            if found.is_some() {
                sources[f] = found;
                changed = true;
            }
        }
        if !changed {
            return sources;
        }
    }
}

/// For a call to a `Param`-sourced helper: where does the argument's
/// lock live from the caller's point of view?
fn arg_guard_source(caller: &FnDef, c: &Call) -> Option<GuardSource> {
    match (&c.arg0_last, c.arg0_self) {
        (Some(r), true) if r != "self" => {
            Some(GuardSource::Field((caller.krate.clone(), r.clone())))
        }
        (Some(r), false) if caller.params.contains(r) => Some(GuardSource::Param),
        (Some(r), false) => Some(GuardSource::Field((caller.krate.clone(), r.clone()))),
        _ => None,
    }
}

/// Direct acquisition: `.lock()` with any args, or an empty-argument
/// `.read()` / `.write()`.
fn is_direct_acq(c: &Call, toks: &[Token]) -> bool {
    if !c.method {
        return false;
    }
    match c.name.as_str() {
        "lock" => true,
        "read" | "write" => toks.get(c.tok + 2).is_some_and(|t| t.text == ")"),
        _ => false,
    }
}

/// Acquisition events with guard scopes for one function.
fn fn_acqs(
    table: &SymbolTable,
    graph: &CallGraph,
    sources: &[Option<GuardSource>],
    f: usize,
) -> Vec<Acq> {
    let def = &table.fns[f];
    let toks = table.tokens_of(def);
    let mut out = Vec::new();
    for c in &graph.calls[f] {
        let lock: Option<LockId> = if is_direct_acq(c, toks) {
            match (&c.recv_last, c.recv_self) {
                (Some(r), _) if r != "self" => Some((def.krate.clone(), r.clone())),
                _ => None,
            }
        } else {
            let mut found = None;
            for g in resolve(table, Some(def), c) {
                match &sources[g] {
                    Some(GuardSource::Field(id)) => {
                        found = Some(id.clone());
                        break;
                    }
                    Some(GuardSource::Param) => {
                        if let (Some(r), _) = (&c.arg0_last, c.arg0_self) {
                            if r != "self" {
                                found = Some((def.krate.clone(), r.clone()));
                            }
                        }
                        break;
                    }
                    None => {}
                }
            }
            found
        };
        if let Some(lock) = lock {
            out.push(Acq {
                lock,
                file: def.file,
                line: toks[c.tok].line,
                tok: c.tok,
                scope_end: guard_scope_end(toks, def, c.tok),
            });
        }
    }
    out
}

/// Index just past the paren matching the `(` at `open`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// How long the guard produced by the acquisition at `acq` lives, as
/// a token index (exclusive).
///
/// Three shapes, mirroring Rust temporary-scope rules closely enough
/// for this workspace:
/// - **scrutinee temporary** (`if let … = x.lock()…`, `while`,
///   `match x.lock()…`): lives through the whole statement including
///   the `else` chain;
/// - **let-bound guard** (`let g = lock_recover(&m);` — the
///   acquisition is the entire right-hand side): lives to the end of
///   the enclosing block, or an earlier top-level `drop(g)`;
/// - **plain temporary** (`x.lock().field.get(…)` projected or used
///   in a larger statement): lives to the end of the statement.
fn guard_scope_end(toks: &[Token], def: &FnDef, acq: usize) -> usize {
    // Statement start: nearest `;`, `{` or `}` going backwards.
    let mut s = acq;
    while s > def.body.0 && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }

    // Scrutinee position: between an `if`/`while`/`match` keyword and
    // its body brace.
    if matches!(toks[s].text.as_str(), "if" | "while" | "match") {
        let open = head_brace(toks, s, def.body.1);
        if acq < open {
            let mut end = match_brace(toks, open);
            while end < def.body.1 && toks[end].text == "else" {
                let next_open = head_brace(toks, end + 1, def.body.1);
                end = match_brace(toks, next_open);
            }
            return end;
        }
    }

    // Let binding whose RHS is exactly the acquisition expression
    // (allowing a trailing recovery combinator).
    if toks[s].text == "let" {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.text == "mut") {
            k += 1;
        }
        let name = toks
            .get(k)
            .filter(|t| t.kind == TokKind::Ident && peek_text(toks, k + 1) == Some("="))
            .map(|t| t.text.clone());
        // End of the acquisition call expression.
        let mut after = match_paren(toks, acq + 1);
        while peek_text(toks, after) == Some(".")
            && matches!(
                peek_text(toks, after + 1),
                Some("unwrap" | "expect" | "unwrap_or_else")
            )
            && peek_text(toks, after + 2) == Some("(")
        {
            after = match_paren(toks, after + 2);
        }
        if peek_text(toks, after) == Some(";") {
            // Bound guard: enclosing block end, or early drop(name).
            let mut depth = 0i32;
            let mut j = after + 1;
            while j < def.body.1 {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        if depth == 0 {
                            return j;
                        }
                        depth -= 1;
                    }
                    "drop"
                        if depth == 0
                            && toks[j].kind == TokKind::Ident
                            && peek_text(toks, j + 1) == Some("(")
                            && name.is_some()
                            && peek_text(toks, j + 2) == name.as_deref()
                            && peek_text(toks, j + 3) == Some(")") =>
                    {
                        return j;
                    }
                    _ => {}
                }
                j += 1;
            }
            return def.body.1;
        }
    }

    // Plain temporary: to the end of the statement.
    let mut depth = 0i32;
    let mut j = acq;
    while j < def.body.1 {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    def.body.1
}

/// The `{` opening the body of the `if`/`while`/`match`/`for`/`else`
/// construct headed at `start` (paren/bracket-depth 0).
fn head_brace(toks: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

fn peek_text(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

// ------------------------------------------------------------ L9/L10

/// Budget-governed region: call-graph descendants of every non-test
/// fn that installs a budget (`with_budget` in its body), excluding
/// the budget machinery itself.
fn budget_region(table: &SymbolTable, graph: &CallGraph) -> Vec<bool> {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            !d.is_test
                && d.krate != "qcat-fault"
                && body_has_ident(table, d, "with_budget")
        })
        .map(|(i, _)| i)
        .collect();
    graph.reachable(&roots)
}

fn body_has_ident(table: &SymbolTable, def: &FnDef, name: &str) -> bool {
    table
        .body_of(def)
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == name)
}

/// Does `[start, end)` lexically contain a `Gas` poll?
fn has_poll_range(toks: &[Token], start: usize, end: usize) -> bool {
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if POLL_NAMES.contains(&t.text.as_str()) {
            return true;
        }
        // `.check()` with no arguments — the bare poll.
        if t.text == "check"
            && i > start
            && toks[i - 1].text == "."
            && peek_text(toks, i + 1) == Some("(")
            && peek_text(toks, i + 2) == Some(")")
        {
            return true;
        }
    }
    false
}

fn checkpoint_coverage(table: &SymbolTable, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let region = budget_region(table, graph);
    let seed: Vec<bool> = table
        .fns
        .iter()
        .map(|d| {
            let toks = table.tokens_of(d);
            has_poll_range(toks, d.body.0, d.body.1)
        })
        .collect();
    let polls = graph.any_callee_fixpoint(&seed);

    for (f, def) in table.fns.iter().enumerate() {
        if def.is_test || !region[f] || !L9_CRATES.contains(&def.krate.as_str()) {
            continue;
        }
        let toks = table.tokens_of(def);
        let mut i = def.body.0;
        while i < def.body.1 {
            let t = &toks[i];
            if !(t.kind == TokKind::Ident && t.text == "for") {
                i += 1;
                continue;
            }
            let Some((in_idx, open)) = for_loop_head(toks, i, def.body.1) else {
                i += 1;
                continue;
            };
            if governed_iter(toks, in_idx + 1, open) {
                let end = match_brace(toks, open);
                let covered = has_poll_range(toks, open, end)
                    || graph.calls[f].iter().any(|c| {
                        c.tok > open
                            && c.tok < end
                            && resolve(table, Some(def), c).iter().any(|&g| polls[g])
                    });
                if !covered {
                    diags.push(Diagnostic::at(
                        table.files[def.file].path.clone(),
                        t.line,
                        Rule::L9CheckpointGap,
                        format!(
                            "loop in `{}` iterates a governed collection but reaches no Gas poll; add `checkpoint()`/`charge_*` in the body (or call a polling helper)",
                            def.name
                        ),
                    ));
                }
            }
            // Descend into the loop body for nested loops either way.
            i = open + 1;
        }
    }
}

/// From a `for` keyword, locate the `in` keyword and the body `{`.
/// Returns None for non-loop uses (`for<'a>` bounds).
fn for_loop_head(toks: &[Token], for_kw: usize, end: usize) -> Option<(usize, usize)> {
    if peek_text(toks, for_kw + 1) == Some("<") {
        return None;
    }
    let mut depth = 0i32;
    let mut i = for_kw + 1;
    let mut in_idx = None;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokKind::Ident && in_idx.is_none() => {
                in_idx = Some(i);
            }
            "{" if depth == 0 => {
                return in_idx.map(|idx| (idx, i));
            }
            ";" | "}" => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Does the iteration expression mention a governed collection that
/// is not a field of `self`? (`for node in &self.nodes` is the
/// owner's own traversal; `for &row in &node.tset` iterates data.)
fn governed_iter(toks: &[Token], start: usize, end: usize) -> bool {
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !GOVERNED_NAMES.contains(&t.text.as_str()) {
            continue;
        }
        let self_field =
            i >= 2 && toks[i - 1].text == "." && toks[i - 2].text == "self";
        if !self_field {
            return true;
        }
    }
    false
}

fn budget_blind_allocs(table: &SymbolTable, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let region = budget_region(table, graph);

    // Heap-accounting coverage: seeded by non-test fns that mention
    // charge_heap/heap_bytes, propagated caller → callee through
    // non-test callers only (a test calling charge_heap must not
    // launder coverage into production code).
    let n = table.fns.len();
    let mut covered: Vec<bool> = table
        .fns
        .iter()
        .map(|d| {
            !d.is_test
                && HEAP_ACCOUNT_NAMES
                    .iter()
                    .any(|name| body_has_ident(table, d, name))
        })
        .collect();
    let mut work: Vec<usize> = (0..n).filter(|&f| covered[f]).collect();
    while let Some(c) = work.pop() {
        if table.fns[c].is_test {
            continue;
        }
        for &g in &graph.callees[c] {
            if !covered[g] {
                covered[g] = true;
                work.push(g);
            }
        }
    }

    for (f, def) in table.fns.iter().enumerate() {
        if def.is_test
            || !region[f]
            || covered[f]
            || !L10_CRATES.contains(&def.krate.as_str())
        {
            continue;
        }
        let toks = table.tokens_of(def);
        let loops = loop_ranges(toks, def.body.0, def.body.1);
        for c in &graph.calls[f] {
            let kind = match c.name.as_str() {
                "with_capacity" => Some("with_capacity"),
                "insert" if c.method => Some("insert"),
                "push" if c.method && loops.iter().any(|&(s, e)| c.tok > s && c.tok < e) => {
                    Some("push in a loop")
                }
                _ => None,
            };
            if let Some(kind) = kind {
                diags.push(Diagnostic::at(
                    table.files[def.file].path.clone(),
                    toks[c.tok].line,
                    Rule::L10BudgetBlindAlloc,
                    format!(
                        "`{}` in `{}` allocates inside a budget-governed region with no heap accounting on any path; charge it via `charge_heap`/`heap_bytes`",
                        kind, def.name
                    ),
                ));
            }
        }
    }
}

/// Body token ranges of every `for`/`while`/`loop` body in
/// `[start, end)`.
fn loop_ranges(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            if t.text == "for" && peek_text(toks, i + 1) == Some("<") {
                i += 1;
                continue;
            }
            let open = head_brace(toks, i + 1, end);
            if toks.get(open).is_some_and(|t| t.text == "{") {
                out.push((open, match_brace(toks, open)));
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(p, k, s)| SourceFile {
                path: p.to_string(),
                krate: k.to_string(),
                text: s.to_string(),
            })
            .collect();
        analyze_sources(&files)
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn l8_detects_ab_ba_inversion() {
        let diags = run(&[(
            "x.rs",
            "c",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn lock_a(&self) -> MutexGuard<'_, u32> { self.a.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn lock_b(&self) -> MutexGuard<'_, u32> { self.b.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn ab(&self) {\n    let g = self.lock_a();\n    let h = self.lock_b();\n}\n\
                 fn ba(&self) {\n    let g = self.lock_b();\n    let h = self.lock_a();\n}\n\
             }\n",
        )]);
        assert_eq!(ids(&diags), vec!["L8"], "{diags:?}");
        let msg = &diags[0].message;
        assert!(msg.contains("c::a") && msg.contains("c::b"), "{msg}");
    }

    #[test]
    fn l8_guard_dropped_before_reacquire_is_clean() {
        let diags = run(&[(
            "x.rs",
            "c",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn lock_a(&self) -> MutexGuard<'_, u32> { self.a.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn lock_b(&self) -> MutexGuard<'_, u32> { self.b.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn ab(&self) {\n    let g = self.lock_a();\n    drop(g);\n    let h = self.lock_b();\n}\n\
                 fn ba(&self) {\n    let g = self.lock_b();\n    drop(g);\n    let h = self.lock_a();\n}\n\
             }\n",
        )]);
        assert_eq!(diags, vec![], "{diags:?}");
    }

    #[test]
    fn l8_scrutinee_temporary_self_deadlock() {
        // The PR 4 serve-cache shape: a lock acquired in a match
        // scrutinee is still held inside the arms.
        let diags = run(&[(
            "x.rs",
            "c",
            "struct S { caches: Mutex<u32> }\n\
             impl S {\n\
                 fn lock_caches(&self) -> MutexGuard<'_, u32> { self.caches.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn f(&self) {\n\
                     match self.lock_caches().checked_add(1) {\n\
                         Some(_) => { let g = self.lock_caches(); }\n\
                         None => {}\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(ids(&diags), vec!["L8"], "{diags:?}");
        assert!(diags[0].message.contains("self-deadlock"), "{}", diags[0].message);
    }

    #[test]
    fn l8_bound_hit_released_before_arms_is_clean() {
        // The PR 4 fix shape: bind the cache-probe result first, so
        // the guard is a statement temporary, dead inside the match.
        let diags = run(&[(
            "x.rs",
            "c",
            "struct S { caches: Mutex<u32> }\n\
             impl S {\n\
                 fn lock_caches(&self) -> MutexGuard<'_, u32> { self.caches.lock().unwrap_or_else(|e| e.into_inner()) }\n\
                 fn f(&self) {\n\
                     let hit = self.lock_caches().checked_add(1);\n\
                     match hit {\n\
                         Some(_) => { let g = self.lock_caches(); }\n\
                         None => {}\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(diags, vec![], "{diags:?}");
    }

    #[test]
    fn l9_flags_unpolled_loop_and_accepts_polled() {
        let diags = run(&[(
            "x.rs",
            "qcat-exec",
            "fn root(gas: &Gas) { qcat_fault::with_budget(gas, || work()); }\n\
             fn work() { bad(); good(); }\n\
             fn bad() {\n    let rows: Vec<u32> = Vec::new();\n    for r in &rows { touch(r); }\n}\n\
             fn good(gas: &Gas) {\n    let rows: Vec<u32> = Vec::new();\n    for r in &rows { gas.checkpoint(); touch(r); }\n}\n\
             fn touch(_r: &u32) {}\n",
        )]);
        assert_eq!(ids(&diags), vec!["L9"], "{diags:?}");
        assert!(diags[0].message.contains("bad"), "{}", diags[0].message);
    }

    #[test]
    fn l9_poll_via_callee_counts() {
        let diags = run(&[(
            "x.rs",
            "qcat-core",
            "fn root(gas: &Gas) { qcat_fault::with_budget(gas, || work()); }\n\
             fn work() {\n    let nodes: Vec<u32> = Vec::new();\n    for n in &nodes { step(n); }\n}\n\
             fn step(_n: &u32) { poll(); }\n\
             fn poll() { g.charge_nodes(1); }\n",
        )]);
        assert_eq!(diags, vec![], "{diags:?}");
    }

    #[test]
    fn l9_ignores_loops_outside_the_region_and_self_fields() {
        let diags = run(&[(
            "x.rs",
            "qcat-core",
            "fn unbudgeted() {\n    let rows: Vec<u32> = Vec::new();\n    for r in &rows { touch(r); }\n}\n\
             fn touch(_r: &u32) {}\n\
             struct T { nodes: Vec<u32> }\n\
             impl T {\n\
                 fn summary(&self) { for n in &self.nodes { let _ = n; } }\n\
             }\n",
        )]);
        assert_eq!(diags, vec![], "{diags:?}");
    }

    #[test]
    fn l10_flags_unaccounted_alloc_and_accepts_charged() {
        let diags = run(&[(
            "x.rs",
            "qcat-serve",
            "fn root(gas: &Gas) { qcat_fault::with_budget(gas, || { bad(); good(); }); }\n\
             fn bad() -> Vec<u32> { Vec::with_capacity(64) }\n\
             fn good(gas: &Gas) -> Vec<u32> {\n    gas.charge_heap(256);\n    Vec::with_capacity(64)\n}\n",
        )]);
        assert_eq!(ids(&diags), vec!["L10"], "{diags:?}");
        assert!(diags[0].message.contains("with_capacity"), "{}", diags[0].message);
    }

    #[test]
    fn l10_coverage_propagates_from_callers() {
        let diags = run(&[(
            "x.rs",
            "qcat-serve",
            "fn root(gas: &Gas) { qcat_fault::with_budget(gas, || outer()); }\n\
             fn outer() { gas.charge_heap(64); inner(); }\n\
             fn inner() -> Vec<u32> { Vec::with_capacity(16) }\n",
        )]);
        assert_eq!(diags, vec![], "{diags:?}");
    }

    #[test]
    fn l10_test_coverage_does_not_launder() {
        let diags = run(&[(
            "x.rs",
            "qcat-serve",
            "fn root(gas: &Gas) { qcat_fault::with_budget(gas, || inner()); }\n\
             fn inner() -> Vec<u32> { Vec::with_capacity(16) }\n\
             #[cfg(test)]\nmod tests {\n    fn cover() { gas.charge_heap(1); super::inner(); }\n}\n",
        )]);
        assert_eq!(ids(&diags), vec!["L10"], "{diags:?}");
    }
}
