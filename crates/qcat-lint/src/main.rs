//! The qcat-lint driver.
//!
//! `cargo run -p qcat-lint -- --workspace` (or `cargo lint`) runs
//! the source, semantic, and audit engines against the repository
//! and exits nonzero when any rule fires. Diagnostics print as
//! `file:line: [RULE] message`, one per line, so editors and CI logs
//! can jump to them.

use qcat_core::label::CategoryLabel;
use qcat_core::tree::{CategoryTree, NodeId};
use qcat_data::{AttrId, AttrType, Field, RelationBuilder, Schema};
use qcat_lint::{audit, workspace, Diagnostic};
use qcat_sql::NumericRange;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut run_workspace = false;
    let mut trace_paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => run_workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--audit-trace" => match args.next() {
                Some(p) => trace_paths.push(PathBuf::from(p)),
                None => return usage("--audit-trace needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !run_workspace && trace_paths.is_empty() {
        return usage("nothing to do");
    }

    let mut diags = Vec::new();
    if run_workspace {
        let root = root.unwrap_or_else(default_root);
        let started = std::time::Instant::now();
        match workspace::lint_workspace_with_stats(&root) {
            Ok((d, stats)) => {
                eprintln!(
                    "qcat-lint: scanned {} files on {} pool thread(s) in {:.1?}",
                    stats.files,
                    stats.threads,
                    started.elapsed()
                );
                diags.extend(d);
            }
            Err(e) => {
                eprintln!("qcat-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
        diags.extend(audit_self_check());
    }
    for path in &trace_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("qcat-lint: cannot read trace {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        diags.extend(qcat_lint::audit_trace(&path.display().to_string(), &text));
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        let what = match (run_workspace, trace_paths.is_empty()) {
            (true, true) => "workspace clean (L1-L10 + audit self-check)",
            (true, false) => "workspace and trace(s) clean (L1-L10 + audit self-check + T1-T5)",
            _ => "trace(s) clean (T1-T5)",
        };
        println!("qcat-lint: {what}");
        ExitCode::SUCCESS
    } else {
        println!("qcat-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

const USAGE: &str = "usage: qcat-lint [--workspace] [--root <repo-root>] [--audit-trace <trace.jsonl>]

--workspace runs the source lints (L1-L7), the cross-file semantic
lints (L8 lock-order, L9 checkpoint coverage, L10 budget-blind
allocation), and the cost-model auditor self-check. --audit-trace
checks a QCAT_TRACE=json capture for schema validity, span balance,
duration consistency, governance-event enclosure, and causal parent
links (T1-T5); it may
repeat. Exits 0 when clean, 1 on violations, 2 on I/O or usage
errors. See docs/LINTS.md.";

fn usage(problem: &str) -> ExitCode {
    eprintln!("qcat-lint: {problem}\n{USAGE}");
    ExitCode::from(2)
}

/// Repo root when invoked through `cargo run -p qcat-lint`: two
/// levels above this crate's manifest; otherwise the current
/// directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop();
            p.pop();
            p
        }
        None => PathBuf::from("."),
    }
}

/// Engine 3 smoke test: the auditor must pass a known-good tree and
/// catch a seeded violation. Guards against the auditor itself
/// silently degrading into a yes-machine.
fn audit_self_check() -> Vec<Diagnostic> {
    let schema = match Schema::new(vec![Field::new("v", AttrType::Float)]) {
        Ok(s) => s,
        Err(e) => return vec![self_check_failure(&format!("schema: {e:?}"))],
    };
    let mut b = RelationBuilder::new(schema);
    for i in 0..8 {
        if let Err(e) = b.push_row(&[(f64::from(i)).into()]) {
            return vec![self_check_failure(&format!("row: {e:?}"))];
        }
    }
    let rel = match b.finish() {
        Ok(r) => r,
        Err(e) => return vec![self_check_failure(&format!("relation: {e:?}"))],
    };
    let mut tree = CategoryTree::new(rel, (0..8).collect());
    tree.push_level(AttrId(0));
    let kid = tree.add_child(
        NodeId::ROOT,
        CategoryLabel::range(AttrId(0), NumericRange::half_open(0.0, 4.0)),
        (0..4).collect(),
        0.5,
    );
    tree.add_child(
        NodeId::ROOT,
        CategoryLabel::range(AttrId(0), NumericRange::closed(4.0, 7.0)),
        (4..8).collect(),
        0.5,
    );
    tree.set_p_showtuples(NodeId::ROOT, 0.5);

    let mut out = audit::audit(&tree, 1.0, 0.5);
    // Seed a violation and require the auditor to see it.
    tree.raw_node_mut(kid).p_explore = 2.0;
    if audit::audit_tree(&tree).is_empty() {
        out.push(self_check_failure("auditor missed a seeded Pw violation"));
    }
    out
}

fn self_check_failure(msg: &str) -> Diagnostic {
    Diagnostic::file_level(
        "<audit-self-check>",
        qcat_lint::Rule::A1Probability,
        msg.to_string(),
    )
}
