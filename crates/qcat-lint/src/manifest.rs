//! Engine 1, rule L3: layering checks read from `Cargo.toml` files.
//!
//! The dependency direction the workspace commits to (see
//! `docs/LINTS.md`):
//!
//! ```text
//! qcat-obs                   (observability: depends on nothing)
//!    ↑
//! qcat-fault                 (budgets + fault points: sees only qcat-obs)
//!    ↑
//! qcat-pool                  (threading substrate: sees qcat-obs, qcat-fault)
//!    ↑
//! qcat-data, qcat-sql        (foundations: no view of the model)
//!    ↑
//! qcat-core                  (the paper's algorithms)
//!    ↑
//! qcat-serve                 (serving layer: pipeline + caches)
//!    ↑
//! qcat-exec, qcat-datagen, qcat-explore, qcat-study   (drivers)
//! ```
//!
//! A tiny TOML subset reader suffices: dependency names are the keys
//! of `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//! tables in the non-inline form the workspace uses.

use crate::diag::{Diagnostic, Rule};

/// Dependency names declared by one manifest, split by section.
#[derive(Debug, Default, Clone)]
pub struct ManifestDeps {
    /// `[dependencies]` keys.
    pub normal: Vec<String>,
    /// `[dev-dependencies]` keys.
    pub dev: Vec<String>,
}

/// Parse the dependency tables out of Cargo.toml text.
pub fn parse_manifest_deps(toml: &str) -> ManifestDeps {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        Normal,
        Dev,
        Other,
    }
    let mut deps = ManifestDeps::default();
    let mut section = Section::Other;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = match line.trim_matches(['[', ']']) {
                "dependencies" => Section::Normal,
                "dev-dependencies" => Section::Dev,
                s if s.starts_with("target.") && s.ends_with(".dependencies") => Section::Normal,
                _ => Section::Other,
            };
            continue;
        }
        if section == Section::Other {
            continue;
        }
        // `name = ...` or `name.workspace = true`; the dependency name
        // is the first dotted segment of the key.
        let Some(key) = line.split('=').next() else {
            continue;
        };
        let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
        if !name.is_empty() {
            let target = match section {
                Section::Normal => &mut deps.normal,
                Section::Dev => &mut deps.dev,
                Section::Other => unreachable!(),
            };
            target.push(name.to_string());
        }
    }
    deps
}

/// The layering contract: crate → dependencies it must not declare
/// (in `[dependencies]`; dev-dependencies are exempt so foundations
/// can be *tested* against upper layers if ever needed).
pub fn forbidden_deps(crate_name: &str) -> &'static [&'static str] {
    match crate_name {
        // The observability substrate sits below everything: every
        // crate may instrument itself, so qcat-obs seeing any of them
        // would be a cycle (and would let tracing drag the model in).
        "qcat-obs" => &[
            "qcat-fault",
            "qcat-pool",
            "qcat-data",
            "qcat-sql",
            "qcat-core",
            "qcat-exec",
            "qcat-workload",
            "qcat-serve",
            "qcat-explore",
            "qcat-datagen",
            "qcat-study",
            "qcat-lint",
        ],
        // The governance substrate (budgets + fault points) sits just
        // above qcat-obs: every crate may consult the current budget
        // or hit a fault point, so any upward edge would be a cycle.
        "qcat-fault" => &[
            "qcat-pool",
            "qcat-data",
            "qcat-sql",
            "qcat-core",
            "qcat-exec",
            "qcat-workload",
            "qcat-serve",
            "qcat-explore",
            "qcat-datagen",
            "qcat-study",
            "qcat-lint",
        ],
        // The threading substrate sits just above qcat-obs and
        // qcat-fault (workers propagate the recorder, budget, and
        // fault plan) and below everything else: it must never see
        // the model, data, or drivers.
        "qcat-pool" => &[
            "qcat-data",
            "qcat-sql",
            "qcat-core",
            "qcat-exec",
            "qcat-workload",
            "qcat-serve",
            "qcat-explore",
            "qcat-datagen",
            "qcat-study",
            "qcat-lint",
        ],
        // Foundations must not see the model, the serving layer, or
        // the studies. qcat-data additionally must not see the
        // workload layer: its index module serves the executor through
        // value-level APIs (`f64` bounds, `u32` codes), never through
        // query types.
        "qcat-data" => &[
            "qcat-core",
            "qcat-study",
            "qcat-exec",
            "qcat-explore",
            "qcat-serve",
            "qcat-workload",
            "qcat-sql",
        ],
        "qcat-sql" => &[
            "qcat-core",
            "qcat-study",
            "qcat-exec",
            "qcat-explore",
            "qcat-serve",
        ],
        // The model must not depend on data generation, serving, or
        // studies.
        "qcat-core" => &["qcat-datagen", "qcat-study", "qcat-explore", "qcat-serve"],
        // The serving layer composes exec/core/workload (plus the
        // data/sql/obs foundations beneath them); it must never pull
        // in the drivers, generators, or tooling.
        "qcat-serve" => &[
            "qcat-datagen",
            "qcat-study",
            "qcat-explore",
            "qcat-lint",
            "qcat-bench",
        ],
        _ => &[],
    }
}

/// Check one crate's manifest against the layering contract.
pub fn check_layering(
    crate_name: &str,
    manifest_path: &str,
    toml: &str,
) -> Vec<Diagnostic> {
    let deps = parse_manifest_deps(toml);
    let mut diags = Vec::new();
    for banned in forbidden_deps(crate_name) {
        if deps.normal.iter().any(|d| d == banned) {
            diags.push(Diagnostic::file_level(
                manifest_path,
                Rule::L3Layering,
                format!("`{crate_name}` must not depend on `{banned}` (layering)"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "qcat-sql"
version.workspace = true

# a comment
[dependencies]
qcat-data.workspace = true
something = { version = "1", features = ["x"] }

[dev-dependencies]
qcat-core.workspace = true

[features]
slow-tests = []
"#;

    #[test]
    fn parses_sections() {
        let deps = parse_manifest_deps(SAMPLE);
        assert_eq!(deps.normal, vec!["qcat-data", "something"]);
        assert_eq!(deps.dev, vec!["qcat-core"]);
    }

    #[test]
    fn dev_deps_are_exempt() {
        // qcat-core appears only under dev-dependencies: allowed.
        assert_eq!(check_layering("qcat-sql", "x/Cargo.toml", SAMPLE), vec![]);
    }

    #[test]
    fn forbidden_dep_is_flagged() {
        let bad = "[dependencies]\nqcat-core = { path = \"../core\" }\n";
        let diags = check_layering("qcat-data", "crates/qcat-data/Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::L3Layering);
        assert!(diags[0].message.contains("qcat-core"), "{}", diags[0].message);
        // And the clean direction passes.
        assert_eq!(check_layering("qcat-exec", "x", bad), vec![]);
    }

    #[test]
    fn obs_must_stay_dependency_free() {
        let bad = "[dependencies]\nqcat-data.workspace = true\n";
        let diags = check_layering("qcat-obs", "crates/qcat-obs/Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("qcat-data"));
        assert_eq!(check_layering("qcat-obs", "x", "[dependencies]\n"), vec![]);
    }

    #[test]
    fn pool_sees_only_obs() {
        let bad = "[dependencies]\nqcat-obs.workspace = true\nqcat-data.workspace = true\n";
        let diags = check_layering("qcat-pool", "crates/qcat-pool/Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("qcat-data"));
        let good = "[dependencies]\nqcat-obs.workspace = true\n";
        assert_eq!(check_layering("qcat-pool", "x", good), vec![]);
        // And qcat-obs must not complete a cycle back into the pool.
        let cycle = "[dependencies]\nqcat-pool.workspace = true\n";
        let diags = check_layering("qcat-obs", "crates/qcat-obs/Cargo.toml", cycle);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("qcat-pool"));
    }

    #[test]
    fn serve_sees_pipeline_but_not_drivers() {
        let good = "[dependencies]\nqcat-obs.workspace = true\nqcat-data.workspace = true\n\
                    qcat-sql.workspace = true\nqcat-exec.workspace = true\n\
                    qcat-workload.workspace = true\nqcat-core.workspace = true\n";
        assert_eq!(check_layering("qcat-serve", "x", good), vec![]);
        let bad = "[dependencies]\nqcat-study.workspace = true\nqcat-bench.workspace = true\n";
        let diags = check_layering("qcat-serve", "crates/qcat-serve/Cargo.toml", bad);
        assert_eq!(diags.len(), 2);
        // And no lower layer may reach back up into the server.
        for lower in ["qcat-obs", "qcat-pool", "qcat-data", "qcat-sql", "qcat-core"] {
            let cycle = "[dependencies]\nqcat-serve.workspace = true\n";
            assert_eq!(check_layering(lower, "x", cycle).len(), 1, "{lower}");
        }
    }

    #[test]
    fn data_index_module_stays_below_the_query_layer() {
        // The index module works on codes and f64 bounds; qcat-data
        // seeing qcat-sql (or qcat-workload) would let query types
        // leak into the storage layer.
        for banned in ["qcat-sql", "qcat-workload"] {
            let bad = format!("[dependencies]\n{banned}.workspace = true\n");
            let diags = check_layering("qcat-data", "crates/qcat-data/Cargo.toml", &bad);
            assert_eq!(diags.len(), 1, "{banned}");
        }
    }

    #[test]
    fn fault_sees_only_obs() {
        let good = "[dependencies]\nqcat-obs.workspace = true\n";
        assert_eq!(check_layering("qcat-fault", "x", good), vec![]);
        let bad = "[dependencies]\nqcat-obs.workspace = true\nqcat-pool.workspace = true\n";
        let diags = check_layering("qcat-fault", "crates/qcat-fault/Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("qcat-pool"));
        // And qcat-obs must not complete a cycle back into the faults.
        let cycle = "[dependencies]\nqcat-fault.workspace = true\n";
        assert_eq!(check_layering("qcat-obs", "x", cycle).len(), 1);
        // The pool may see qcat-fault (it propagates budget + plan).
        let pool = "[dependencies]\nqcat-obs.workspace = true\nqcat-fault.workspace = true\n";
        assert_eq!(check_layering("qcat-pool", "x", pool), vec![]);
    }

    #[test]
    fn sharded_data_plane_edges_are_sanctioned() {
        // PR 8 put the pool under the data plane: qcat-data builds
        // per-shard indexes through morsels and qcat-exec schedules
        // morsel scans. Both edges point downward and must stay legal;
        // the reverse edge (pool seeing data) stays a cycle.
        let data = "[dependencies]\nqcat-obs.workspace = true\nqcat-fault.workspace = true\n\
                    qcat-pool.workspace = true\n";
        assert_eq!(check_layering("qcat-data", "x", data), vec![]);
        let exec = "[dependencies]\nqcat-data.workspace = true\nqcat-sql.workspace = true\n\
                    qcat-pool.workspace = true\n";
        assert_eq!(check_layering("qcat-exec", "x", exec), vec![]);
        let cycle = "[dependencies]\nqcat-data.workspace = true\n";
        assert_eq!(check_layering("qcat-pool", "x", cycle).len(), 1);
    }

    #[test]
    fn core_cannot_use_datagen() {
        let bad = "[dependencies]\nqcat-datagen.workspace = true\nqcat-data.workspace = true\n";
        let diags = check_layering("qcat-core", "crates/core/Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("qcat-datagen"));
    }
}
