//! A first-party Rust lexer: the token stream every source rule
//! reads.
//!
//! Engine 1's original scanner blanked comments and literals with a
//! byte-level preprocessor; its known failure class was exotic
//! literal syntax — `'\u{7D}'` escapes leaking a stray quote,
//! multibyte char literals misread as lifetimes — after which real
//! code could be blanked (missed violations) or literal text kept
//! (false positives). This lexer handles the full literal grammar the
//! workspace uses: raw strings (`r"…"`, `r#"…"#`, `br##"…"##`), byte
//! strings and byte chars, nested block comments, `\u{…}` and
//! multibyte char literals, and char-vs-lifetime disambiguation.
//!
//! Tokens carry 1-based line and 0-based byte-column positions so
//! both consumers can reconstruct what they need: the line-oriented
//! rules (L1–L7) rebuild blanked source lines at original columns,
//! and the semantic engine (L8–L10, see [`crate::syms`] and
//! [`crate::conc`]) walks the stream directly.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `tables`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — tick included in the text.
    Lifetime,
    /// Numeric literal (`0`, `1.5e3`, `0x1F`, `2f64`).
    Num,
    /// String literal of any flavor; contents are not retained.
    Str,
    /// Char or byte-char literal; contents are not retained.
    Char,
    /// Any other single character (`.`, `(`, `=`, `#`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token's text. Empty for [`TokKind::Str`] and
    /// [`TokKind::Char`]: literal contents are deliberately dropped
    /// so no rule can ever match inside them.
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// 0-based byte column of the token's first byte in its line.
    pub col: usize,
}

/// A fully lexed file.
#[derive(Debug)]
pub struct Lexed {
    /// Tokens in source order; comments and whitespace are dropped.
    pub tokens: Vec<Token>,
    /// Number of lines in the source (`split('\n').count()`).
    pub line_count: usize,
    /// Per-line flag: the line is (part of) a doc comment
    /// (`///`, `//!`, `/** */`, `/*! */`).
    pub doc_line: Vec<bool>,
}

/// Lex `source` into tokens plus line metadata.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: usize, // 0-based while lexing
    col: usize,
    tokens: Vec<Token>,
    doc_line: Vec<bool>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        let line_count = source.split('\n').count();
        Lexer {
            b: source.as_bytes(),
            i: 0,
            line: 0,
            col: 0,
            tokens: Vec::new(),
            doc_line: vec![false; line_count],
        }
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
        let line_count = self.doc_line.len();
        Lexed {
            tokens: self.tokens,
            line_count,
            doc_line: self.doc_line,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Advance one byte, tracking line/column.
    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize, col: usize) {
        self.tokens.push(Token {
            kind,
            text,
            line: line + 1,
            col,
        });
    }

    fn line_comment(&mut self) {
        let is_doc = (self.slice_starts_with(b"///") && !self.slice_starts_with(b"////"))
            || self.slice_starts_with(b"//!");
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            if is_doc {
                self.doc_line[self.line] = true;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        let is_doc = (self.slice_starts_with(b"/**") && !self.slice_starts_with(b"/***"))
            || self.slice_starts_with(b"/*!");
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.slice_starts_with(b"/*") {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.slice_starts_with(b"*/") {
                depth = depth.saturating_sub(1);
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                if is_doc {
                    self.doc_line[self.line] = true;
                }
                self.bump();
            }
        }
    }

    fn slice_starts_with(&self, prefix: &[u8]) -> bool {
        self.b[self.i..].starts_with(prefix)
    }

    /// A plain (non-raw) string literal starting at the opening `"`.
    fn string(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump(); // opening quote
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' && self.i + 1 < self.b.len() {
                self.bump(); // the backslash
            }
            if self.i < self.b.len() {
                self.bump();
            }
        }
        if self.i < self.b.len() {
            self.bump(); // closing quote
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    /// Char literal or lifetime, starting at the tick.
    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        // Escape sequence ⇒ definitely a char literal.
        if self.peek(1) == Some(b'\\') {
            self.bump(); // tick
            self.bump(); // backslash
            let esc = self.peek(0);
            self.bump(); // escape head (n, t, u, x, ', \, …)
            match esc {
                // '\u{…}' — consume through the closing brace.
                Some(b'u') if self.peek(0) == Some(b'{') => {
                    while self.i < self.b.len() && self.b[self.i] != b'}' {
                        self.bump();
                    }
                    if self.i < self.b.len() {
                        self.bump(); // '}'
                    }
                }
                // '\x41' — two hex digits.
                Some(b'x') => {
                    for _ in 0..2 {
                        if self
                            .peek(0)
                            .is_some_and(|c| c.is_ascii_hexdigit())
                        {
                            self.bump();
                        }
                    }
                }
                _ => {}
            }
            if self.peek(0) == Some(b'\'') {
                self.bump(); // closing tick
            }
            self.push(TokKind::Char, String::new(), line, col);
            return;
        }
        // Unescaped: a char literal iff a closing tick follows one
        // character (which may be multibyte). Otherwise a lifetime.
        let mut j = self.i + 1;
        if j < self.b.len() {
            // Step over exactly one UTF-8 character.
            j += 1;
            while j < self.b.len() && self.b[j] & 0xC0 == 0x80 {
                j += 1;
            }
        }
        if self.b.get(j) == Some(&b'\'') {
            while self.i <= j {
                self.bump();
            }
            self.push(TokKind::Char, String::new(), line, col);
        } else {
            // Lifetime: tick plus identifier characters.
            let start = self.i;
            self.bump(); // tick
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(TokKind::Lifetime, text, line, col);
        }
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.i;
        // Integer part, hex/oct/bin digits, suffixes: one alnum run.
        self.alnum_run();
        // Fractional part: a dot counts only when not starting a
        // range (`0..n`) or a method call (`1.max(2)`).
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let method_or_range =
                after.is_some_and(|c| c == b'.' || c == b'_' || c.is_ascii_alphabetic());
            if !method_or_range {
                self.bump(); // the dot
                self.alnum_run();
            }
        }
        // Exponent sign: `1e-9` — the run above stopped at `-`.
        if self.peek(0).is_some_and(|c| c == b'+' || c == b'-')
            && self.b[self.i - 1].eq_ignore_ascii_case(&b'e')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump(); // sign
            self.alnum_run();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Num, text, line, col);
    }

    fn alnum_run(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
    }

    /// Identifier — or a raw string / byte string / byte char if the
    /// "identifier" is one of the literal prefixes `r`, `b`, `br`.
    fn ident_or_prefixed_literal(&mut self) {
        if let Some(hashes) = self.raw_string_prefix() {
            self.raw_string(hashes);
            return;
        }
        // b"…" byte string / b'…' byte char.
        if self.b[self.i] == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    let (line, col) = (self.line, self.col);
                    self.bump(); // the b
                    self.string();
                    // string() pushed a Str at the quote; fix its start.
                    if let Some(t) = self.tokens.last_mut() {
                        t.line = line + 1;
                        t.col = col;
                    }
                    return;
                }
                Some(b'\'') => {
                    let (line, col) = (self.line, self.col);
                    self.bump(); // the b
                    self.char_or_lifetime();
                    if let Some(t) = self.tokens.last_mut() {
                        t.line = line + 1;
                        t.col = col;
                    }
                    return;
                }
                _ => {}
            }
        }
        let (line, col) = (self.line, self.col);
        let start = self.i;
        self.alnum_run();
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }

    /// If a raw (byte) string starts here, return its `#` count.
    fn raw_string_prefix(&self) -> Option<usize> {
        let mut j = self.i;
        if self.b.get(j) == Some(&b'b') {
            j += 1;
        }
        if self.b.get(j) != Some(&b'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        (self.b.get(j) == Some(&b'"')).then_some(hashes)
    }

    /// Consume `r#"…"#`-style raw string with `hashes` hash marks.
    fn raw_string(&mut self, hashes: usize) {
        let (line, col) = (self.line, self.col);
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            self.bump(); // b/r prefix and hashes
        }
        if self.i < self.b.len() {
            self.bump(); // opening quote
        }
        while self.i < self.b.len() {
            if self.b[self.i] == b'"'
                && self.b[self.i + 1..].len() >= hashes
                && self.b[self.i + 1..self.i + 1 + hashes]
                    .iter()
                    .all(|&c| c == b'#')
            {
                self.bump(); // closing quote
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    fn punct(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.i;
        // One character; multibyte text outside literals (only ever
        // seen in malformed input) is consumed whole.
        self.bump();
        while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Punct, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokKind::Ident, "f".into()));
        assert!(toks.contains(&(TokKind::Num, "1".into())));
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(idents("let s = \"panic! .unwrap()\";"), vec!["let", "s"]);
        assert_eq!(
            idents("let s = r#\"has \"quotes\" and .unwrap()\"#; t.go();"),
            vec!["let", "s", "t", "go"]
        );
        assert_eq!(idents("let b = b\"bytes .unwrap()\";"), vec!["let", "b"]);
        assert_eq!(
            idents("let r = br##\"raw # \"# bytes\"##; after();"),
            vec!["let", "r", "after"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("a(); /* outer /* inner .unwrap() */ still comment */ b();"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // Plain, escaped, unicode-escape, multibyte, and byte chars
        // are all opaque literals...
        assert_eq!(
            idents("let a = 'x'; let b = '\\''; let c = '\\u{7D}'; let d = 'é'; let e = b'q'; f();"),
            vec!["let", "a", "let", "b", "let", "c", "let", "d", "let", "e", "f"]
        );
        // ...while lifetimes stay identifiers-with-a-tick.
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'a"]);
    }

    #[test]
    fn unicode_escape_does_not_leak_a_quote() {
        // The old scanner left `{7D}'` behind, corrupting everything
        // after it on the line.
        assert_eq!(
            idents("let c = '\\u{41}'; real.unwrap();"),
            vec!["let", "c", "real", "unwrap"]
        );
    }

    #[test]
    fn numbers() {
        let toks = kinds("0.0 1. 1.5e3 1e-9 2f64 0x1F 1_000 0..10 1.max(2)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0.0", "1.", "1.5e3", "1e-9", "2f64", "0x1F", "1_000", "0", "10", "1", "2"]
        );
    }

    #[test]
    fn raw_ident_lookalikes_are_not_raw_strings() {
        // `r` and `b` as plain identifiers must lex as identifiers.
        assert_eq!(idents("for r in rows { b += r; }"), vec!["for", "r", "in", "rows", "b", "r"]);
    }

    #[test]
    fn doc_lines_are_marked() {
        let l = lex("/// docs\nfn f() {}\n//! inner\n// plain\n/** block */\nx();\n");
        assert_eq!(l.doc_line, vec![true, false, true, false, true, false, false]);
    }

    #[test]
    fn positions_are_line_and_col() {
        let l = lex("ab cd\n  ef\n");
        let t: Vec<(usize, usize, &str)> = l
            .tokens
            .iter()
            .map(|t| (t.line, t.col, t.text.as_str()))
            .collect();
        assert_eq!(t, vec![(1, 0, "ab"), (1, 3, "cd"), (2, 2, "ef")]);
    }
}
