//! SEEDED L10 VIOLATION plus its accounted twin — never compiled,
//! only analyzed (as crate `qcat-serve`, inside the budget region).
//!
//! `build` allocates a collection inside the budget-governed region
//! with no heap accounting anywhere on its path, so `max_heap_bytes`
//! cannot see the allocation. `build_charged` charges the estimate
//! first.

pub fn fill(gas: &Gas, n: usize) -> Vec<u32> {
    qcat_fault::with_budget(gas, || {
        let a = build(n);
        let b = build_charged(gas, n);
        if a.len() > b.len() { a } else { b }
    })
}

/// BUG (seeded): a budget-blind allocation.
fn build(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}

/// Accounted twin: the heap estimate is charged before allocating.
fn build_charged(gas: &Gas, n: usize) -> Vec<u32> {
    gas.charge_heap(n * 4);
    Vec::with_capacity(n)
}
