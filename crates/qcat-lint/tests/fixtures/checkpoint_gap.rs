//! SEEDED L9 VIOLATION plus its fixed twin — never compiled, only
//! analyzed (as crate `qcat-exec`, inside the budget region).
//!
//! `sum_rows` iterates a governed collection reachable from a
//! `with_budget` root without ever polling the gas: a deadline or a
//! tripped budget cannot stop it. `sum_rows_polled` is the same loop
//! with the sanctioned strided checkpoint.

pub fn serve_rows(gas: &Gas, rows: &[u32]) -> u64 {
    qcat_fault::with_budget(gas, || sum_rows(rows) + sum_rows_polled(gas, rows))
}

/// BUG (seeded): a row-grain loop with no Gas poll anywhere on it.
fn sum_rows(rows: &[u32]) -> u64 {
    let mut total = 0;
    for r in rows {
        total += u64::from(*r);
    }
    total
}

/// Fixed twin: the loop polls the budget and drains when it trips.
fn sum_rows_polled(gas: &Gas, rows: &[u32]) -> u64 {
    let mut total = 0;
    for r in rows {
        if !gas.checkpoint() {
            break;
        }
        total += u64::from(*r);
    }
    total
}
