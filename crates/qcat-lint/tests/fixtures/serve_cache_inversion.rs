//! SEEDED L8 VIOLATION — never compiled, only analyzed.
//!
//! Models the PR 4 double-LRU serve cache deadlock: the query path
//! locks `results` then `trees`, while eviction locks `trees` then
//! `results`. Two threads taking the two paths concurrently can each
//! hold one lock and wait forever on the other.

pub struct CacheServer {
    results: Mutex<ResultCache>,
    trees: Mutex<TreeCache>,
}

impl CacheServer {
    fn lock_results(&self) -> MutexGuard<'_, ResultCache> {
        self.results.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_trees(&self) -> MutexGuard<'_, TreeCache> {
        self.trees.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Query path: probe the result cache, then publish the tree —
    /// `results` is still held when `trees` is acquired.
    pub fn serve(&self, key: &str) -> Option<Tree> {
        let results = self.lock_results();
        if results.contains(key) {
            let trees = self.lock_trees();
            return trees.get(key).cloned();
        }
        None
    }

    /// Eviction sweeps trees first, then the result rows they came
    /// from — `trees` is still held when `results` is acquired.
    pub fn evict(&self, epoch: u64) {
        let sweep = self.lock_trees();
        for key in sweep.expired(epoch) {
            let mut results = self.lock_results();
            results.remove(&key);
        }
    }
}
