//! CLEAN TWIN of `serve_cache_inversion.rs` — never compiled, only
//! analyzed.
//!
//! Same two caches, same two paths, but each guard is dropped before
//! the other lock is taken, so no thread ever holds both. L8 must
//! stay silent here: the rule keys on *held* sets, not on the mere
//! presence of two locks in one function.

pub struct CacheServer {
    results: Mutex<ResultCache>,
    trees: Mutex<TreeCache>,
}

impl CacheServer {
    fn lock_results(&self) -> MutexGuard<'_, ResultCache> {
        self.results.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_trees(&self) -> MutexGuard<'_, TreeCache> {
        self.trees.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Query path: the probe result is bound first and the `results`
    /// guard released before `trees` is acquired.
    pub fn serve(&self, key: &str) -> Option<Tree> {
        let results = self.lock_results();
        let hit = results.contains(key);
        drop(results);
        if hit {
            let trees = self.lock_trees();
            return trees.get(key).cloned();
        }
        None
    }

    /// Eviction snapshots the expired keys under `trees`, releases
    /// it, and only then sweeps `results`.
    pub fn evict(&self, epoch: u64) {
        let trees = self.lock_trees();
        let expired = trees.expired_keys(epoch);
        drop(trees);
        let mut results = self.lock_results();
        for key in expired {
            results.remove(&key);
        }
    }
}
