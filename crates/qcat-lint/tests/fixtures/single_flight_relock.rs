//! SEEDED L8 VIOLATION — never compiled, only analyzed.
//!
//! The single-flight probe shape from PR 4's bug: a `match` whose
//! scrutinee acquires the lock holds the guard (a scrutinee
//! temporary) for every arm, so the miss arm's re-acquisition
//! self-deadlocks on a non-reentrant mutex.

pub struct FillTable {
    fills: Mutex<FillSet>,
}

impl FillTable {
    fn lock_fills(&self) -> MutexGuard<'_, FillSet> {
        self.fills.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register this key for filling unless a fill is already in
    /// flight. The scrutinee guard lives until the match ends.
    pub fn begin_fill(&self, key: &str) -> bool {
        match self.lock_fills().contains(key) {
            true => false,
            false => {
                let mut fills = self.lock_fills();
                fills.insert(key.to_string());
                true
            }
        }
    }
}
