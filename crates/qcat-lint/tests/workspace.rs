//! Tier-1 gate: both lint engines must pass on the real workspace.
//!
//! This test is what makes `cargo test -q` fail when a panic site,
//! NaN-unsafe comparison, layering violation, undocumented public
//! item, or cost-model invariant regression lands — without anyone
//! having to remember to run the binary.

use qcat_core::label::CategoryLabel;
use qcat_core::tree::{CategoryTree, NodeId};
use qcat_data::{AttrId, AttrType, Field, Relation, RelationBuilder, Schema};
use qcat_lint::{audit, lint_workspace, Rule};
use qcat_sql::NumericRange;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/qcat-lint/ → repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

#[test]
fn engine1_workspace_is_clean() {
    let diags = lint_workspace(&repo_root()).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "source lints must pass on the committed tree:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn relation(n: usize) -> Relation {
    let schema = Schema::new(vec![Field::new("price", AttrType::Float)]).expect("schema");
    let mut b = RelationBuilder::with_capacity(schema, n);
    for i in 0..n {
        b.push_row(&[(i as f64).into()]).expect("row");
    }
    b.finish().expect("relation")
}

fn two_bucket_tree(n: usize) -> CategoryTree {
    let mid = (n / 2) as u32;
    let mut t = CategoryTree::new(relation(n), (0..n as u32).collect());
    t.push_level(AttrId(0));
    t.add_child(
        NodeId::ROOT,
        CategoryLabel::range(AttrId(0), NumericRange::half_open(0.0, mid as f64)),
        (0..mid).collect(),
        0.6,
    );
    t.add_child(
        NodeId::ROOT,
        CategoryLabel::range(AttrId(0), NumericRange::closed(mid as f64, (n - 1) as f64)),
        (mid..n as u32).collect(),
        0.4,
    );
    t.set_p_showtuples(NodeId::ROOT, 0.3);
    t
}

#[test]
fn engine2_accepts_valid_tree_and_flags_perturbations() {
    let t = two_bucket_tree(12);
    assert_eq!(audit::audit(&t, 1.0, 0.5), vec![], "valid tree must audit clean");

    // Each perturbation must surface its specific rule id.
    let mut broken = two_bucket_tree(12);
    let kid = broken.node(NodeId::ROOT).children[0];
    broken.raw_node_mut(kid).p_explore = 1.25;
    assert!(audit::audit_tree(&broken)
        .iter()
        .any(|d| d.rule == Rule::A1Probability));

    let mut broken = two_bucket_tree(12);
    let kid = broken.node(NodeId::ROOT).children[1];
    broken.raw_node_mut(kid).tset.push(0); // overlaps the first child
    assert!(audit::audit_tree(&broken)
        .iter()
        .any(|d| d.rule == Rule::A3TsetDisjoint));
}

#[test]
fn engine2_brute_force_check_guards_cost_all() {
    use qcat_core::cost::{cost_all, CostReport};
    let t = two_bucket_tree(16);
    let good = cost_all(&t, 2.0);
    assert_eq!(audit::audit_cost_all(&t, &good, 2.0), vec![]);

    let mut costs: Vec<f64> = (0..t.node_count())
        .map(|i| good.cost(qcat_core::tree::NodeId(i as u32)))
        .collect();
    costs[0] *= 1.01;
    let diags = audit::audit_cost_all(&t, &CostReport::from_costs(costs), 2.0);
    assert!(diags.iter().any(|d| d.rule == Rule::A7CostEq1), "{diags:?}");
}
