//! Engine 2 liveness gate: every semantic rule must fire on its
//! seeded fixture under `tests/fixtures/` and stay silent on the
//! fixture's clean twin.
//!
//! The fixtures are realistic source files (modeled on the PR 4
//! double-LRU serve-cache deadlock) that are analyzed, never
//! compiled. A rule that silently stops firing — a lexer regression,
//! a resolution change that severs the call graph, a scope-tracking
//! bug — fails here long before it fails to catch a real bug.

use qcat_lint::{analyze_sources, Diagnostic, SourceFile};

fn analyze(name: &str, krate: &str) -> (String, Vec<Diagnostic>) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let diags = analyze_sources(&[SourceFile {
        path: name.to_string(),
        krate: krate.to_string(),
        text: text.clone(),
    }]);
    (text, diags)
}

/// 1-based line of the unique occurrence of `needle` in `text`.
fn line_of(text: &str, needle: &str) -> usize {
    let pos = text.find(needle).unwrap_or_else(|| panic!("fixture lost `{needle}`"));
    assert_eq!(
        text[pos + 1..].find(needle),
        None,
        "`{needle}` must be unique in the fixture"
    );
    text[..pos].matches('\n').count() + 1
}

#[test]
fn l8_fires_on_the_serve_cache_inversion_and_names_both_sites() {
    let (text, diags) = analyze("serve_cache_inversion.rs", "fix-serve");
    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert_eq!(ids, vec!["L8"], "{diags:?}");
    let msg = &diags[0].message;
    assert!(
        msg.contains("fix-serve::results") && msg.contains("fix-serve::trees"),
        "cycle must name both locks: {msg}"
    );
    // Both conflicting acquisition sites must be cited, so whoever
    // reads the diagnostic can fix either side of the inversion.
    let serve_acq = line_of(&text, "let trees = self.lock_trees();");
    let evict_acq = line_of(&text, "let mut results = self.lock_results();");
    assert!(
        msg.contains(&format!("serve_cache_inversion.rs:{serve_acq}")),
        "must cite the serve-path acquisition (line {serve_acq}): {msg}"
    );
    assert!(
        msg.contains(&format!("serve_cache_inversion.rs:{evict_acq}")),
        "must cite the evict-path acquisition (line {evict_acq}): {msg}"
    );
}

#[test]
fn l8_stays_silent_when_guards_release_before_reacquire() {
    let (_, diags) = analyze("serve_cache_release.rs", "fix-serve");
    assert_eq!(diags, vec![], "clean twin must not fire: {diags:?}");
}

#[test]
fn l8_fires_on_the_single_flight_scrutinee_relock() {
    let (text, diags) = analyze("single_flight_relock.rs", "fix-serve");
    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert_eq!(ids, vec!["L8"], "{diags:?}");
    let msg = &diags[0].message;
    assert!(msg.contains("self-deadlock"), "{msg}");
    // Both sites: the message cites the scrutinee acquisition, the
    // diagnostic itself anchors on the re-acquisition in the arm.
    let first = line_of(&text, "match self.lock_fills()");
    assert!(
        msg.contains(&format!("single_flight_relock.rs:{first}")),
        "must cite the scrutinee acquisition (line {first}): {msg}"
    );
    let second = line_of(&text, "let mut fills = self.lock_fills();");
    assert_eq!(diags[0].line, second, "must anchor on the re-acquisition: {diags:?}");
}

#[test]
fn l9_fires_on_the_unpolled_loop_but_not_its_polled_twin() {
    let (_, diags) = analyze("checkpoint_gap.rs", "qcat-exec");
    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert_eq!(ids, vec!["L9"], "{diags:?}");
    let msg = &diags[0].message;
    assert!(msg.contains("`sum_rows`"), "{msg}");
    assert!(!msg.contains("sum_rows_polled"), "{msg}");
}

#[test]
fn l10_fires_on_the_blind_alloc_but_not_its_charged_twin() {
    let (text, diags) = analyze("budget_blind.rs", "qcat-serve");
    let ids: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert_eq!(ids, vec!["L10"], "{diags:?}");
    let blind = line_of(&text, "/// BUG (seeded): a budget-blind allocation.");
    assert_eq!(
        diags[0].line,
        blind + 2,
        "must flag the allocation inside `build`: {diags:?}"
    );
}
