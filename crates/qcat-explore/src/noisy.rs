//! Stochastic users — the stand-in for the paper's 11 human subjects
//! (Section 6.3).
//!
//! A [`NoisyUser`] behaves like the oracle of [`crate::oracle`] but
//! with human imperfections, each driven by a seeded RNG so studies
//! are reproducible:
//!
//! - she sometimes drills into a category whose label does *not*
//!   overlap her need (`false_explore`), wasting effort;
//! - she sometimes skips a category that *does* overlap
//!   (`false_skip`), missing relevant tuples — this is what makes
//!   different techniques recover different numbers of relevant tuples
//!   (Figure 10);
//! - she occasionally browses instead of drilling
//!   (`showtuples_bias`);
//! - while scanning tuples she overlooks a relevant one with
//!   probability `overlook`;
//! - she abandons the task after examining `patience` items
//!   (`gave_up` is set on the stats).

use crate::relevance::RelevanceJudge;
use crate::trace::ExplorationStats;
use qcat_core::{CategoryTree, NodeId};
use qcat_sql::NormalizedQuery;
use qcat_datagen::rng::Rng;

/// A simulated human subject.
#[derive(Debug, Clone)]
pub struct NoisyUser {
    /// RNG seed; one subject = one seed.
    pub seed: u64,
    /// Probability of exploring a non-overlapping category.
    pub false_explore: f64,
    /// Probability of skipping an overlapping category.
    pub false_skip: f64,
    /// Probability of choosing SHOWTUPLES where the oracle would
    /// SHOWCAT.
    pub showtuples_bias: f64,
    /// Probability of overlooking a relevant tuple while scanning.
    pub overlook: f64,
    /// Give up after examining this many items (`usize::MAX` = never).
    pub patience: usize,
}

impl NoisyUser {
    /// A reasonably attentive subject.
    pub fn new(seed: u64) -> Self {
        NoisyUser {
            seed,
            false_explore: 0.05,
            false_skip: 0.05,
            showtuples_bias: 0.1,
            overlook: 0.05,
            patience: usize::MAX,
        }
    }

    /// Override the patience budget.
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = patience;
        self
    }

    /// Override the error rates.
    pub fn with_error_rates(mut self, false_explore: f64, false_skip: f64, overlook: f64) -> Self {
        self.false_explore = false_explore;
        self.false_skip = false_skip;
        self.overlook = overlook;
        self
    }
}

struct Session<'a> {
    tree: &'a CategoryTree,
    need: &'a NormalizedQuery,
    judge: &'a RelevanceJudge,
    user: &'a NoisyUser,
    rng: Rng,
    stats: ExplorationStats,
}

impl Session<'_> {
    fn exhausted(&self) -> bool {
        self.stats.items() >= self.user.patience
    }

    fn note_exhaustion(&mut self) {
        if self.exhausted() {
            self.stats.gave_up = true;
        }
    }

    fn wants_showcat(&mut self, id: NodeId) -> bool {
        let oracle_choice = self
            .tree
            .subcategorizing_attr(id)
            .is_some_and(|attr| self.need.constrains(attr));
        if oracle_choice {
            !self.rng.gen_bool(self.user.showtuples_bias)
        } else {
            false
        }
    }

    fn decides_to_explore(&mut self, overlaps: bool) -> bool {
        if overlaps {
            !self.rng.gen_bool(self.user.false_skip)
        } else {
            self.rng.gen_bool(self.user.false_explore)
        }
    }

    /// ALL scenario.
    fn explore_all(&mut self, id: NodeId) {
        if self.exhausted() {
            self.note_exhaustion();
            return;
        }
        let node = self.tree.node(id);
        self.stats.nodes_explored += 1;
        if node.is_leaf() || !self.wants_showcat(id) {
            self.stats.showtuples_choices += 1;
            for &row in &node.tset {
                if self.exhausted() {
                    self.note_exhaustion();
                    return;
                }
                self.stats.tuples_examined += 1;
                if self.judge.is_relevant(self.tree.relation(), row)
                    && !self.rng.gen_bool(self.user.overlook)
                {
                    self.stats.relevant_found += 1;
                }
            }
            return;
        }
        let children = node.children.clone();
        for child in children {
            if self.exhausted() {
                self.note_exhaustion();
                return;
            }
            self.stats.labels_examined += 1;
            let overlaps = self
                .tree
                .node(child)
                .label
                .as_ref()
                .expect("non-root labeled")
                .query_overlaps(self.need);
            if self.decides_to_explore(overlaps) {
                self.explore_all(child);
            }
        }
    }

    /// ONE scenario; true when a relevant tuple was recognized.
    fn explore_one(&mut self, id: NodeId) -> bool {
        if self.exhausted() {
            self.note_exhaustion();
            return false;
        }
        let node = self.tree.node(id);
        self.stats.nodes_explored += 1;
        if node.is_leaf() || !self.wants_showcat(id) {
            self.stats.showtuples_choices += 1;
            for &row in &node.tset {
                if self.exhausted() {
                    self.note_exhaustion();
                    return false;
                }
                self.stats.tuples_examined += 1;
                if self.judge.is_relevant(self.tree.relation(), row)
                    && !self.rng.gen_bool(self.user.overlook)
                {
                    self.stats.relevant_found = 1;
                    return true;
                }
            }
            return false;
        }
        let children = node.children.clone();
        for child in children {
            if self.exhausted() {
                self.note_exhaustion();
                return false;
            }
            self.stats.labels_examined += 1;
            let overlaps = self
                .tree
                .node(child)
                .label
                .as_ref()
                .expect("non-root labeled")
                .query_overlaps(self.need);
            if self.decides_to_explore(overlaps) && self.explore_one(child) {
                return true;
            }
        }
        false
    }
}

/// Replay the ALL scenario with a noisy user.
pub fn noisy_explore_all(
    tree: &CategoryTree,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    user: &NoisyUser,
) -> ExplorationStats {
    let mut session = Session {
        tree,
        need,
        judge,
        user,
        rng: Rng::seed_from_u64(user.seed),
        stats: ExplorationStats::default(),
    };
    session.explore_all(NodeId::ROOT);
    session.stats
}

/// Replay the ONE scenario with a noisy user.
pub fn noisy_explore_one(
    tree: &CategoryTree,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    user: &NoisyUser,
) -> ExplorationStats {
    let mut session = Session {
        tree,
        need,
        judge,
        user,
        rng: Rng::seed_from_u64(user.seed),
        stats: ExplorationStats::default(),
    };
    session.explore_one(NodeId::ROOT);
    session.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::actual_cost_all;
    use qcat_core::{CategorizeConfig, Categorizer};
    use qcat_data::{AttrId, AttrType, Field, Relation, RelationBuilder, Schema};
    use qcat_exec::ResultSet;
    use qcat_sql::parse_and_normalize;
    use qcat_workload::{PreprocessConfig, WorkloadLog, WorkloadStatistics};

    fn setup() -> (Relation, qcat_core::CategoryTree) {
        let schema = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap();
        let mut b = RelationBuilder::new(schema.clone());
        let hoods = ["Redmond", "Bellevue", "Seattle"];
        for i in 0..120 {
            b.push_row(&[hoods[i % 3].into(), (200_000.0 + (i as f64) * 500.0).into()])
                .unwrap();
        }
        let rel = b.finish().unwrap();
        let mut w = Vec::new();
        for _ in 0..50 {
            w.push("SELECT * FROM t WHERE neighborhood IN ('Redmond')".to_string());
        }
        for i in 0..50 {
            let lo = 200_000 + (i % 6) * 10_000;
            w.push(format!(
                "SELECT * FROM t WHERE price BETWEEN {lo} AND {}",
                lo + 10_000
            ));
        }
        let log = WorkloadLog::parse(w.iter().map(String::as_str), &schema, None);
        let cfg = PreprocessConfig::new().with_interval(AttrId(1), 5_000.0);
        let stats = WorkloadStatistics::build(&log, &schema, &cfg);
        let config = CategorizeConfig::default()
            .with_max_leaf_tuples(10)
            .with_attr_threshold(0.1);
        let tree =
            Categorizer::new(&stats, config).categorize(&ResultSet::whole(rel.clone()), None);
        (rel, tree)
    }

    fn need(rel: &Relation) -> NormalizedQuery {
        parse_and_normalize(
            "SELECT * FROM t WHERE neighborhood IN ('Redmond') AND price BETWEEN 210000 AND 230000",
            rel.schema(),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let (rel, tree) = setup();
        let w = need(&rel);
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let u = NoisyUser::new(42);
        let a = noisy_explore_all(&tree, &w, &judge, &u);
        let b = noisy_explore_all(&tree, &w, &judge, &u);
        assert_eq!(a, b);
        let c = noisy_explore_all(&tree, &w, &judge, &NoisyUser::new(43));
        // Different seed very likely differs somewhere.
        assert!(a != c || a.items() == c.items());
    }

    #[test]
    fn zero_noise_matches_oracle() {
        let (rel, tree) = setup();
        let w = need(&rel);
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let mut u = NoisyUser::new(7).with_error_rates(0.0, 0.0, 0.0);
        u.showtuples_bias = 0.0;
        let noisy = noisy_explore_all(&tree, &w, &judge, &u);
        let oracle = actual_cost_all(&tree, &w, &judge);
        assert_eq!(noisy.items(), oracle.items());
        assert_eq!(noisy.relevant_found, oracle.relevant_found);
    }

    #[test]
    fn false_skip_loses_relevant_tuples() {
        let (rel, tree) = setup();
        let w = need(&rel);
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let careless = NoisyUser::new(3).with_error_rates(0.0, 0.9, 0.0);
        let careful = NoisyUser::new(3).with_error_rates(0.0, 0.0, 0.0);
        let lost = noisy_explore_all(&tree, &w, &judge, &careless);
        let kept = noisy_explore_all(&tree, &w, &judge, &careful);
        assert!(lost.relevant_found <= kept.relevant_found);
        assert!(kept.relevant_found > 0);
    }

    #[test]
    fn patience_caps_items_and_flags_give_up() {
        let (rel, tree) = setup();
        let w = parse_and_normalize("SELECT * FROM t", rel.schema()).unwrap();
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let u = NoisyUser::new(5).with_patience(25);
        let s = noisy_explore_all(&tree, &w, &judge, &u);
        assert!(s.items() <= 26, "items={}", s.items());
        assert!(s.gave_up);
    }

    #[test]
    fn one_scenario_terminates_and_finds_at_most_one() {
        let (rel, tree) = setup();
        let w = need(&rel);
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        for seed in 0..20 {
            let u = NoisyUser::new(seed);
            let s = noisy_explore_one(&tree, &w, &judge, &u);
            assert!(s.relevant_found <= 1);
        }
    }
}
