//! Synthetic explorations (paper Section 6.2).
//!
//! A held-out workload query `W` plays the user: she drills into
//! exactly the categories of `T` whose labels overlap `W`'s selection
//! conditions and ignores the rest. At a node whose subcategorizing
//! attribute is unconstrained by `W`, every subcategory would overlap,
//! so she browses the tuples instead (SHOWTUPLES) — the behavioral
//! assumption behind the paper's `Pw` estimator, applied
//! deterministically.

use crate::relevance::RelevanceJudge;
use crate::trace::ExplorationStats;
use qcat_core::{CategoryTree, NodeId};
use qcat_sql::NormalizedQuery;

/// Replay the `ALL` scenario: the user examines everything needed to
/// find every relevant tuple reachable through categories she judges
/// interesting.
pub fn actual_cost_all(
    tree: &CategoryTree,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
) -> ExplorationStats {
    let mut span = qcat_obs::span!("explore.all");
    let mut stats = ExplorationStats::default();
    explore_all(tree, NodeId::ROOT, need, judge, &mut stats);
    if qcat_obs::active() {
        span.set("nodes_explored", stats.nodes_explored);
        span.set("tuples_examined", stats.tuples_examined);
        span.set("relevant_found", stats.relevant_found);
    }
    stats
}

fn explore_all(
    tree: &CategoryTree,
    id: NodeId,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    stats: &mut ExplorationStats,
) {
    let node = tree.node(id);
    stats.nodes_explored += 1;
    let showcat = !node.is_leaf() && wants_showcat(tree, id, need);
    if !showcat {
        // SHOWTUPLES: examine every tuple of tset(C).
        stats.showtuples_choices += 1;
        stats.tuples_examined += node.tuple_count();
        stats.relevant_found += judge.count_relevant(tree.relation(), &node.tset);
        return;
    }
    for &child in &node.children {
        stats.labels_examined += 1;
        let label = tree
            .node(child)
            .label
            .as_ref()
            .expect("non-root nodes are labeled");
        if label.query_overlaps(need) {
            explore_all(tree, child, need, judge, stats);
        }
    }
}

/// Replay the `ONE` scenario: the user stops at the first relevant
/// tuple she recognizes. Returns the stats; `relevant_found` is 1 when
/// she succeeded.
pub fn actual_cost_one(
    tree: &CategoryTree,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
) -> ExplorationStats {
    let mut span = qcat_obs::span!("explore.one");
    let mut stats = ExplorationStats::default();
    explore_one(tree, NodeId::ROOT, need, judge, &mut stats);
    if qcat_obs::active() {
        span.set("nodes_explored", stats.nodes_explored);
        span.set("tuples_examined", stats.tuples_examined);
        span.set("found", stats.relevant_found > 0);
    }
    stats
}

fn explore_one(
    tree: &CategoryTree,
    id: NodeId,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    stats: &mut ExplorationStats,
) -> bool {
    let node = tree.node(id);
    stats.nodes_explored += 1;
    let showcat = !node.is_leaf() && wants_showcat(tree, id, need);
    if !showcat {
        stats.showtuples_choices += 1;
        for &row in &node.tset {
            stats.tuples_examined += 1;
            if judge.is_relevant(tree.relation(), row) {
                stats.relevant_found = 1;
                return true;
            }
        }
        return false;
    }
    for &child in &node.children {
        stats.labels_examined += 1;
        let label = tree
            .node(child)
            .label
            .as_ref()
            .expect("non-root nodes are labeled");
        if label.query_overlaps(need)
            && explore_one(tree, child, need, judge, stats)
        {
            // Paper model: once a drilled-into subcategory yields the
            // tuple, the remaining sibling labels go unread.
            return true;
        }
    }
    false
}

/// The user chooses SHOWCAT iff her query constrains the node's
/// subcategorizing attribute (she can then skip categories); otherwise
/// every label would interest her and she browses.
fn wants_showcat(tree: &CategoryTree, id: NodeId, need: &NormalizedQuery) -> bool {
    tree.subcategorizing_attr(id)
        .is_some_and(|attr| need.constrains(attr))
}

/// The `ONE` scenario with ranked tuple presentation — quantifies the
/// paper's claim that ranking *complements* categorization: wherever
/// the user falls back to SHOWTUPLES, tuples are scanned in the order
/// `order` produces (e.g. `qcat-core`'s `WorkloadRanker`) instead of
/// table order.
pub fn actual_cost_one_ordered(
    tree: &CategoryTree,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    order: &dyn Fn(&[u32]) -> Vec<u32>,
) -> ExplorationStats {
    let mut stats = ExplorationStats::default();
    explore_one_ordered(tree, NodeId::ROOT, need, judge, order, &mut stats);
    stats
}

fn explore_one_ordered(
    tree: &CategoryTree,
    id: NodeId,
    need: &NormalizedQuery,
    judge: &RelevanceJudge,
    order: &dyn Fn(&[u32]) -> Vec<u32>,
    stats: &mut ExplorationStats,
) -> bool {
    let node = tree.node(id);
    stats.nodes_explored += 1;
    let showcat = !node.is_leaf() && wants_showcat(tree, id, need);
    if !showcat {
        stats.showtuples_choices += 1;
        for row in order(&node.tset) {
            stats.tuples_examined += 1;
            if judge.is_relevant(tree.relation(), row) {
                stats.relevant_found = 1;
                return true;
            }
        }
        return false;
    }
    for &child in &node.children {
        stats.labels_examined += 1;
        let label = tree
            .node(child)
            .label
            .as_ref()
            .expect("non-root nodes are labeled");
        if label.query_overlaps(need)
            && explore_one_ordered(tree, child, need, judge, order, stats)
        {
            return true;
        }
    }
    false
}

/// The `No categorization` baseline, ALL scenario: the user scans the
/// whole result set.
pub fn no_categorization_all(
    result_rows: &[u32],
    relation: &qcat_data::Relation,
    judge: &RelevanceJudge,
) -> ExplorationStats {
    ExplorationStats {
        tuples_examined: result_rows.len(),
        relevant_found: judge.count_relevant(relation, result_rows),
        nodes_explored: 1,
        showtuples_choices: 1,
        ..Default::default()
    }
}

/// The `No categorization` baseline, ONE scenario: scan until the
/// first relevant tuple.
pub fn no_categorization_one(
    result_rows: &[u32],
    relation: &qcat_data::Relation,
    judge: &RelevanceJudge,
) -> ExplorationStats {
    let mut stats = ExplorationStats {
        nodes_explored: 1,
        showtuples_choices: 1,
        ..Default::default()
    };
    for &row in result_rows {
        stats.tuples_examined += 1;
        if judge.is_relevant(relation, row) {
            stats.relevant_found = 1;
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_core::{CategorizeConfig, Categorizer};
    use qcat_data::{AttrId, AttrType, Field, Relation, RelationBuilder, Schema};
    use qcat_exec::execute_normalized;
    use qcat_sql::parse_and_normalize;
    use qcat_workload::{PreprocessConfig, WorkloadLog, WorkloadStatistics};

    /// 90 homes across 3 neighborhoods with rising prices.
    fn setup() -> (Relation, WorkloadStatistics) {
        let schema = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap();
        let mut b = RelationBuilder::new(schema.clone());
        let hoods = ["Redmond", "Bellevue", "Seattle"];
        for i in 0..90 {
            b.push_row(&[
                hoods[i % 3].into(),
                (200_000.0 + (i as f64) * 1_000.0).into(),
            ])
            .unwrap();
        }
        let rel = b.finish().unwrap();
        let mut w = Vec::new();
        for _ in 0..40 {
            w.push("SELECT * FROM t WHERE neighborhood IN ('Redmond')".to_string());
        }
        for i in 0..40 {
            let lo = 200_000 + (i % 8) * 10_000;
            w.push(format!(
                "SELECT * FROM t WHERE price BETWEEN {lo} AND {}",
                lo + 20_000
            ));
        }
        let log = WorkloadLog::parse(w.iter().map(String::as_str), &schema, None);
        let cfg = PreprocessConfig::new().with_interval(AttrId(1), 5_000.0);
        (rel.clone(), WorkloadStatistics::build(&log, &schema, &cfg))
    }

    fn tree_for(rel: &Relation, stats: &WorkloadStatistics) -> qcat_core::CategoryTree {
        let q = parse_and_normalize("SELECT * FROM t WHERE price >= 200000", rel.schema()).unwrap();
        let result = execute_normalized(rel, &q).unwrap();
        let config = CategorizeConfig::default()
            .with_max_leaf_tuples(10)
            .with_attr_threshold(0.1);
        Categorizer::new(stats, config).categorize(&result, Some(&q))
    }

    #[test]
    fn all_scenario_finds_every_relevant_tuple() {
        let (rel, stats) = setup();
        let tree = tree_for(&rel, &stats);
        let w = parse_and_normalize(
            "SELECT * FROM t WHERE neighborhood IN ('Redmond') AND price BETWEEN 210000 AND 240000",
            rel.schema(),
        )
        .unwrap();
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let s = actual_cost_all(&tree, &w, &judge);
        // Ground truth.
        let expected = judge.count_relevant(&rel, &rel.all_row_ids());
        assert!(expected > 0);
        assert_eq!(s.relevant_found, expected);
        // Categorization must beat scanning all 90 tuples.
        assert!(s.items() < 90, "expected savings, got {} items", s.items());
    }

    #[test]
    fn unconstrained_attrs_trigger_showtuples() {
        let (rel, stats) = setup();
        let tree = tree_for(&rel, &stats);
        // W constrains nothing the tree categorizes on → SHOWTUPLES at
        // the root, examining everything.
        let w = parse_and_normalize("SELECT * FROM t", rel.schema()).unwrap();
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let s = actual_cost_all(&tree, &w, &judge);
        assert_eq!(s.tuples_examined, 90);
        assert_eq!(s.labels_examined, 0);
        assert_eq!(s.showtuples_choices, 1);
    }

    #[test]
    fn one_scenario_stops_early() {
        let (rel, stats) = setup();
        let tree = tree_for(&rel, &stats);
        let w = parse_and_normalize(
            "SELECT * FROM t WHERE price BETWEEN 230000 AND 260000",
            rel.schema(),
        )
        .unwrap();
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let one = actual_cost_one(&tree, &w, &judge);
        let all = actual_cost_all(&tree, &w, &judge);
        assert_eq!(one.relevant_found, 1);
        assert!(one.items() <= all.items());
    }

    #[test]
    fn one_scenario_backtracks_on_empty_category() {
        // Tree on neighborhood; W names two neighborhoods but only the
        // second contains a relevant (set-judged) tuple: the user
        // drills into the first, fails, and continues.
        let (rel, stats) = setup();
        let tree = tree_for(&rel, &stats);
        let w = parse_and_normalize(
            "SELECT * FROM t WHERE neighborhood IN ('Redmond','Bellevue')",
            rel.schema(),
        )
        .unwrap();
        // Relevant tuple: row 1 is Bellevue (i%3==1).
        let judge = RelevanceJudge::from_set([1u32]);
        let s = actual_cost_one(&tree, &w, &judge);
        assert_eq!(s.relevant_found, 1, "must eventually find row 1");
    }

    #[test]
    fn no_categorization_baselines() {
        let (rel, _) = setup();
        let rows = rel.all_row_ids();
        let judge = RelevanceJudge::from_set([5u32, 50u32]);
        let all = no_categorization_all(&rows, &rel, &judge);
        assert_eq!(all.tuples_examined, 90);
        assert_eq!(all.relevant_found, 2);
        let one = no_categorization_one(&rows, &rel, &judge);
        assert_eq!(one.tuples_examined, 6); // rows 0..5 inclusive
        assert_eq!(one.relevant_found, 1);
    }

    #[test]
    fn irrelevant_need_examines_labels_only() {
        let (rel, stats) = setup();
        let tree = tree_for(&rel, &stats);
        // Constrains both attributes (so the user SHOWCATs) with
        // values nothing in the data matches: no label overlaps.
        let w = parse_and_normalize(
            "SELECT * FROM t WHERE neighborhood IN ('Atlantis') AND price BETWEEN 1 AND 2",
            rel.schema(),
        )
        .unwrap();
        let judge = RelevanceJudge::from_query(&w, &rel).unwrap();
        let s = actual_cost_all(&tree, &w, &judge);
        assert_eq!(s.relevant_found, 0);
        assert_eq!(s.tuples_examined, 0);
        assert!(s.labels_examined > 0);
    }
}
