//! Tuple-level relevance judgment.

use qcat_data::Relation;
use qcat_sql::eval::CompiledPredicate;
use qcat_sql::{NormalizeError, NormalizedQuery};
use std::collections::HashSet;

/// Decides whether a tuple is relevant to the (simulated) user.
#[derive(Debug, Clone)]
pub enum RelevanceJudge {
    /// A tuple is relevant iff it satisfies the user's true
    /// information-need query — the synthetic-exploration rule of
    /// Section 6.2.
    Predicate(CompiledPredicate),
    /// A tuple is relevant iff its row id is in the user's hidden
    /// relevant set — how the noisy real-life simulation models
    /// individual taste.
    Set(HashSet<u32>),
}

impl RelevanceJudge {
    /// Judge from a normalized query compiled against `relation`.
    pub fn from_query(
        query: &NormalizedQuery,
        relation: &Relation,
    ) -> Result<Self, NormalizeError> {
        Ok(RelevanceJudge::Predicate(CompiledPredicate::compile(
            query, relation,
        )?))
    }

    /// Judge from an explicit relevant-row set.
    pub fn from_set(rows: impl IntoIterator<Item = u32>) -> Self {
        RelevanceJudge::Set(rows.into_iter().collect())
    }

    /// Is `row` relevant?
    pub fn is_relevant(&self, relation: &Relation, row: u32) -> bool {
        match self {
            RelevanceJudge::Predicate(p) => p.matches_row(relation, row),
            RelevanceJudge::Set(s) => s.contains(&row),
        }
    }

    /// Count relevant rows in `rows`.
    pub fn count_relevant(&self, relation: &Relation, rows: &[u32]) -> usize {
        rows.iter()
            .filter(|&&r| self.is_relevant(relation, r))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, RelationBuilder, Schema};
    use qcat_sql::parse_and_normalize;

    fn rel() -> Relation {
        let schema = Schema::new(vec![Field::new("price", AttrType::Float)]).unwrap();
        let mut b = RelationBuilder::new(schema);
        for p in [100.0, 200.0, 300.0] {
            b.push_row(&[p.into()]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn predicate_judge() {
        let r = rel();
        let q = parse_and_normalize("SELECT * FROM t WHERE price >= 200", r.schema()).unwrap();
        let judge = RelevanceJudge::from_query(&q, &r).unwrap();
        assert!(!judge.is_relevant(&r, 0));
        assert!(judge.is_relevant(&r, 1));
        assert_eq!(judge.count_relevant(&r, &[0, 1, 2]), 2);
    }

    #[test]
    fn set_judge() {
        let r = rel();
        let judge = RelevanceJudge::from_set([2]);
        assert!(!judge.is_relevant(&r, 0));
        assert!(judge.is_relevant(&r, 2));
        assert_eq!(judge.count_relevant(&r, &[0, 1, 2]), 1);
    }
}
