//! Counters produced by an exploration replay.

use std::ops::AddAssign;

/// What one exploration examined.
///
/// The paper's actual cost `CostAll(X, T)` is the total number of
/// items — category labels **and** data tuples — the user examined
/// ([`ExplorationStats::items`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Category labels read.
    pub labels_examined: usize,
    /// Data tuples read (all fields of a tuple = one item).
    pub tuples_examined: usize,
    /// Relevant tuples the user actually recognized.
    pub relevant_found: usize,
    /// Categories explored (SHOWTUPLES or SHOWCAT).
    pub nodes_explored: usize,
    /// Times the user chose SHOWTUPLES.
    pub showtuples_choices: usize,
    /// Whether the user gave up (noisy users only; patience ran out).
    pub gave_up: bool,
}

impl ExplorationStats {
    /// Total items examined — the information-overload cost.
    pub fn items(&self) -> usize {
        self.labels_examined + self.tuples_examined
    }

    /// Items per relevant tuple found — the normalized cost of
    /// Figure 11. Returns `None` when nothing relevant was found.
    pub fn normalized_cost(&self) -> Option<f64> {
        (self.relevant_found > 0).then(|| self.items() as f64 / self.relevant_found as f64)
    }
}

impl AddAssign for ExplorationStats {
    fn add_assign(&mut self, rhs: Self) {
        self.labels_examined += rhs.labels_examined;
        self.tuples_examined += rhs.tuples_examined;
        self.relevant_found += rhs.relevant_found;
        self.nodes_explored += rhs.nodes_explored;
        self.showtuples_choices += rhs.showtuples_choices;
        self.gave_up |= rhs.gave_up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_sums_labels_and_tuples() {
        let s = ExplorationStats {
            labels_examined: 6,
            tuples_examined: 20,
            relevant_found: 4,
            ..Default::default()
        };
        assert_eq!(s.items(), 26);
        assert_eq!(s.normalized_cost(), Some(6.5));
    }

    #[test]
    fn normalized_cost_none_when_nothing_found() {
        let s = ExplorationStats::default();
        assert_eq!(s.normalized_cost(), None);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ExplorationStats {
            labels_examined: 1,
            tuples_examined: 2,
            relevant_found: 1,
            nodes_explored: 1,
            showtuples_choices: 0,
            gave_up: false,
        };
        a += ExplorationStats {
            labels_examined: 3,
            tuples_examined: 4,
            relevant_found: 0,
            nodes_explored: 2,
            showtuples_choices: 1,
            gave_up: true,
        };
        assert_eq!(a.labels_examined, 4);
        assert_eq!(a.tuples_examined, 6);
        assert_eq!(a.relevant_found, 1);
        assert_eq!(a.nodes_explored, 3);
        assert_eq!(a.showtuples_choices, 1);
        assert!(a.gave_up);
    }
}
