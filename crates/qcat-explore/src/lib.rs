#![warn(missing_docs)]

//! Exploration simulation: measuring the *actual* information-overload
//! cost of a category tree.
//!
//! The estimated costs in `qcat-core::cost` come from the analytical
//! models of Section 4.1. Validating them (the paper's Experiment 1)
//! requires replaying explorations and counting what a user actually
//! examines. This crate provides:
//!
//! - [`oracle`]: the deterministic *synthetic exploration* of
//!   Section 6.2 — a held-out workload query `W` stands in for a user
//!   who drills into exactly the categories overlapping `W` and
//!   ignores the rest;
//! - [`noisy`]: seeded stochastic users standing in for the 11 human
//!   subjects of Section 6.3 — they misjudge labels, sometimes browse
//!   instead of drilling, overlook relevant tuples, and run out of
//!   patience;
//! - [`relevance`]: tuple-level relevance judgment (predicate-based
//!   for synthetic explorations, set-based for noisy users);
//! - [`trace`]: the counters every replay produces.
//!
//! Estimation (`qcat-core`) and measurement (this crate) deliberately
//! share no code: comparing them is the experiment.

pub mod noisy;
pub mod oracle;
pub mod relevance;
pub mod trace;

pub use noisy::{noisy_explore_all, noisy_explore_one, NoisyUser};
pub use oracle::{
    actual_cost_all, actual_cost_one, actual_cost_one_ordered, no_categorization_all,
    no_categorization_one,
};
pub use relevance::RelevanceJudge;
pub use trace::ExplorationStats;
