//! Budgets and the running [`Gas`] the pipeline charges against.
//!
//! A [`Budget`] is a declarative limit set (all optional); calling
//! [`Budget::start`] stamps the deadline against a monotonic clock and
//! yields a [`Gas`] — a cheap `Arc` handle that many threads charge
//! concurrently. Exhaustion is **sticky**: the first failed charge (or
//! an explicit [`Gas::cancel`]) records its [`BudgetExceeded`] reason
//! once, and every subsequent [`Gas::check`]/[`Gas::checkpoint`] on
//! any thread observes it. That is what makes cancellation
//! cooperative: hot loops poll a relaxed atomic, and only serial
//! control points decide what a tripped budget *means* (structured
//! error vs. degraded result).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The result-row cap was exceeded.
    Rows,
    /// The tree-node cap was exceeded.
    Nodes,
    /// The candidate-label cap was exceeded.
    Labels,
    /// The estimated-heap cap was exceeded.
    Heap,
    /// [`Gas::cancel`] was called (admission control, client gone).
    Cancelled,
}

impl BudgetExceeded {
    /// Stable lowercase name, used in telemetry and rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetExceeded::Deadline => "deadline",
            BudgetExceeded::Rows => "rows",
            BudgetExceeded::Nodes => "nodes",
            BudgetExceeded::Labels => "labels",
            BudgetExceeded::Heap => "heap",
            BudgetExceeded::Cancelled => "cancelled",
        }
    }

    fn code(self) -> u8 {
        match self {
            BudgetExceeded::Deadline => 1,
            BudgetExceeded::Rows => 2,
            BudgetExceeded::Nodes => 3,
            BudgetExceeded::Labels => 4,
            BudgetExceeded::Heap => 5,
            BudgetExceeded::Cancelled => 6,
        }
    }

    fn from_code(code: u8) -> Option<BudgetExceeded> {
        Some(match code {
            1 => BudgetExceeded::Deadline,
            2 => BudgetExceeded::Rows,
            3 => BudgetExceeded::Nodes,
            4 => BudgetExceeded::Labels,
            5 => BudgetExceeded::Heap,
            6 => BudgetExceeded::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget exceeded: {}", self.as_str())
    }
}

impl std::error::Error for BudgetExceeded {}

/// Declarative resource limits for one serve call. All fields are
/// optional; the default is unlimited, which costs nothing to start
/// and nothing to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Budget::start`] on the
    /// monotonic clock.
    pub deadline: Option<Duration>,
    /// Cap on result rows the executor may return.
    pub max_rows: Option<usize>,
    /// Cap on category-tree nodes the categorizer may attach.
    pub max_nodes: Option<usize>,
    /// Cap on candidate labels priced per categorization.
    pub max_labels: Option<usize>,
    /// Cap on the estimated working-set heap, in bytes.
    pub max_heap_bytes: Option<usize>,
}

impl Budget {
    /// No limits at all (the `Default`).
    pub const UNLIMITED: Budget = Budget {
        deadline: None,
        max_rows: None,
        max_nodes: None,
        max_labels: None,
        max_heap_bytes: None,
    };

    /// True when every limit is absent.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Set the result-row cap.
    pub fn with_max_rows(mut self, n: usize) -> Budget {
        self.max_rows = Some(n);
        self
    }

    /// Set the tree-node cap.
    pub fn with_max_nodes(mut self, n: usize) -> Budget {
        self.max_nodes = Some(n);
        self
    }

    /// Set the candidate-label cap.
    pub fn with_max_labels(mut self, n: usize) -> Budget {
        self.max_labels = Some(n);
        self
    }

    /// Set the estimated-heap cap.
    pub fn with_max_heap_bytes(mut self, n: usize) -> Budget {
        self.max_heap_bytes = Some(n);
        self
    }

    /// Start the clock: stamp the deadline and return a fresh gas.
    pub fn start(&self) -> Gas {
        Gas {
            inner: Arc::new(GasInner {
                deadline: self.deadline.map(|d| Instant::now() + d),
                budget: *self,
                rows: AtomicUsize::new(0),
                nodes: AtomicUsize::new(0),
                labels: AtomicUsize::new(0),
                heap: AtomicUsize::new(0),
                tripped: AtomicU8::new(0),
            }),
        }
    }
}

#[derive(Debug)]
struct GasInner {
    deadline: Option<Instant>,
    budget: Budget,
    rows: AtomicUsize,
    nodes: AtomicUsize,
    labels: AtomicUsize,
    heap: AtomicUsize,
    tripped: AtomicU8,
}

/// A running budget. Clones share state, so one gas travels from the
/// serving thread into pool workers; all charges and checks are
/// lock-free.
#[derive(Debug, Clone)]
pub struct Gas {
    inner: Arc<GasInner>,
}

impl Gas {
    /// Trip the sticky exhaustion flag; the first reason wins and is
    /// returned (a later tripper learns what actually stopped the
    /// run). Bumps the `budget.exceeded` counter exactly once.
    fn trip(&self, reason: BudgetExceeded) -> BudgetExceeded {
        match self.inner.tripped.compare_exchange(
            0,
            reason.code(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                qcat_obs::counter("budget.exceeded", 1);
                reason
            }
            Err(prev) => BudgetExceeded::from_code(prev).unwrap_or(reason),
        }
    }

    /// The sticky exhaustion reason, if any charge has failed.
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        BudgetExceeded::from_code(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// Mark this gas cancelled (admission control, client gone). All
    /// cooperating loops drain at their next checkpoint.
    pub fn cancel(&self) {
        self.trip(BudgetExceeded::Cancelled);
    }

    /// Cooperative checkpoint: `Err` once the gas is exhausted. Also
    /// polls the deadline, so call sites strided through hot loops are
    /// what turns the deadline into cancellation.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(reason) = self.exceeded() {
            return Err(reason);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(BudgetExceeded::Deadline));
            }
        }
        Ok(())
    }

    /// [`Gas::check`] as a bool, for `while`/`retain`-shaped loops.
    pub fn checkpoint(&self) -> bool {
        self.check().is_ok()
    }

    fn charge(
        &self,
        used: &AtomicUsize,
        cap: Option<usize>,
        reason: BudgetExceeded,
        n: usize,
    ) -> Result<(), BudgetExceeded> {
        if let Some(reason) = self.exceeded() {
            return Err(reason);
        }
        let Some(cap) = cap else { return Ok(()) };
        let before = used.fetch_add(n, Ordering::Relaxed);
        if before.saturating_add(n) > cap {
            return Err(self.trip(reason));
        }
        Ok(())
    }

    /// Charge `n` result rows against the row cap.
    pub fn charge_rows(&self, n: usize) -> Result<(), BudgetExceeded> {
        self.charge(&self.inner.rows, self.inner.budget.max_rows, BudgetExceeded::Rows, n)
    }

    /// Charge `n` attached tree nodes against the node cap.
    pub fn charge_nodes(&self, n: usize) -> Result<(), BudgetExceeded> {
        self.charge(&self.inner.nodes, self.inner.budget.max_nodes, BudgetExceeded::Nodes, n)
    }

    /// Charge `n` priced candidate labels against the label cap.
    pub fn charge_labels(&self, n: usize) -> Result<(), BudgetExceeded> {
        self.charge(
            &self.inner.labels,
            self.inner.budget.max_labels,
            BudgetExceeded::Labels,
            n,
        )
    }

    /// Charge `n` estimated heap bytes against the heap cap.
    pub fn charge_heap(&self, n: usize) -> Result<(), BudgetExceeded> {
        self.charge(
            &self.inner.heap,
            self.inner.budget.max_heap_bytes,
            BudgetExceeded::Heap,
            n,
        )
    }
}

// ---------------------------------------------------------------------------
// The current gas: thread-scoped, mirroring qcat_obs::with_recorder.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Gas>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `CURRENT.len()` readable without a RefCell borrow, so
    /// the no-budget fast path of [`current_gas`] is one `Cell` read.
    static CURRENT_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The gas pipeline stages should charge right now: the innermost
/// [`with_budget`] scope on this thread, if any. There is deliberately
/// no process-global gas — a budget belongs to one serve call.
pub fn current_gas() -> Option<Gas> {
    if CURRENT_DEPTH.with(|d| d.get() > 0) {
        CURRENT.with(|c| c.borrow().last().cloned())
    } else {
        None
    }
}

/// Run `f` with `gas` as this thread's current budget. Scopes nest;
/// the previous gas is restored even if `f` panics.
pub fn with_budget<T>(gas: &Gas, f: impl FnOnce() -> T) -> T {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
            CURRENT_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    CURRENT.with(|c| c.borrow_mut().push(gas.clone()));
    CURRENT_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = PopOnDrop;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let gas = Budget::default().start();
        assert!(Budget::default().is_unlimited());
        gas.charge_rows(1 << 30).unwrap();
        gas.charge_nodes(1 << 30).unwrap();
        gas.check().unwrap();
        assert_eq!(gas.exceeded(), None);
    }

    #[test]
    fn row_cap_trips_sticky() {
        let gas = Budget::default().with_max_rows(10).start();
        gas.charge_rows(8).unwrap();
        assert_eq!(gas.charge_rows(3), Err(BudgetExceeded::Rows));
        // Sticky: every later charge and check reports the same reason.
        assert_eq!(gas.charge_nodes(1), Err(BudgetExceeded::Rows));
        assert_eq!(gas.check(), Err(BudgetExceeded::Rows));
        assert!(!gas.checkpoint());
        assert_eq!(gas.exceeded(), Some(BudgetExceeded::Rows));
    }

    #[test]
    fn first_reason_wins() {
        let gas = Budget::default().with_max_rows(0).with_max_nodes(0).start();
        assert_eq!(gas.charge_rows(1), Err(BudgetExceeded::Rows));
        // A later node overflow still reports the original trip.
        assert_eq!(gas.charge_nodes(1), Err(BudgetExceeded::Rows));
    }

    #[test]
    fn expired_deadline_trips_on_check() {
        let gas = Budget::default().with_deadline(Duration::ZERO).start();
        assert_eq!(gas.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(gas.exceeded(), Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let gas = Budget::default().start();
        let other = gas.clone();
        other.cancel();
        assert_eq!(gas.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn label_and_heap_caps_trip() {
        let gas = Budget::default().with_max_labels(2).start();
        gas.charge_labels(2).unwrap();
        assert_eq!(gas.charge_labels(1), Err(BudgetExceeded::Labels));
        let gas = Budget::default().with_max_heap_bytes(100).start();
        assert_eq!(gas.charge_heap(101), Err(BudgetExceeded::Heap));
    }

    #[test]
    fn thread_scoped_current_gas() {
        assert!(current_gas().is_none());
        let gas = Budget::default().with_max_rows(1).start();
        with_budget(&gas, || {
            let seen = current_gas().expect("gas in scope");
            let _ = seen.charge_rows(2);
        });
        assert!(current_gas().is_none());
        assert_eq!(gas.exceeded(), Some(BudgetExceeded::Rows));
    }

    #[test]
    fn display_and_names_are_stable() {
        assert_eq!(BudgetExceeded::Deadline.to_string(), "budget exceeded: deadline");
        for r in [
            BudgetExceeded::Deadline,
            BudgetExceeded::Rows,
            BudgetExceeded::Nodes,
            BudgetExceeded::Labels,
            BudgetExceeded::Heap,
            BudgetExceeded::Cancelled,
        ] {
            assert_eq!(BudgetExceeded::from_code(r.code()), Some(r));
        }
        assert_eq!(BudgetExceeded::from_code(0), None);
    }
}
