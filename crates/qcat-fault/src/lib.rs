#![warn(missing_docs)]

//! Resource governance and fault injection for the qcat workspace.
//!
//! The paper bounds the *user's* effort (Eq. 1/2 information-overload
//! cost); this crate bounds the *system's*. It has two halves that
//! share one design: a thread-scoped "current" handle over an optional
//! process global, exactly like `qcat_obs`'s recorder, so the disabled
//! path is one thread-local `Cell` read plus one relaxed atomic load.
//!
//! - [`budget`]: a declarative [`Budget`] (wall-clock deadline via a
//!   monotonic clock, caps on result rows / tree nodes / labels / an
//!   estimated heap) started into a running [`Gas`] that pipeline
//!   stages charge against. Exhaustion is *sticky* and cooperative:
//!   the first failed charge trips a flag, every later checkpoint sees
//!   it, and callers unwind to a serial point where they can return a
//!   structured error (`qcat-exec`) or a degraded prefix tree
//!   (`core`). See `docs/ROBUSTNESS.md` for the degradation ladder.
//! - [`fault`]: deterministic, seedable fault points. Library code
//!   calls [`fault::point`]`("exec.scan")`; a binary opts in with
//!   `QCAT_FAULT=exec.scan:error:p=0.5:seed=7` (see the grammar on
//!   [`fault::FaultPlan::parse`]) and the site then injects errors,
//!   delays, panics, or allocation pressure with a per-rule
//!   splitmix64 stream. With no plan installed every site is a no-op
//!   flag read.
//!
//! Both halves report through `qcat-obs` (`budget.exceeded`,
//! `fault.injected` counters); events are left to the serving layer so
//! worker threads never write to the single-threaded trace stream.

pub mod budget;
pub mod fault;

pub use budget::{current_gas, with_budget, Budget, BudgetExceeded, Gas};
pub use fault::{current_plan, init_from_env, install_global, point, with_plan, Fault, FaultPlan};

/// Everything a worker thread needs to observe the caller's fault and
/// budget context: the current [`FaultPlan`] and [`Gas`], captured on
/// the spawning thread and re-installed inside the worker via
/// [`Propagation::scope`]. `qcat-pool` uses this the same way it
/// forwards the `qcat-obs` recorder.
#[derive(Clone, Debug, Default)]
pub struct Propagation {
    plan: Option<FaultPlan>,
    gas: Option<Gas>,
}

/// Capture the calling thread's current fault plan and gas.
pub fn capture() -> Propagation {
    Propagation {
        plan: current_plan(),
        gas: current_gas(),
    }
}

impl Propagation {
    /// True when there is nothing to propagate (the common case).
    pub fn is_empty(&self) -> bool {
        self.plan.is_none() && self.gas.is_none()
    }

    /// The captured gas, if any.
    pub fn gas(&self) -> Option<&Gas> {
        self.gas.as_ref()
    }

    /// Run `f` with the captured context installed as this thread's
    /// current fault plan and budget. Restores the previous context
    /// even if `f` panics.
    pub fn scope<T>(&self, f: impl FnOnce() -> T) -> T {
        match (&self.plan, &self.gas) {
            (None, None) => f(),
            (Some(p), None) => with_plan(p, f),
            (None, Some(g)) => with_budget(g, f),
            (Some(p), Some(g)) => with_plan(p, || with_budget(g, f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_propagation_is_transparent() {
        let ctx = capture();
        assert!(ctx.is_empty());
        assert_eq!(ctx.scope(|| 7), 7);
    }

    #[test]
    fn propagation_carries_plan_and_gas() {
        let plan = FaultPlan::parse("test.site:error").unwrap();
        let budget = Budget::default().with_max_rows(10);
        let gas = budget.start();
        let ctx = with_plan(&plan, || with_budget(&gas, capture));
        assert!(!ctx.is_empty());
        ctx.scope(|| {
            assert!(point("test.site").is_some());
            assert!(current_gas().is_some());
        });
        // Outside the scope both are gone again.
        assert!(point("test.site").is_none());
        assert!(current_gas().is_none());
    }
}
