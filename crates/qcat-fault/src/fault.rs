//! Deterministic, seedable fault points.
//!
//! A fault point is one line of library code:
//!
//! ```ignore
//! if let Some(fault) = qcat_fault::point("exec.scan") {
//!     return Err(fault.into());
//! }
//! ```
//!
//! With no plan installed (`QCAT_FAULT` unset, no [`with_plan`] scope)
//! that line is a thread-local `Cell` read plus one relaxed atomic
//! load — the same disabled-path budget as `qcat_obs`. With a plan,
//! each matching rule rolls a splitmix64 stream indexed by its own hit
//! counter, so a `(spec, seed)` pair replays the identical fault
//! sequence at every site that is visited in a deterministic order.
//!
//! Kinds: `error` hands the caller a [`Fault`] to convert into its own
//! structured error; `delay`, `panic`, and `alloc` are applied *by the
//! harness* (sleep, panic, transient allocation) so a site only ever
//! needs to handle the error case. Chaos tests then assert the system
//! turns every one of these into a structured error or a degraded
//! result — never a wedge.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// An injected error, returned by [`point`] for `error`-kind rules.
/// The caller converts it into its layer's structured error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for Fault {}

/// What a rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Hand the site a [`Fault`] to return as a structured error.
    Error,
    /// Sleep for this many milliseconds (deadline/latency chaos).
    Delay { ms: u64 },
    /// Panic at the site (exercises unwind containment).
    Panic,
    /// Allocate-and-drop this many bytes (heap pressure).
    Alloc { bytes: usize },
}

#[derive(Debug)]
struct FaultRule {
    /// Site this rule arms, or `"*"` for every site.
    site: String,
    kind: FaultKind,
    /// Fire when `roll <= threshold`; `u64::MAX` means always.
    threshold: u64,
    seed: u64,
    /// Per-rule visit counter indexing the splitmix64 stream.
    hits: AtomicU64,
}

/// A parsed `QCAT_FAULT` specification. Clones share the per-rule hit
/// counters, so a plan handed to worker threads keeps one coherent
/// fault stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rules: Arc<Vec<FaultRule>>,
}

/// Every fault site compiled into the workspace.
///
/// [`FaultPlan::parse`] rejects rules naming any other site (except
/// `*` and the reserved `test.` prefix), so a typo'd chaos drill fails
/// loudly instead of passing vacuously with zero injected faults.
/// When a crate gains a new `point("...")` call, its site must be
/// added here or every spec arming it will be refused.
pub const KNOWN_SITES: &[&str] = &[
    "core.level",
    "data.append",
    "data.index.delta",
    "exec.execute",
    "exec.fetch",
    "exec.plan",
    "exec.residual",
    "exec.scan",
    "pool.task",
    "serve.fill",
    "serve.index.build",
    "workload.stats.delta",
];

/// splitmix64: the standard 64-bit finalizer-based stream generator.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, so a rule's stream also depends on the site it matched
/// (relevant for `*` rules).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// Parse a fault spec.
    ///
    /// Grammar: rules joined by `;`, each rule
    /// `site:kind[:key=value]...` where `kind` is one of `error`,
    /// `delay`, `panic`, `alloc`, and the keys are `p` (probability in
    /// `[0,1]`, default 1), `seed` (u64, default 0), `ms` (delay
    /// milliseconds, default 1), and `bytes` (alloc size, default
    /// 1 MiB). `site` is an instrumentation point name like
    /// `exec.scan`, or `*` to arm every site. Sites must appear in
    /// [`KNOWN_SITES`] — a misspelled site is a parse error, not a
    /// drill that silently injects nothing — except names under the
    /// reserved `test.` prefix, which are accepted for unit tests
    /// exercising the machinery without a compiled-in site.
    ///
    /// ```
    /// let plan = qcat_fault::FaultPlan::parse(
    ///     "exec.scan:error:p=0.5:seed=7;pool.task:delay:ms=2",
    /// ).unwrap();
    /// assert_eq!(plan.rule_count(), 2);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule in spec.split(';') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            let mut parts = rule.split(':');
            let site = parts.next().unwrap_or_default().trim();
            if site.is_empty() {
                return Err(format!("fault rule {rule:?} is missing a site"));
            }
            if site != "*" && !site.starts_with("test.") && !KNOWN_SITES.contains(&site) {
                return Err(format!(
                    "unknown fault site {site:?} (known sites: {})",
                    KNOWN_SITES.join(", ")
                ));
            }
            let kind_name = parts
                .next()
                .map(str::trim)
                .filter(|k| !k.is_empty())
                .ok_or_else(|| format!("fault rule {rule:?} is missing a kind"))?;
            let mut p = 1.0f64;
            let mut seed = 0u64;
            let mut ms = 1u64;
            let mut bytes = 1usize << 20;
            for param in parts {
                let (key, value) = param
                    .split_once('=')
                    .ok_or_else(|| format!("fault param {param:?} is not key=value"))?;
                match key.trim() {
                    "p" => {
                        p = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault p={value:?} is not a number"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("fault p={p} outside [0,1]"));
                        }
                    }
                    "seed" => {
                        seed = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault seed={value:?} is not a u64"))?
                    }
                    "ms" => {
                        ms = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault ms={value:?} is not a u64"))?
                    }
                    "bytes" => {
                        bytes = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault bytes={value:?} is not a usize"))?
                    }
                    other => return Err(format!("unknown fault param {other:?}")),
                }
            }
            let kind = match kind_name {
                "error" => FaultKind::Error,
                "delay" => FaultKind::Delay { ms },
                "panic" => FaultKind::Panic,
                "alloc" => FaultKind::Alloc { bytes },
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            let threshold = if p >= 1.0 {
                u64::MAX
            } else {
                (p * u64::MAX as f64) as u64
            };
            rules.push(FaultRule {
                site: site.to_string(),
                kind,
                threshold,
                seed,
                hits: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Err("fault spec contains no rules".to_string());
        }
        Ok(FaultPlan {
            rules: Arc::new(rules),
        })
    }

    /// Number of parsed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Evaluate every rule armed at `site`; applies delay/alloc/panic
    /// kinds in place and returns a [`Fault`] for a fired error rule.
    fn fire(&self, site: &'static str) -> Option<Fault> {
        let mut out = None;
        for rule in self.rules.iter() {
            if rule.site != "*" && rule.site != site {
                continue;
            }
            let hit = rule.hits.fetch_add(1, Ordering::Relaxed);
            let base = rule.seed ^ fnv1a(site);
            let roll = splitmix64(base.wrapping_add(hit.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            if rule.threshold != u64::MAX && roll > rule.threshold {
                continue;
            }
            qcat_obs::counter("fault.injected", 1);
            match rule.kind {
                FaultKind::Error => {
                    qcat_obs::counter("fault.error", 1);
                    out = Some(Fault { site });
                }
                FaultKind::Delay { ms } => {
                    qcat_obs::counter("fault.delay", 1);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                FaultKind::Panic => {
                    qcat_obs::counter("fault.panic", 1);
                    panic!("injected fault panic at {site} (QCAT_FAULT)");
                }
                FaultKind::Alloc { bytes } => {
                    qcat_obs::counter("fault.alloc", 1);
                    let pressure = vec![0xA5u8; bytes];
                    std::hint::black_box(&pressure);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The current plan: thread-scoped overrides over a process global.
// ---------------------------------------------------------------------------

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<FaultPlan> = OnceLock::new();

thread_local! {
    static OVERRIDE: RefCell<Vec<FaultPlan>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `OVERRIDE.len()` readable without a RefCell borrow —
    /// keeps the disabled path of [`point`] a plain `Cell` read.
    static OVERRIDE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

#[inline]
fn fault_active() -> bool {
    OVERRIDE_DEPTH.with(|d| d.get() > 0) || GLOBAL_ACTIVE.load(Ordering::Relaxed)
}

/// The plan [`point`] consults right now, if any: the innermost
/// [`with_plan`] scope, else the process global.
pub fn current_plan() -> Option<FaultPlan> {
    if OVERRIDE_DEPTH.with(|d| d.get() > 0) {
        if let Some(plan) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
            return Some(plan);
        }
    }
    if GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return GLOBAL.get().cloned();
    }
    None
}

/// Run `f` with `plan` as this thread's fault plan, shadowing the
/// global. Scopes nest; the previous plan is restored even if `f`
/// panics.
pub fn with_plan<T>(plan: &FaultPlan, f: impl FnOnce() -> T) -> T {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
            OVERRIDE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(plan.clone()));
    OVERRIDE_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = PopOnDrop;
    f()
}

/// Install `plan` as the process-global fault plan. First call wins;
/// returns `false` (leaving the existing global) on repeats.
pub fn install_global(plan: FaultPlan) -> bool {
    let installed = GLOBAL.set(plan).is_ok();
    if installed {
        GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
    }
    installed
}

/// Read `QCAT_FAULT` and install the parsed plan globally. For
/// binaries and examples only — library code never touches the
/// environment. Returns `Ok(true)` when a plan was installed,
/// `Ok(false)` when the variable is unset/empty/`off`, and `Err` with
/// a description when the spec does not parse (callers should fail
/// loudly: a typo'd chaos spec silently testing nothing is worse than
/// an error).
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var("QCAT_FAULT") {
        Ok(spec) => {
            let spec = spec.trim();
            if spec.is_empty() || spec == "off" {
                return Ok(false);
            }
            Ok(install_global(FaultPlan::parse(spec)?))
        }
        Err(_) => Ok(false),
    }
}

/// Hit the fault point `site`.
///
/// Returns `Some(Fault)` when an `error` rule fires (the caller turns
/// it into its structured error type); `delay`/`alloc`/`panic` rules
/// take effect inside this call. Without an installed plan this is a
/// no-op flag read.
#[inline]
pub fn point(site: &'static str) -> Option<Fault> {
    if !fault_active() {
        return None;
    }
    current_plan().and_then(|p| p.fire(site))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_points_are_none() {
        assert!(point("test.nowhere").is_none());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("siteonly").is_err());
        assert!(FaultPlan::parse("test.rule:explode").is_err());
        assert!(FaultPlan::parse("test.rule:error:p=2").is_err());
        assert!(FaultPlan::parse("test.rule:error:p").is_err());
        assert!(FaultPlan::parse("test.rule:error:seed=x").is_err());
        assert!(FaultPlan::parse("test.rule:error:color=red").is_err());
    }

    #[test]
    fn parse_rejects_unknown_sites() {
        // A typo'd site must fail the drill at parse time, not pass
        // vacuously by never firing.
        let err = FaultPlan::parse("exec.scna:error").unwrap_err();
        assert!(err.contains("unknown fault site"), "{err}");
        assert!(err.contains("exec.scna"), "{err}");
        assert!(err.contains("exec.scan"), "error lists known sites: {err}");
        // One bad rule poisons the whole spec, even alongside good ones.
        assert!(FaultPlan::parse("exec.scan:error;serve.fil:panic").is_err());
        // Known sites, the wildcard, and the reserved test prefix pass.
        for site in KNOWN_SITES {
            assert!(
                FaultPlan::parse(&format!("{site}:error")).is_ok(),
                "known site {site} must parse"
            );
        }
        assert!(FaultPlan::parse("*:error").is_ok());
        assert!(FaultPlan::parse("test.anything:error").is_ok());
    }

    #[test]
    fn error_rule_fires_only_at_its_site() {
        let plan = FaultPlan::parse("exec.scan:error").unwrap();
        with_plan(&plan, || {
            let fault = point("exec.scan").expect("armed site fires");
            assert_eq!(fault.site, "exec.scan");
            assert_eq!(fault.to_string(), "injected fault at exec.scan");
            assert!(point("exec.plan").is_none(), "unarmed site must not fire");
        });
    }

    #[test]
    fn wildcard_arms_every_site() {
        let plan = FaultPlan::parse("*:error").unwrap();
        with_plan(&plan, || {
            assert!(point("test.one").is_some());
            assert!(point("test.two").is_some());
        });
    }

    #[test]
    fn probability_stream_is_deterministic() {
        let sequence = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("test.x:error:p=0.5:seed={seed}")).unwrap();
            with_plan(&plan, || (0..64).map(|_| point("test.x").is_some()).collect())
        };
        let a = sequence(7);
        assert_eq!(a, sequence(7), "same seed, same stream");
        assert_ne!(a, sequence(8), "different seed, different stream");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fired), "p=0.5 of 64 fired {fired} times");
    }

    #[test]
    fn delay_rule_sleeps_and_returns_none() {
        let plan = FaultPlan::parse("test.y:delay:ms=5").unwrap();
        with_plan(&plan, || {
            let start = std::time::Instant::now();
            assert!(point("test.y").is_none());
            assert!(start.elapsed() >= Duration::from_millis(5));
        });
    }

    #[test]
    fn panic_rule_panics_with_site_name() {
        let plan = FaultPlan::parse("test.z:panic").unwrap();
        let caught = std::panic::catch_unwind(|| with_plan(&plan, || point("test.z")));
        let err = caught.expect_err("panic rule must panic");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("injected fault panic at test.z"), "{message}");
        // The with_plan guard restored the previous (empty) context.
        assert!(point("test.z").is_none());
    }

    #[test]
    fn alloc_rule_is_transient_pressure() {
        let plan = FaultPlan::parse("test.a:alloc:bytes=4096").unwrap();
        with_plan(&plan, || assert!(point("test.a").is_none()));
    }

    #[test]
    fn clones_share_one_hit_stream() {
        // p=0.5: the stream of a plan and its clone interleave into
        // the same 64-roll prefix a single handle would produce.
        let plan = FaultPlan::parse("test.c:error:p=0.5:seed=3").unwrap();
        let solo = FaultPlan::parse("test.c:error:p=0.5:seed=3").unwrap();
        let clone = plan.clone();
        let mut interleaved = Vec::new();
        for i in 0..64 {
            let handle = if i % 2 == 0 { &plan } else { &clone };
            interleaved.push(with_plan(handle, || point("test.c").is_some()));
        }
        let straight: Vec<bool> =
            with_plan(&solo, || (0..64).map(|_| point("test.c").is_some()).collect());
        assert_eq!(interleaved, straight);
    }

    #[test]
    fn faults_bump_obs_counters() {
        let rec = qcat_obs::Recorder::metrics_only();
        let plan = FaultPlan::parse("test.m:error").unwrap();
        qcat_obs::with_recorder(&rec, || {
            with_plan(&plan, || {
                assert!(point("test.m").is_some());
            });
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("fault.injected"), Some(&1));
        assert_eq!(snap.counters.get("fault.error"), Some(&1));
    }
}
