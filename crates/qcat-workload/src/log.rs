//! The workload: a bag of normalized past queries.

use qcat_data::Schema;
use qcat_sql::{parse_and_normalize, NormalizedQuery, SqlError};

/// A parsed workload log.
///
/// Real logs contain noise (queries against other tables, syntax the
/// subset does not cover), so parsing is lenient: malformed entries
/// are recorded with their line number and error rather than failing
/// the whole load — mirroring how the paper's preprocessing would skim
/// a production trace.
#[derive(Debug, Clone, Default)]
pub struct WorkloadLog {
    queries: Vec<NormalizedQuery>,
    skipped: Vec<(usize, SqlError)>,
}

impl WorkloadLog {
    /// Parse SQL strings against `schema`, keeping the well-formed
    /// ones. `table_filter`, when given, drops queries over other
    /// tables (they carry no signal about this relation's attributes).
    pub fn parse<'a, I>(strings: I, schema: &Schema, table_filter: Option<&str>) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut span = qcat_obs::span!("workload.log.parse");
        let mut queries = Vec::new();
        let mut skipped = Vec::new();
        let filter = table_filter.map(str::to_ascii_lowercase);
        for (i, sql) in strings.into_iter().enumerate() {
            match parse_and_normalize(sql, schema) {
                Ok(q) => {
                    if filter.as_deref().is_none_or(|t| q.table == t) {
                        queries.push(q);
                    }
                }
                Err(e) => skipped.push((i, e)),
            }
        }
        if qcat_obs::active() {
            span.set("parsed", queries.len());
            span.set("skipped", skipped.len());
        }
        WorkloadLog { queries, skipped }
    }

    /// Wrap already-normalized queries.
    pub fn from_normalized(queries: Vec<NormalizedQuery>) -> Self {
        WorkloadLog {
            queries,
            skipped: Vec::new(),
        }
    }

    /// The usable queries.
    pub fn queries(&self) -> &[NormalizedQuery] {
        &self.queries
    }

    /// Number of usable queries — the paper's `N`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries parsed.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Entries that failed to parse, with their index in the input.
    pub fn skipped(&self) -> &[(usize, SqlError)] {
        &self.skipped
    }

    /// Split off the queries at `indices` (sorted, deduplicated
    /// internally), returning `(held_out, remaining)`.
    ///
    /// This implements the paper's cross-validation protocol
    /// (Section 6.2): the 100 synthetic explorations of a subset are
    /// removed from the workload before the count tables are built.
    pub fn split_held_out(&self, indices: &[usize]) -> (Vec<NormalizedQuery>, WorkloadLog) {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut held = Vec::with_capacity(sorted.len());
        let mut rest = Vec::with_capacity(self.queries.len().saturating_sub(sorted.len()));
        let mut it = sorted.iter().peekable();
        for (i, q) in self.queries.iter().enumerate() {
            if it.peek() == Some(&&i) {
                held.push(q.clone());
                it.next();
            } else {
                rest.push(q.clone());
            }
        }
        (held, WorkloadLog::from_normalized(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn parses_and_skips() {
        let log = WorkloadLog::parse(
            [
                "SELECT * FROM homes WHERE price < 100",
                "this is not sql",
                "SELECT * FROM homes WHERE neighborhood IN ('a')",
                "SELECT * FROM homes WHERE zipcode = 1", // unknown attr
            ],
            &schema(),
            None,
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.skipped().len(), 2);
        assert_eq!(log.skipped()[0].0, 1);
        assert_eq!(log.skipped()[1].0, 3);
    }

    #[test]
    fn table_filter_drops_other_tables() {
        let log = WorkloadLog::parse(
            [
                "SELECT * FROM homes WHERE price < 100",
                "SELECT * FROM cars WHERE price < 100",
            ],
            &schema(),
            Some("HOMES"),
        );
        assert_eq!(log.len(), 1);
        assert!(log.skipped().is_empty());
    }

    #[test]
    fn split_held_out_partitions() {
        let log = WorkloadLog::parse(
            [
                "SELECT * FROM homes WHERE price < 1",
                "SELECT * FROM homes WHERE price < 2",
                "SELECT * FROM homes WHERE price < 3",
                "SELECT * FROM homes WHERE price < 4",
            ],
            &schema(),
            None,
        );
        let (held, rest) = log.split_held_out(&[1, 3]);
        assert_eq!(held.len(), 2);
        assert_eq!(rest.len(), 2);
        // Held-out query 1 constrained price < 2.
        let c = held[0].conditions.values().next().unwrap();
        assert!(matches!(
            c,
            qcat_sql::AttrCondition::Range(r) if r.hi == 2.0
        ));
        // Duplicate / unsorted indices tolerated.
        let (held2, rest2) = log.split_held_out(&[3, 1, 1]);
        assert_eq!(held2.len(), 2);
        assert_eq!(rest2.len(), 2);
    }

    #[test]
    fn empty_log() {
        let log = WorkloadLog::parse([], &schema(), None);
        assert!(log.is_empty());
        let (held, rest) = log.split_held_out(&[]);
        assert!(held.is_empty());
        assert!(rest.is_empty());
    }
}
