#![warn(missing_docs)]

//! Workload analysis for the qcat workspace.
//!
//! Section 4.2 of the paper estimates the probabilities that drive the
//! cost model purely from a log of past SQL query strings. The
//! preprocessing phase scans the workload once and materializes:
//!
//! - the **AttributeUsageCounts** table (Figure 4a): for every
//!   attribute `A`, the number `NAttr(A)` of queries containing a
//!   selection condition on `A`;
//! - one **OccurrenceCounts** table per categorical attribute
//!   (Figure 4b): for every value `v`, the number `occ(v)` of queries
//!   whose IN-clause on the attribute contains `v`;
//! - one **SplitPoints** table per numeric attribute (Figure 5b): for
//!   every potential splitpoint `v` on a fixed-interval grid, how many
//!   query ranges start (`start_v`) and end (`end_v`) there, and the
//!   goodness score `start_v + end_v`;
//! - a **range index** per numeric attribute (our addition) so
//!   `NOverlap` for a numeric label is an O(log n) computation instead
//!   of a workload rescan.
//!
//! All of it lives behind [`WorkloadStatistics`].

pub mod config;
pub mod correlation;
pub mod log;
pub mod occurrence;
pub mod persist;
pub mod range_index;
pub mod splitpoints;
pub mod stats;
pub mod usage;

pub use config::PreprocessConfig;
pub use correlation::{CorrelationIndex, LabelPredicate};
pub use log::WorkloadLog;
pub use occurrence::OccurrenceCounts;
pub use persist::{load_statistics, save_statistics, PersistError};
pub use range_index::RangeIndex;
pub use splitpoints::{SplitPoint, SplitPointTable};
pub use stats::WorkloadStatistics;
pub use usage::AttributeUsageCounts;
