//! SplitPoints tables (paper Figure 5b), one per numeric attribute.

use qcat_sql::NumericRange;
use std::collections::BTreeMap;

/// One potential splitpoint with its workload counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPoint {
    /// The splitpoint value (a multiple of the separation interval).
    pub value: f64,
    /// Number of workload query ranges starting at this point.
    pub start: usize,
    /// Number of workload query ranges ending at this point.
    pub end: usize,
}

impl SplitPoint {
    /// The paper's goodness score `SUM(start_v, end_v)`.
    pub fn goodness(&self) -> usize {
        self.start + self.end
    }
}

/// The splitpoint table of one numeric attribute.
///
/// Potential splitpoints sit on a fixed grid (`value = index ×
/// interval`); query-range endpoints are snapped to the nearest grid
/// point when counted, which is exact for workloads whose ranges are
/// grid-aligned (like MSN House&Home's price inputs) and a rounding
/// approximation otherwise.
#[derive(Debug, Clone)]
pub struct SplitPointTable {
    interval: f64,
    /// grid index → (start count, end count).
    counts: BTreeMap<i64, (usize, usize)>,
    /// Total ranges recorded (with at least one finite endpoint).
    ranges_recorded: usize,
}

impl SplitPointTable {
    /// Empty table with the given separation interval.
    pub fn new(interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "separation interval must be positive and finite"
        );
        SplitPointTable {
            interval,
            counts: BTreeMap::new(),
            ranges_recorded: 0,
        }
    }

    /// The separation interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Snap `v` to the nearest grid index.
    fn grid_index(&self, v: f64) -> i64 {
        (v / self.interval).round() as i64
    }

    /// Record one workload query range: its finite lower endpoint
    /// increments a `start` counter, its finite upper endpoint an
    /// `end` counter.
    pub fn record_range(&mut self, range: &NumericRange) {
        let mut recorded = false;
        if let Some(lo) = range.finite_lo() {
            self.counts.entry(self.grid_index(lo)).or_insert((0, 0)).0 += 1;
            recorded = true;
        }
        if let Some(hi) = range.finite_hi() {
            self.counts.entry(self.grid_index(hi)).or_insert((0, 0)).1 += 1;
            recorded = true;
        }
        if recorded {
            self.ranges_recorded += 1;
        }
    }

    /// The splitpoint at the grid point nearest to `v` (zero counts if
    /// never seen).
    pub fn at(&self, v: f64) -> SplitPoint {
        let idx = self.grid_index(v);
        let (start, end) = self.counts.get(&idx).copied().unwrap_or((0, 0));
        SplitPoint {
            value: idx as f64 * self.interval,
            start,
            end,
        }
    }

    /// All potential splitpoints strictly inside `(vmin, vmax)` that
    /// have a nonzero goodness score, in ascending value order.
    ///
    /// Grid points with zero counts are legal splitpoints too, but
    /// carry no workload signal; callers that need them (equi-width
    /// baselines) generate them directly from the interval.
    pub fn splitpoints_between(&self, vmin: f64, vmax: f64) -> Vec<SplitPoint> {
        if vmin >= vmax || vmin.is_nan() || vmax.is_nan() {
            return Vec::new();
        }
        let lo_idx = self.grid_index(vmin);
        let hi_idx = self.grid_index(vmax);
        self.counts
            .range(lo_idx..=hi_idx)
            .filter_map(|(&idx, &(start, end))| {
                let value = idx as f64 * self.interval;
                (value > vmin && value < vmax && start + end > 0).then_some(SplitPoint {
                    value,
                    start,
                    end,
                })
            })
            .collect()
    }

    /// Splitpoints inside `(vmin, vmax)` sorted by descending goodness
    /// (ties broken by ascending value for determinism) — the
    /// candidate order of the paper's greedy selection (Example 5.1).
    pub fn by_goodness(&self, vmin: f64, vmax: f64) -> Vec<SplitPoint> {
        let mut pts = self.splitpoints_between(vmin, vmax);
        pts.sort_by(|a, b| {
            b.goodness()
                .cmp(&a.goodness())
                .then_with(|| a.value.total_cmp(&b.value))
        });
        pts
    }

    /// Number of ranges recorded.
    pub fn ranges_recorded(&self) -> usize {
        self.ranges_recorded
    }

    /// All `(grid index, start, end)` entries, for persistence.
    pub fn entries(&self) -> impl Iterator<Item = (i64, usize, usize)> + '_ {
        self.counts.iter().map(|(&i, &(s, e))| (i, s, e))
    }

    /// Rebuild from persisted entries.
    pub fn from_entries(
        interval: f64,
        ranges_recorded: usize,
        entries: impl IntoIterator<Item = (i64, usize, usize)>,
    ) -> Self {
        let mut t = SplitPointTable::new(interval);
        t.ranges_recorded = ranges_recorded;
        t.counts = entries.into_iter().map(|(i, s, e)| (i, (s, e))).collect();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(lo: f64, hi: f64) -> NumericRange {
        NumericRange::closed(lo, hi)
    }

    /// Reproduce the paper's Figure 5(b) example: interval 1000,
    /// splitpoints at 2000 (10/40), 5000 (40/90), 8000 (80/20).
    fn figure5b() -> SplitPointTable {
        let mut t = SplitPointTable::new(1000.0);
        for _ in 0..10 {
            t.record_range(&closed(2000.0, 5000.0));
        }
        for _ in 0..30 {
            t.record_range(&closed(5000.0, 8000.0));
        }
        for _ in 0..30 {
            t.record_range(&closed(0.0, 5000.0));
        }
        for _ in 0..40 {
            t.record_range(&closed(0.0, 2000.0));
        }
        for _ in 0..60 {
            t.record_range(&closed(5000.0, 10_000.0));
        }
        for _ in 0..50 {
            t.record_range(&closed(8000.0, 9_000.0));
        }
        for _ in 0..20 {
            t.record_range(&closed(0.0, 8000.0));
        }
        t
    }

    #[test]
    fn figure5b_counts() {
        let t = figure5b();
        assert_eq!(
            t.at(2000.0),
            SplitPoint {
                value: 2000.0,
                start: 10,
                end: 40
            }
        );
        assert_eq!(
            t.at(5000.0),
            SplitPoint {
                value: 5000.0,
                start: 90,
                end: 40
            }
        );
        assert_eq!(
            t.at(8000.0),
            SplitPoint {
                value: 8000.0,
                start: 50,
                end: 50
            }
        );
        assert_eq!(t.at(3000.0).goodness(), 0);
        // The paper's ordering: 5000 (130) best, then 8000 (100), then 2000 (50).
        let ranked = t.by_goodness(0.0, 10_000.0);
        let values: Vec<f64> = ranked.iter().map(|p| p.value).collect();
        assert_eq!(values[..3], [5000.0, 8000.0, 2000.0]);
    }

    #[test]
    fn endpoints_snap_to_grid() {
        let mut t = SplitPointTable::new(1000.0);
        t.record_range(&closed(1_400.0, 2_600.0)); // snaps to 1000 / 3000
        assert_eq!(t.at(1000.0).start, 1);
        assert_eq!(t.at(3000.0).end, 1);
        assert_eq!(t.at(2000.0).goodness(), 0);
    }

    #[test]
    fn open_ends_are_not_counted() {
        let mut t = SplitPointTable::new(10.0);
        t.record_range(&NumericRange {
            lo: f64::NEG_INFINITY,
            lo_inclusive: false,
            hi: 50.0,
            hi_inclusive: true,
        });
        assert_eq!(t.at(50.0).end, 1);
        assert_eq!(t.at(50.0).start, 0);
        assert_eq!(t.ranges_recorded(), 1);
        t.record_range(&NumericRange::unbounded());
        assert_eq!(t.ranges_recorded(), 1);
    }

    #[test]
    fn splitpoints_between_excludes_bounds() {
        let t = figure5b();
        // vmin=2000 excludes the 2000 splitpoint itself.
        let pts = t.splitpoints_between(2000.0, 8000.0);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![5000.0]);
        // Degenerate window.
        assert!(t.splitpoints_between(5000.0, 5000.0).is_empty());
        assert!(t.splitpoints_between(9.0, 3.0).is_empty());
    }

    #[test]
    fn goodness_ties_break_by_value() {
        let mut t = SplitPointTable::new(1.0);
        t.record_range(&closed(5.0, 7.0));
        t.record_range(&closed(7.0, 9.0));
        t.record_range(&closed(3.0, 5.0));
        // 5 and 7 both have goodness 2.
        let ranked = t.by_goodness(0.0, 10.0);
        assert_eq!(ranked[0].value, 5.0);
        assert_eq!(ranked[1].value, 7.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = SplitPointTable::new(0.0);
    }

    #[test]
    fn negative_values_supported() {
        let mut t = SplitPointTable::new(10.0);
        t.record_range(&closed(-25.0, 14.0)); // snaps to -30 / 10
        assert_eq!(t.at(-30.0).start, 1);
        assert_eq!(t.at(10.0).end, 1);
        let pts = t.splitpoints_between(-100.0, 100.0);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].value, -30.0);
    }
}
