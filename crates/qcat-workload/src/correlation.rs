//! Correlation-aware conditional counts — the paper's stated future
//! work ("the quality of the categorization can be improved by
//! weakening this independence assumption and leveraging the
//! correlations captured in the workload", Section 5.2).
//!
//! The base estimator assumes a user's interest in one attribute's
//! values is independent of her interest in another's. Real workloads
//! violate that (NYC searchers ask for NYC prices). This index keeps
//! the normalized queries and answers *conditional* overlap counts:
//! among queries that overlap every label on a node's path, how many
//! constrain / overlap the attribute being partitioned.

use qcat_data::AttrId;
use qcat_sql::{AttrCondition, NormalizedQuery, NumericRange};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// A label predicate expressed in workload terms, so the index can be
/// queried without depending on `qcat-core`'s label type.
#[derive(Debug, Clone)]
pub enum LabelPredicate {
    /// Categorical `A ∈ B`, as strings.
    InValues(AttrId, BTreeSet<String>),
    /// Numeric interval on `A`.
    Range(AttrId, NumericRange),
}

impl LabelPredicate {
    /// The attribute this predicate constrains.
    pub fn attr(&self) -> AttrId {
        match self {
            LabelPredicate::InValues(a, _) => *a,
            LabelPredicate::Range(a, _) => *a,
        }
    }

    /// The paper's overlap test against one workload query: true when
    /// the query has no condition on the attribute (nothing rules the
    /// category out) or its condition overlaps.
    pub fn query_overlaps(&self, query: &NormalizedQuery) -> bool {
        let Some(cond) = query.condition(self.attr()) else {
            return true;
        };
        self.condition_overlaps(cond)
    }

    /// Overlap against the query's condition itself.
    pub fn condition_overlaps(&self, cond: &AttrCondition) -> bool {
        match (self, cond) {
            (LabelPredicate::InValues(_, values), AttrCondition::InStr(set)) => {
                values.iter().any(|v| set.contains(v))
            }
            (LabelPredicate::Range(_, r), AttrCondition::Range(q)) => r.overlaps(q),
            (LabelPredicate::Range(_, r), AttrCondition::InNum(vals)) => {
                vals.iter().any(|&v| r.contains(v))
            }
            _ => false,
        }
    }
}

/// Index over the workload's normalized queries for conditional
/// counting.
#[derive(Debug, Clone, Default)]
pub struct CorrelationIndex {
    queries: Vec<NormalizedQuery>,
    /// attr → indices of queries constraining it.
    by_attr: HashMap<AttrId, Vec<u32>>,
}

impl CorrelationIndex {
    /// Build from normalized queries (clones them; built once per
    /// workload).
    pub fn build(queries: &[NormalizedQuery]) -> Self {
        let mut by_attr: HashMap<AttrId, Vec<u32>> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            for &attr in q.conditions.keys() {
                by_attr.entry(attr).or_default().push(i as u32);
            }
        }
        CorrelationIndex {
            queries: queries.to_vec(),
            by_attr,
        }
    }

    /// Number of indexed queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the index holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Conditional exploration probability:
    ///
    /// ```text
    /// P(C | path) = #{q : q constrains CA(C),
    ///                    q overlaps every path label,
    ///                    q overlaps label(C)}
    ///             / #{q : q constrains CA(C),
    ///                    q overlaps every path label}
    /// ```
    ///
    /// Falls back to `None` when no query satisfies the denominator
    /// (the caller should then use the unconditional estimate).
    pub fn conditional_p_explore(
        &self,
        label: &LabelPredicate,
        path: &[LabelPredicate],
    ) -> Option<f64> {
        let candidates = self.by_attr.get(&label.attr())?;
        let mut denom = 0usize;
        let mut num = 0usize;
        for &qi in candidates {
            let q = &self.queries[qi as usize];
            if !path.iter().all(|p| p.query_overlaps(q)) {
                continue;
            }
            denom += 1;
            if label.query_overlaps(q) {
                num += 1;
            }
        }
        (denom > 0).then(|| num as f64 / denom as f64)
    }

    /// Conditional SHOWTUPLES probability: among queries overlapping
    /// every path label, the fraction *not* constraining `sub_attr`.
    /// `None` when no query overlaps the path.
    pub fn conditional_p_showtuples(
        &self,
        sub_attr: AttrId,
        path: &[LabelPredicate],
    ) -> Option<f64> {
        let mut denom = 0usize;
        let mut constrained = 0usize;
        for q in &self.queries {
            if !path.iter().all(|p| p.query_overlaps(q)) {
                continue;
            }
            denom += 1;
            if q.constrains(sub_attr) {
                constrained += 1;
            }
        }
        (denom > 0).then(|| 1.0 - constrained as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, Schema};
    use qcat_sql::parse_and_normalize;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap()
    }

    fn index(sqls: &[&str]) -> CorrelationIndex {
        let s = schema();
        let qs: Vec<NormalizedQuery> = sqls
            .iter()
            .map(|q| parse_and_normalize(q, &s).unwrap())
            .collect();
        CorrelationIndex::build(&qs)
    }

    fn hood(name: &str) -> LabelPredicate {
        LabelPredicate::InValues(AttrId(0), BTreeSet::from([name.to_string()]))
    }

    fn price(lo: f64, hi: f64) -> LabelPredicate {
        LabelPredicate::Range(AttrId(1), NumericRange::half_open(lo, hi))
    }

    /// A correlated workload: NYC searchers want expensive homes,
    /// Austin searchers cheap ones.
    fn correlated() -> CorrelationIndex {
        index(&[
            "SELECT * FROM t WHERE neighborhood IN ('SoHo') AND price BETWEEN 800000 AND 1200000",
            "SELECT * FROM t WHERE neighborhood IN ('SoHo') AND price BETWEEN 900000 AND 1500000",
            "SELECT * FROM t WHERE neighborhood IN ('Austin') AND price BETWEEN 100000 AND 200000",
            "SELECT * FROM t WHERE neighborhood IN ('Austin') AND price BETWEEN 150000 AND 250000",
            "SELECT * FROM t WHERE price BETWEEN 100000 AND 1500000",
        ])
    }

    #[test]
    fn conditional_probability_tracks_correlation() {
        let idx = correlated();
        // Unconditional: cheap bucket overlaps 3 of 5 price queries.
        let cheap = price(100_000.0, 260_000.0);
        let p_uncond = idx.conditional_p_explore(&cheap, &[]).unwrap();
        assert!((p_uncond - 3.0 / 5.0).abs() < 1e-12);
        // Conditioned on SoHo: only the unconstrained-neighborhood
        // query and the SoHo queries survive the path filter; of those
        // 3, only the broad one overlaps the cheap bucket.
        let p_soho = idx.conditional_p_explore(&cheap, &[hood("SoHo")]).unwrap();
        assert!((p_soho - 1.0 / 3.0).abs() < 1e-12, "{p_soho}");
        // Conditioned on Austin the cheap bucket is hot.
        let p_austin = idx
            .conditional_p_explore(&cheap, &[hood("Austin")])
            .unwrap();
        assert!((p_austin - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_showtuples() {
        let idx = correlated();
        // All 5 queries constrain price → Pw(price | empty path) = 0.
        assert_eq!(idx.conditional_p_showtuples(AttrId(1), &[]).unwrap(), 0.0);
        // Conditioned on SoHo: queries 1, 2 and 5 overlap; all
        // constrain price.
        assert_eq!(
            idx.conditional_p_showtuples(AttrId(1), &[hood("SoHo")])
                .unwrap(),
            0.0
        );
        // Neighborhood constrained by 4 of 5 → Pw = 0.2.
        let pw = idx.conditional_p_showtuples(AttrId(0), &[]).unwrap();
        assert!((pw - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_denominator_returns_none() {
        let idx = correlated();
        let far = price(9e9, 9.5e9);
        // Path that no query overlaps (impossible neighborhood).
        let p = idx.conditional_p_explore(&far, &[hood("Atlantis")]);
        // Queries without a neighborhood condition still overlap the
        // Atlantis label (they don't rule it out); the broad query 5
        // constrains price, so a denominator exists but the numerator
        // is 0.
        assert_eq!(p, Some(0.0));
        // An attribute never constrained → None.
        let idx2 = index(&["SELECT * FROM t WHERE price > 0"]);
        assert_eq!(idx2.conditional_p_explore(&hood("SoHo"), &[]), None);
    }

    #[test]
    fn label_predicate_overlap_semantics() {
        let s = schema();
        let q = parse_and_normalize(
            "SELECT * FROM t WHERE neighborhood IN ('SoHo') AND price BETWEEN 100 AND 200",
            &s,
        )
        .unwrap();
        assert!(hood("SoHo").query_overlaps(&q));
        assert!(!hood("Austin").query_overlaps(&q));
        assert!(price(150.0, 300.0).query_overlaps(&q));
        assert!(!price(300.0, 400.0).query_overlaps(&q));
        // Unconstrained attribute in the query → overlap by default.
        let q2 = parse_and_normalize("SELECT * FROM t WHERE price > 0", &s).unwrap();
        assert!(hood("Anything").query_overlaps(&q2));
    }

    #[test]
    fn index_shape() {
        let idx = correlated();
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        let empty = CorrelationIndex::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.conditional_p_showtuples(AttrId(0), &[]), None);
    }
}
