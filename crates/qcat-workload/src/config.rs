//! Preprocessing configuration.

use qcat_data::{AttrId, Relation};
use std::collections::HashMap;

/// Configuration for workload preprocessing.
///
/// The paper fixes a *separation interval* per numeric attribute — the
/// spacing of the potential-splitpoint grid (Section 5.1.3; e.g. 5000
/// for price, 100 for square footage, 5 for year-built). Intervals can
/// be set explicitly or inferred from the data.
#[derive(Debug, Clone, Default)]
pub struct PreprocessConfig {
    intervals: HashMap<AttrId, f64>,
}

impl PreprocessConfig {
    /// Empty configuration; intervals must be set or inferred before
    /// numeric splitpoint tables can be built.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the separation interval of one attribute.
    pub fn with_interval(mut self, attr: AttrId, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "separation interval must be positive and finite"
        );
        self.intervals.insert(attr, interval);
        self
    }

    /// The configured interval for `attr`, if any.
    pub fn interval(&self, attr: AttrId) -> Option<f64> {
        self.intervals.get(&attr).copied()
    }

    /// Infer an interval for every numeric attribute missing one, by
    /// targeting roughly `target_points` grid points across the
    /// attribute's observed domain and snapping to a "nice" step
    /// (1/2/5 × 10^k).
    pub fn infer_missing(mut self, relation: &Relation, target_points: usize) -> Self {
        let all_rows = relation.all_row_ids();
        for attr in relation.schema().attr_ids() {
            if !relation.schema().type_of(attr).is_numeric() || self.intervals.contains_key(&attr) {
                continue;
            }
            if let Some((lo, hi)) = relation.column(attr).numeric_min_max(&all_rows) {
                let span = (hi - lo).max(f64::MIN_POSITIVE);
                let raw = span / target_points.max(1) as f64;
                self.intervals.insert(attr, nice_step(raw));
            }
        }
        self
    }

    /// All configured intervals.
    pub fn intervals(&self) -> &HashMap<AttrId, f64> {
        &self.intervals
    }
}

/// Round `raw` up to the nearest 1, 2, or 5 times a power of ten.
pub fn nice_step(raw: f64) -> f64 {
    assert!(raw > 0.0 && raw.is_finite());
    let exp = raw.log10().floor();
    let base = 10f64.powf(exp);
    let mantissa = raw / base;
    let nice = if mantissa <= 1.0 {
        1.0
    } else if mantissa <= 2.0 {
        2.0
    } else if mantissa <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * base
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, RelationBuilder, Schema};

    #[test]
    fn nice_steps() {
        assert_eq!(nice_step(1.0), 1.0);
        assert_eq!(nice_step(1.3), 2.0);
        assert_eq!(nice_step(3.0), 5.0);
        assert_eq!(nice_step(7.0), 10.0);
        assert_eq!(nice_step(4500.0), 5000.0);
        assert_eq!(nice_step(0.03), 0.05);
    }

    #[test]
    fn explicit_interval_wins() {
        let cfg = PreprocessConfig::new().with_interval(AttrId(0), 5000.0);
        assert_eq!(cfg.interval(AttrId(0)), Some(5000.0));
        assert_eq!(cfg.interval(AttrId(1)), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = PreprocessConfig::new().with_interval(AttrId(0), 0.0);
    }

    #[test]
    fn infer_covers_numeric_attrs_only() {
        let schema = Schema::new(vec![
            Field::new("n", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap();
        let mut b = RelationBuilder::new(schema);
        for p in [0.0, 1_000_000.0] {
            b.push_row(&["x".into(), p.into()]).unwrap();
        }
        let rel = b.finish().unwrap();
        let cfg = PreprocessConfig::new().infer_missing(&rel, 200);
        assert_eq!(cfg.interval(AttrId(0)), None);
        assert_eq!(cfg.interval(AttrId(1)), Some(5000.0));
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// nice_step always returns a step in [raw, 10*raw] of the
            /// form {1,2,5}*10^k.
            #[test]
            fn prop_nice_step_bounds(raw in 1e-6..1e12f64) {
                let s = nice_step(raw);
                prop_assert!(s >= raw * 0.999_999);
                prop_assert!(s <= raw * 10.000_001);
                let mant = s / 10f64.powf(s.log10().floor());
                let ok = [1.0, 2.0, 5.0, 10.0]
                    .iter()
                    .any(|m| (mant - m).abs() < 1e-9);
                prop_assert!(ok, "mantissa {mant}");
            }
        }
    }
}
