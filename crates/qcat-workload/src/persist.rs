//! Save/load workload statistics.
//!
//! The paper materializes its count tables inside the DBMS so that
//! query-time categorization never rescans the workload. Our
//! equivalent is a versioned, line-oriented text format: preprocess
//! once, persist, reload at startup. The format is human-inspectable
//! (each line is one table row, mirroring Figures 4 and 5b) and keeps
//! exact `f64` fidelity by encoding floats as hexadecimal bit
//! patterns alongside a readable decimal rendering.
//!
//! The correlation index (an optional extension) is *not* persisted:
//! it holds the normalized query log itself; rebuild it from the log
//! when needed.

use crate::occurrence::OccurrenceCounts;
use crate::range_index::{EndpointList, RangeIndex};
use crate::splitpoints::SplitPointTable;
use crate::stats::WorkloadStatistics;
use crate::usage::AttributeUsageCounts;
use qcat_data::{AttrId, AttrType, Schema};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Format version tag.
const MAGIC: &str = "qcat-workload-stats v1";

/// Errors while reading persisted statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line number where the problem was found (0 = header /
    /// I/O).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "persisted statistics, line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for PersistError {}

fn err(line: usize, message: impl Into<String>) -> PersistError {
    PersistError {
        line,
        message: message.into(),
    }
}

/// Exact float encoding: decimal for the reader, bits for the parser.
fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec_f64(s: &str, line: usize) -> Result<f64, PersistError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| err(line, format!("bad float bits `{s}`")))
}

/// Percent-encode a value so it survives as the last
/// whitespace-delimited token (spaces and `%` escaped).
fn enc_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for b in v.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'%' => out.push_str("%25"),
            b'\n' => out.push_str("%0A"),
            b'\t' => out.push_str("%09"),
            _ => out.push(b as char),
        }
    }
    out
}

fn dec_value(s: &str, line: usize) -> Result<String, PersistError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| err(line, "truncated % escape"))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| err(line, format!("bad % escape `{hex}`")))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| err(line, "invalid UTF-8 after unescaping"))
}

/// Write `stats` to `writer`.
pub fn save_statistics<W: Write>(
    stats: &WorkloadStatistics,
    writer: &mut W,
) -> std::io::Result<()> {
    let _span = qcat_obs::span!("workload.persist.save", queries = stats.n_queries());
    writeln!(writer, "{MAGIC}")?;
    let schema = stats.schema();
    writeln!(writer, "SCHEMA {}", schema.len())?;
    for f in schema.fields() {
        writeln!(writer, "FIELD {} {}", f.ty.name(), enc_value(&f.name))?;
    }
    let usage = stats.usage_counts();
    writeln!(writer, "N {}", usage.n_total())?;
    for (i, &c) in usage.counts().iter().enumerate() {
        writeln!(writer, "ATTR {i} {c}")?;
    }
    for (attr, value, count) in stats.occurrence_counts().entries() {
        writeln!(writer, "OCC {} {} {}", attr.0, count, enc_value(value))?;
    }
    let mut tables: Vec<(AttrId, &SplitPointTable)> = stats.splitpoint_tables().collect();
    tables.sort_by_key(|(a, _)| *a);
    for (attr, table) in tables {
        writeln!(
            writer,
            "SPLITS {} {} {}",
            attr.0,
            enc_f64(table.interval()),
            table.ranges_recorded()
        )?;
        for (idx, start, end) in table.entries() {
            writeln!(writer, "SP {} {idx} {start} {end}", attr.0)?;
        }
    }
    let mut indexes: Vec<(AttrId, &RangeIndex)> = stats.range_indexes().collect();
    indexes.sort_by_key(|(a, _)| *a);
    for (attr, index) in indexes {
        let (lowers, uppers) = index.endpoints();
        writeln!(writer, "RANGES {} {}", attr.0, lowers.len())?;
        for ((lv, li), (uv, ui)) in lowers.iter().zip(&uppers) {
            writeln!(
                writer,
                "EP {} {} {} {} {}",
                attr.0,
                enc_f64(*lv),
                u8::from(*li),
                enc_f64(*uv),
                u8::from(*ui)
            )?;
        }
    }
    writeln!(writer, "END")?;
    Ok(())
}

/// Read statistics from `reader`; the embedded schema must match
/// `schema` (same names and types, same order).
pub fn load_statistics<R: BufRead>(
    reader: R,
    schema: &Schema,
) -> Result<WorkloadStatistics, PersistError> {
    let _span = qcat_obs::span!("workload.persist.load");
    let mut lines = reader.lines().enumerate();
    let mut next = || -> Result<(usize, String), PersistError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(err(i + 1, e.to_string())),
            None => Err(err(0, "unexpected end of file")),
        }
    };
    let (ln, header) = next()?;
    if header != MAGIC {
        return Err(err(ln, format!("bad header `{header}`")));
    }
    // Schema check.
    let (ln, schema_line) = next()?;
    let n_fields: usize = schema_line
        .strip_prefix("SCHEMA ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "expected SCHEMA <n>"))?;
    if n_fields != schema.len() {
        return Err(err(
            ln,
            format!("schema has {n_fields} fields, expected {}", schema.len()),
        ));
    }
    for i in 0..n_fields {
        let (ln, line) = next()?;
        let rest = line
            .strip_prefix("FIELD ")
            .ok_or_else(|| err(ln, "expected FIELD"))?;
        let (ty, name) = rest
            .split_once(' ')
            .ok_or_else(|| err(ln, "expected FIELD <type> <name>"))?;
        let field = &schema.fields()[i];
        let expected_ty = field.ty.name();
        if ty != expected_ty {
            return Err(err(
                ln,
                format!("field {i} type `{ty}` does not match schema `{expected_ty}`"),
            ));
        }
        let name = dec_value(name, ln)?;
        if !name.eq_ignore_ascii_case(&field.name) {
            return Err(err(
                ln,
                format!(
                    "field {i} name `{name}` does not match schema `{}`",
                    field.name
                ),
            ));
        }
    }
    // Body.
    let (ln, n_line) = next()?;
    let n_total: usize = n_line
        .strip_prefix("N ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "expected N <total>"))?;
    let mut usage_counts = vec![0usize; schema.len()];
    let mut occ_entries: Vec<(AttrId, String, usize)> = Vec::new();
    /// Per-attribute splitpoint table under reconstruction:
    /// `(interval, ranges recorded, entries)`.
    type SplitAcc = (f64, usize, Vec<(i64, usize, usize)>);
    let mut splits: HashMap<AttrId, SplitAcc> = HashMap::new();
    let mut ranges: HashMap<AttrId, (EndpointList, EndpointList)> = HashMap::new();
    loop {
        let (ln, line) = next()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("END") => break,
            Some("ATTR") => {
                let idx: usize = parse_token(parts.next(), ln, "attr index")?;
                let count: usize = parse_token(parts.next(), ln, "count")?;
                *usage_counts
                    .get_mut(idx)
                    .ok_or_else(|| err(ln, "attr index out of range"))? = count;
            }
            Some("OCC") => {
                let attr: u32 = parse_token(parts.next(), ln, "attr index")?;
                let count: usize = parse_token(parts.next(), ln, "count")?;
                let value = parts
                    .next()
                    .ok_or_else(|| err(ln, "missing value"))
                    .and_then(|v| dec_value(v, ln))?;
                occ_entries.push((AttrId(attr), value, count));
            }
            Some("SPLITS") => {
                let attr: u32 = parse_token(parts.next(), ln, "attr index")?;
                let interval =
                    dec_f64(parts.next().ok_or_else(|| err(ln, "missing interval"))?, ln)?;
                let recorded: usize = parse_token(parts.next(), ln, "ranges recorded")?;
                splits.insert(AttrId(attr), (interval, recorded, Vec::new()));
            }
            Some("SP") => {
                let attr: u32 = parse_token(parts.next(), ln, "attr index")?;
                let idx: i64 = parse_token(parts.next(), ln, "grid index")?;
                let start: usize = parse_token(parts.next(), ln, "start")?;
                let end: usize = parse_token(parts.next(), ln, "end")?;
                splits
                    .get_mut(&AttrId(attr))
                    .ok_or_else(|| err(ln, "SP before SPLITS"))?
                    .2
                    .push((idx, start, end));
            }
            Some("RANGES") => {
                let attr: u32 = parse_token(parts.next(), ln, "attr index")?;
                ranges.entry(AttrId(attr)).or_default();
            }
            Some("EP") => {
                let attr: u32 = parse_token(parts.next(), ln, "attr index")?;
                let lv = dec_f64(parts.next().ok_or_else(|| err(ln, "missing lower"))?, ln)?;
                let li: u8 = parse_token(parts.next(), ln, "lower inclusivity")?;
                let uv = dec_f64(parts.next().ok_or_else(|| err(ln, "missing upper"))?, ln)?;
                let ui: u8 = parse_token(parts.next(), ln, "upper inclusivity")?;
                let entry = ranges
                    .get_mut(&AttrId(attr))
                    .ok_or_else(|| err(ln, "EP before RANGES"))?;
                entry.0.push((lv, li != 0));
                entry.1.push((uv, ui != 0));
            }
            other => return Err(err(ln, format!("unexpected record {other:?}"))),
        }
    }
    let usage = AttributeUsageCounts::from_counts(usage_counts, n_total);
    let cat_attrs: Vec<AttrId> = schema
        .attr_ids()
        .filter(|&a| schema.type_of(a) == AttrType::Categorical)
        .collect();
    let occurrence = OccurrenceCounts::from_entries(cat_attrs, occ_entries);
    let splitpoints: HashMap<AttrId, SplitPointTable> = splits
        .into_iter()
        .map(|(a, (interval, recorded, entries))| {
            (
                a,
                SplitPointTable::from_entries(interval, recorded, entries),
            )
        })
        .collect();
    let range_indexes: HashMap<AttrId, RangeIndex> = ranges
        .into_iter()
        .map(|(a, (lowers, uppers))| (a, RangeIndex::from_endpoints(lowers, uppers)))
        .collect();
    Ok(WorkloadStatistics::from_parts(
        schema.clone(),
        usage,
        occurrence,
        splitpoints,
        range_indexes,
    ))
}

fn parse_token<T: std::str::FromStr>(
    token: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, PersistError> {
    token
        .ok_or_else(|| err(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| err(line, format!("bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PreprocessConfig;
    use crate::log::WorkloadLog;
    use qcat_data::Field;
    use qcat_sql::NumericRange;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("beds", AttrType::Int),
        ])
        .unwrap()
    }

    fn sample_stats() -> WorkloadStatistics {
        let s = schema();
        let log = WorkloadLog::parse(
            [
                "SELECT * FROM t WHERE neighborhood IN ('Queen Anne','Redmond') AND price BETWEEN 200000 AND 250000",
                "SELECT * FROM t WHERE price BETWEEN 250000 AND 300000 AND beds >= 3",
                "SELECT * FROM t WHERE neighborhood IN ('100% Broadway')",
                "SELECT * FROM t WHERE price < 500000",
            ],
            &s,
            None,
        );
        let cfg = PreprocessConfig::new()
            .with_interval(AttrId(1), 5_000.0)
            .with_interval(AttrId(2), 1.0);
        WorkloadStatistics::build(&log, &s, &cfg)
    }

    #[test]
    fn roundtrip_preserves_every_count() {
        let original = sample_stats();
        let mut buf = Vec::new();
        save_statistics(&original, &mut buf).unwrap();
        let loaded = load_statistics(buf.as_slice(), &schema()).unwrap();

        assert_eq!(loaded.n_queries(), original.n_queries());
        for a in schema().attr_ids() {
            assert_eq!(loaded.n_attr(a), original.n_attr(a), "{a:?}");
        }
        // Occurrence counts, including values with spaces and percent
        // signs.
        for v in ["Queen Anne", "Redmond", "100% Broadway", "Nowhere"] {
            assert_eq!(loaded.occ(AttrId(0), v), original.occ(AttrId(0), v), "{v}");
        }
        // Splitpoints.
        let (o, l) = (
            original.splitpoint_table(AttrId(1)).unwrap(),
            loaded.splitpoint_table(AttrId(1)).unwrap(),
        );
        assert_eq!(o.interval(), l.interval());
        assert_eq!(o.ranges_recorded(), l.ranges_recorded());
        for v in [200_000.0, 250_000.0, 300_000.0, 500_000.0] {
            assert_eq!(o.at(v), l.at(v), "{v}");
        }
        // NOverlap answers.
        for (lo, hi) in [(190_000.0, 210_000.0), (260_000.0, 400_000.0), (0.0, 1e6)] {
            let label = NumericRange::half_open(lo, hi);
            assert_eq!(
                loaded.n_overlap_range(AttrId(1), &label),
                original.n_overlap_range(AttrId(1), &label),
                "[{lo},{hi})"
            );
        }
        assert_eq!(
            loaded.n_overlap_range(AttrId(2), &NumericRange::closed(3.0, 4.0)),
            original.n_overlap_range(AttrId(2), &NumericRange::closed(3.0, 4.0)),
        );
        // Retained attributes agree.
        assert_eq!(loaded.retained_attrs(0.4), original.retained_attrs(0.4));
        // Correlation index is deliberately not persisted.
        assert!(loaded.correlation_index().is_none());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let original = sample_stats();
        let mut buf = Vec::new();
        save_statistics(&original, &mut buf).unwrap();
        let other = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Int), // type differs
            Field::new("beds", AttrType::Int),
        ])
        .unwrap();
        let e = load_statistics(buf.as_slice(), &other).unwrap_err();
        assert!(e.message.contains("type"), "{e}");
        let fewer = Schema::new(vec![Field::new("a", AttrType::Int)]).unwrap();
        assert!(load_statistics(buf.as_slice(), &fewer).is_err());
    }

    #[test]
    fn corrupted_input_reports_line() {
        let original = sample_stats();
        let mut buf = Vec::new();
        save_statistics(&original, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Damage one SP line.
        let bad = text.replace("SP 1", "SP x");
        let e = load_statistics(bad.as_bytes(), &schema()).unwrap_err();
        assert!(e.line > 0);
        // Drop the END marker.
        let truncated = text.replace("END\n", "");
        let e = load_statistics(truncated.as_bytes(), &schema()).unwrap_err();
        assert!(e.message.contains("end of file"), "{e}");
        // Wrong magic.
        let e = load_statistics("not stats\n".as_bytes(), &schema()).unwrap_err();
        assert!(e.message.contains("header"), "{e}");
    }

    #[test]
    fn value_escaping_roundtrip() {
        for v in ["plain", "two words", "100% legit", "tab\there", "a%20b"] {
            let enc = enc_value(v);
            assert!(!enc.contains(' '), "{enc}");
            assert_eq!(dec_value(&enc, 1).unwrap(), v);
        }
        assert!(dec_value("%2", 1).is_err());
        assert!(dec_value("%zz", 1).is_err());
    }

    #[test]
    fn float_bits_roundtrip() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, 5_000.0] {
            let back = dec_f64(&enc_f64(v), 1).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_workload() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec(
                prop_oneof![
                    "[a-z %]{1,10}".prop_map(|v| format!(
                        "SELECT * FROM t WHERE neighborhood IN ('{}')",
                        v.replace('\'', "")
                    )),
                    (0u32..200, 1u32..50).prop_map(|(lo, w)| format!(
                        "SELECT * FROM t WHERE price BETWEEN {} AND {}",
                        lo * 1000,
                        (lo + w) * 1000
                    )),
                    (1i64..9).prop_map(|b| format!("SELECT * FROM t WHERE beds >= {b}")),
                ],
                0..40,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Save → load reproduces every probe a categorizer would
            /// make, for arbitrary workloads (including empty ones and
            /// values with spaces / percent signs).
            #[test]
            fn prop_roundtrip(workload in arb_workload(), probe_lo in 0u32..250) {
                let s = schema();
                let log = WorkloadLog::parse(workload.iter().map(String::as_str), &s, None);
                let cfg = PreprocessConfig::new()
                    .with_interval(AttrId(1), 5_000.0)
                    .with_interval(AttrId(2), 1.0);
                let original = WorkloadStatistics::build(&log, &s, &cfg);
                let mut buf = Vec::new();
                save_statistics(&original, &mut buf).unwrap();
                let loaded = load_statistics(buf.as_slice(), &s).unwrap();
                prop_assert_eq!(loaded.n_queries(), original.n_queries());
                for a in s.attr_ids() {
                    prop_assert_eq!(loaded.n_attr(a), original.n_attr(a));
                }
                let lo = probe_lo as f64 * 1_000.0;
                let label = NumericRange::half_open(lo, lo + 30_000.0);
                prop_assert_eq!(
                    loaded.n_overlap_range(AttrId(1), &label),
                    original.n_overlap_range(AttrId(1), &label)
                );
                let a = original.splitpoints_by_goodness(AttrId(1), 0.0, 3e5);
                let b = loaded.splitpoints_by_goodness(AttrId(1), 0.0, 3e5);
                prop_assert_eq!(a, b);
                // Occurrence probes for every value actually present.
                for (v, c) in original.values_by_occurrence(AttrId(0)) {
                    prop_assert_eq!(loaded.occ(AttrId(0), v), c);
                }
            }
        }
    }

    #[test]
    fn loaded_stats_drive_the_categorizer() {
        // End-to-end: persist, reload, and confirm splitpoint ranking
        // queries behave identically.
        let original = sample_stats();
        let mut buf = Vec::new();
        save_statistics(&original, &mut buf).unwrap();
        let loaded = load_statistics(buf.as_slice(), &schema()).unwrap();
        let a = original.splitpoints_by_goodness(AttrId(1), 0.0, 1e6);
        let b = loaded.splitpoints_by_goodness(AttrId(1), 0.0, 1e6);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
