//! OccurrenceCounts tables (paper Figure 4b), one per categorical
//! attribute.

use qcat_data::{AttrId, AttrType, Schema};
use qcat_sql::{AttrCondition, NormalizedQuery};
use std::collections::HashMap;

/// Per-value occurrence counts for the categorical attributes.
///
/// `occ(v)` is the number of workload queries whose IN-clause on the
/// attribute contains `v`. Because the cost-based partitioner only
/// builds *single-value* categories (Section 5.1.2), `occ(v)` is
/// exactly `NOverlap(C_v)` for the category labeled `A = v`.
#[derive(Debug, Clone, Default)]
pub struct OccurrenceCounts {
    /// attr → (value → count). Only categorical attrs have entries.
    tables: HashMap<AttrId, HashMap<String, usize>>,
}

impl OccurrenceCounts {
    /// Scan `queries`, tallying occurrence counts for every
    /// categorical attribute of `schema`.
    pub fn build<'a, I>(queries: I, schema: &Schema) -> Self
    where
        I: IntoIterator<Item = &'a NormalizedQuery>,
    {
        let mut tables: HashMap<AttrId, HashMap<String, usize>> = schema
            .attr_ids()
            .filter(|&a| schema.type_of(a) == AttrType::Categorical)
            .map(|a| (a, HashMap::new()))
            .collect();
        for q in queries {
            for (&attr, cond) in &q.conditions {
                if let (AttrCondition::InStr(values), Some(table)) = (cond, tables.get_mut(&attr)) {
                    for v in values {
                        *table.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        OccurrenceCounts { tables }
    }

    /// Tally additional `queries` into the existing tables — the
    /// incremental complement of [`OccurrenceCounts::build`]. Counts
    /// are per-value sums, so absorbing a delta equals rebuilding over
    /// the concatenated workload. Only attributes that already have a
    /// table (the schema's categorical attributes) accumulate.
    pub fn absorb<'a, I>(&mut self, queries: I)
    where
        I: IntoIterator<Item = &'a NormalizedQuery>,
    {
        for q in queries {
            for (&attr, cond) in &q.conditions {
                if let (AttrCondition::InStr(values), Some(table)) =
                    (cond, self.tables.get_mut(&attr))
                {
                    for v in values {
                        *table.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
    }

    /// `occ(v)` for attribute `attr`.
    pub fn occ(&self, attr: AttrId, value: &str) -> usize {
        self.tables
            .get(&attr)
            .and_then(|t| t.get(value))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of `occ(v)` over a set of values — `NOverlap` for a
    /// multi-value categorical label. Exact for single-value labels;
    /// an upper bound otherwise (a query listing two values of the set
    /// is counted twice), which is the granularity the paper's
    /// materialized tables support.
    pub fn occ_set<'a, I>(&self, attr: AttrId, values: I) -> usize
    where
        I: IntoIterator<Item = &'a str>,
    {
        values.into_iter().map(|v| self.occ(attr, v)).sum()
    }

    /// Occurrence counts keyed by interned dictionary code: one pass
    /// over the attribute's `(value, count)` table, resolving each
    /// workload value through `resolve` (typically a dictionary
    /// lookup). Codes the workload never mentions stay 0; workload
    /// values outside the dictionary are ignored.
    ///
    /// This is the bulk, cache-friendly alternative to calling
    /// [`OccurrenceCounts::occ`] once per dictionary value: cost is
    /// O(distinct workload values) string hashes instead of
    /// O(dictionary size), and the caller gets a code-indexed table it
    /// can keep for the whole categorization.
    pub fn occ_by_code(
        &self,
        attr: AttrId,
        resolve: impl Fn(&str) -> Option<u32>,
        n_codes: usize,
    ) -> Vec<usize> {
        let mut out = vec![0usize; n_codes];
        if let Some(table) = self.tables.get(&attr) {
            for (v, &c) in table {
                if let Some(code) = resolve(v) {
                    if let Some(slot) = out.get_mut(code as usize) {
                        *slot = c;
                    }
                }
            }
        }
        out
    }

    /// All `(value, count)` pairs for an attribute, sorted by
    /// descending count then value (the presentation order of the
    /// categorical partitioner).
    pub fn sorted_by_count(&self, attr: AttrId) -> Vec<(&str, usize)> {
        let mut pairs: Vec<(&str, usize)> = self
            .tables
            .get(&attr)
            .map(|t| t.iter().map(|(v, &c)| (v.as_str(), c)).collect())
            .unwrap_or_default();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        pairs
    }

    /// All `(attr, value, count)` triples, for persistence
    /// (deterministic order).
    pub fn entries(&self) -> Vec<(AttrId, &str, usize)> {
        let mut out: Vec<(AttrId, &str, usize)> = self
            .tables
            .iter()
            .flat_map(|(&a, t)| t.iter().map(move |(v, &c)| (a, v.as_str(), c)))
            .collect();
        out.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(y.1)));
        out
    }

    /// Rebuild from persisted triples; `attrs` declares which
    /// attributes get (possibly empty) tables.
    pub fn from_entries(
        attrs: impl IntoIterator<Item = AttrId>,
        entries: impl IntoIterator<Item = (AttrId, String, usize)>,
    ) -> Self {
        let mut tables: HashMap<AttrId, HashMap<String, usize>> =
            attrs.into_iter().map(|a| (a, HashMap::new())).collect();
        for (a, v, c) in entries {
            tables.entry(a).or_default().insert(v, c);
        }
        OccurrenceCounts { tables }
    }

    /// Number of distinct values seen for `attr`.
    pub fn distinct_values(&self, attr: AttrId) -> usize {
        self.tables.get(&attr).map_or(0, HashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::Field;
    use qcat_sql::parse_and_normalize;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
        ])
        .unwrap()
    }

    fn build(sqls: &[&str]) -> OccurrenceCounts {
        let s = schema();
        let qs: Vec<NormalizedQuery> = sqls
            .iter()
            .map(|q| parse_and_normalize(q, &s).unwrap())
            .collect();
        OccurrenceCounts::build(&qs, &s)
    }

    #[test]
    fn counts_in_clause_values() {
        let o = build(&[
            "SELECT * FROM t WHERE neighborhood IN ('Bellevue','Redmond')",
            "SELECT * FROM t WHERE neighborhood IN ('Bellevue')",
            "SELECT * FROM t WHERE neighborhood = 'Bellevue'",
            "SELECT * FROM t WHERE price < 100",
        ]);
        assert_eq!(o.occ(AttrId(0), "Bellevue"), 3);
        assert_eq!(o.occ(AttrId(0), "Redmond"), 1);
        assert_eq!(o.occ(AttrId(0), "Seattle"), 0);
        assert_eq!(o.distinct_values(AttrId(0)), 2);
    }

    #[test]
    fn duplicate_values_in_one_query_count_once() {
        // The normalizer folds IN-sets, so 'a' appears once per query.
        let o = build(&["SELECT * FROM t WHERE neighborhood IN ('a','a','a')"]);
        assert_eq!(o.occ(AttrId(0), "a"), 1);
    }

    #[test]
    fn occ_set_sums() {
        let o = build(&[
            "SELECT * FROM t WHERE neighborhood IN ('a','b')",
            "SELECT * FROM t WHERE neighborhood IN ('b')",
        ]);
        assert_eq!(o.occ_set(AttrId(0), ["a", "b"]), 3);
        assert_eq!(o.occ_set(AttrId(0), ["c"]), 0);
    }

    #[test]
    fn sorted_by_count_desc_then_value() {
        let o = build(&[
            "SELECT * FROM t WHERE neighborhood IN ('b','c')",
            "SELECT * FROM t WHERE neighborhood IN ('b','a')",
            "SELECT * FROM t WHERE neighborhood IN ('c')",
        ]);
        let sorted = o.sorted_by_count(AttrId(0));
        assert_eq!(sorted, vec![("b", 2), ("c", 2), ("a", 1)]);
    }

    #[test]
    fn occ_by_code_matches_per_value_lookups() {
        let o = build(&[
            "SELECT * FROM t WHERE neighborhood IN ('a','b')",
            "SELECT * FROM t WHERE neighborhood IN ('b')",
        ]);
        // A 3-entry "dictionary": a=0, b=1, z=2 ('z' never queried);
        // the workload also never mentions code 2's value.
        let resolve = |v: &str| match v {
            "a" => Some(0u32),
            "b" => Some(1),
            "z" => Some(2),
            _ => None,
        };
        assert_eq!(o.occ_by_code(AttrId(0), resolve, 3), vec![1, 2, 0]);
        // Out-of-range codes and unknown attrs are harmless.
        assert_eq!(o.occ_by_code(AttrId(0), |_| Some(99), 2), vec![0, 0]);
        assert_eq!(o.occ_by_code(AttrId(1), resolve, 2), vec![0, 0]);
    }

    #[test]
    fn numeric_attr_has_no_table() {
        let o = build(&["SELECT * FROM t WHERE price < 100"]);
        assert_eq!(o.occ(AttrId(1), "100"), 0);
        assert!(o.sorted_by_count(AttrId(1)).is_empty());
    }
}
