//! Sorted-endpoint index for numeric `NOverlap` computation.
//!
//! `NOverlap(C)` for a numeric label counts the workload query ranges
//! that overlap the label's interval (paper Section 4.2). Counting by
//! rescanning the workload per category would make tree construction
//! O(categories × workload); this index answers each count with two
//! binary searches:
//!
//! ```text
//! overlap = N − (ranges entirely below the label)
//!             − (ranges entirely above the label)
//! ```
//!
//! which is exact because every recorded range is non-empty.

use qcat_sql::NumericRange;

/// An endpoint multiset as `(value, inclusive)` pairs — the persisted
/// form of one side of the index.
pub type EndpointList = Vec<(f64, bool)>;

/// An endpoint with its inclusivity, ordered so that binary search can
/// express "strictly below x" and "below-or-at x".
#[derive(Debug, Clone, Copy, PartialEq)]
struct Endpoint {
    value: f64,
    inclusive: bool,
}

/// Overlap-count index over the query ranges of one numeric attribute.
#[derive(Debug, Clone, Default)]
pub struct RangeIndex {
    /// Upper endpoints of all ranges, sorted ascending (exclusive
    /// before inclusive at equal values).
    uppers: Vec<Endpoint>,
    /// Lower endpoints of all ranges, sorted ascending (inclusive
    /// before exclusive at equal values — so a suffix count of
    /// "entirely above" is a single partition point).
    lowers: Vec<Endpoint>,
    len: usize,
    sorted: bool,
}

impl RangeIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (non-empty) query range.
    pub fn record(&mut self, range: &NumericRange) {
        debug_assert!(!range.is_empty(), "empty ranges carry no overlap signal");
        self.uppers.push(Endpoint {
            value: range.hi,
            inclusive: range.hi_inclusive,
        });
        self.lowers.push(Endpoint {
            value: range.lo,
            inclusive: range.lo_inclusive,
        });
        self.len += 1;
        self.sorted = false;
    }

    /// Sort the endpoint arrays; called automatically by queries.
    pub fn seal(&mut self) {
        if self.sorted {
            return;
        }
        // Uppers: at equal values, exclusive (< v) sorts before
        // inclusive (≤ v), because an exclusive upper end is "more
        // below".
        self.uppers.sort_by(|a, b| {
            a.value
                .total_cmp(&b.value)
                .then_with(|| a.inclusive.cmp(&b.inclusive))
        });
        // Lowers: at equal values, inclusive (≥ v) sorts before
        // exclusive (> v), because an exclusive lower end is "more
        // above".
        self.lowers.sort_by(|a, b| {
            a.value
                .total_cmp(&b.value)
                .then_with(|| b.inclusive.cmp(&a.inclusive))
        });
        self.sorted = true;
    }

    /// Number of ranges recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count recorded ranges overlapping `label`, sealing first if
    /// needed.
    pub fn count_overlapping(&mut self, label: &NumericRange) -> usize {
        self.seal();
        self.count_overlapping_sealed(label)
    }

    /// Count recorded ranges overlapping `label` on an already-sealed
    /// index (shared access; panics if [`RangeIndex::seal`] has not
    /// run since the last `record`).
    pub fn count_overlapping_sealed(&self, label: &NumericRange) -> usize {
        assert!(
            self.sorted || self.len == 0,
            "RangeIndex::seal must be called before shared queries"
        );
        if label.is_empty() {
            return 0;
        }
        let below = self.count_entirely_below(label);
        let above = self.count_entirely_above(label);
        self.len - below - above
    }

    /// The endpoint multisets `(lowers, uppers)` as
    /// `(value, inclusive)` pairs, for persistence. Overlap counting
    /// depends only on these two multisets, so the original pairing
    /// need not survive a round trip.
    pub fn endpoints(&self) -> (EndpointList, EndpointList) {
        (
            self.lowers.iter().map(|e| (e.value, e.inclusive)).collect(),
            self.uppers.iter().map(|e| (e.value, e.inclusive)).collect(),
        )
    }

    /// Rebuild from persisted endpoint multisets (must be the same
    /// length).
    pub fn from_endpoints(lowers: EndpointList, uppers: EndpointList) -> Self {
        assert_eq!(
            lowers.len(),
            uppers.len(),
            "every range has one lower and one upper endpoint"
        );
        let mut idx = RangeIndex {
            len: lowers.len(),
            lowers: lowers
                .into_iter()
                .map(|(value, inclusive)| Endpoint { value, inclusive })
                .collect(),
            uppers: uppers
                .into_iter()
                .map(|(value, inclusive)| Endpoint { value, inclusive })
                .collect(),
            sorted: false,
        };
        idx.seal();
        idx
    }

    /// Ranges whose every point is `<` the label's start.
    fn count_entirely_below(&self, label: &NumericRange) -> usize {
        // A range with upper endpoint (hi, hi_inc) is entirely below a
        // label starting at (lo, lo_inc) iff hi < lo, or hi == lo and
        // the two endpoints cannot both include the shared point.
        self.uppers.partition_point(|e| {
            e.value < label.lo || (e.value == label.lo && !(e.inclusive && label.lo_inclusive))
        })
    }

    /// Ranges whose every point is `>` the label's end.
    fn count_entirely_above(&self, label: &NumericRange) -> usize {
        let not_above = self.lowers.partition_point(|e| {
            e.value < label.hi || (e.value == label.hi && e.inclusive && label.hi_inclusive)
        });
        self.len - not_above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(lo: f64, hi: f64) -> NumericRange {
        NumericRange::closed(lo, hi)
    }

    #[test]
    fn counts_overlaps_for_half_open_labels() {
        let mut idx = RangeIndex::new();
        idx.record(&closed(0.0, 10.0));
        idx.record(&closed(20.0, 30.0));
        idx.record(&closed(5.0, 25.0));
        // Label [10, 20): overlaps [0,10] (at 10), [5,25]; not [20,30]
        // (label excludes 20).
        let label = NumericRange::half_open(10.0, 20.0);
        assert_eq!(idx.count_overlapping(&label), 2);
        // Label [20, 30]: overlaps [20,30] and [5,25].
        assert_eq!(idx.count_overlapping(&closed(20.0, 30.0)), 2);
        // Label far away.
        assert_eq!(idx.count_overlapping(&closed(100.0, 200.0)), 0);
    }

    #[test]
    fn unbounded_query_ranges_overlap_everything() {
        let mut idx = RangeIndex::new();
        idx.record(&NumericRange::unbounded());
        idx.record(&NumericRange {
            lo: 50.0,
            lo_inclusive: true,
            hi: f64::INFINITY,
            hi_inclusive: false,
        });
        assert_eq!(idx.count_overlapping(&closed(0.0, 10.0)), 1);
        assert_eq!(idx.count_overlapping(&closed(60.0, 70.0)), 2);
    }

    #[test]
    fn empty_label_overlaps_nothing() {
        let mut idx = RangeIndex::new();
        idx.record(&closed(0.0, 10.0));
        assert_eq!(idx.count_overlapping(&NumericRange::half_open(5.0, 5.0)), 0);
    }

    #[test]
    fn exclusive_touching_does_not_overlap() {
        let mut idx = RangeIndex::new();
        // Query range (10, 20] — open at 10.
        idx.record(&NumericRange {
            lo: 10.0,
            lo_inclusive: false,
            hi: 20.0,
            hi_inclusive: true,
        });
        // Label [0, 10] ends exactly where the open range begins.
        assert_eq!(idx.count_overlapping(&closed(0.0, 10.0)), 0);
        // Label [0, 10.5] pokes past the open endpoint.
        assert_eq!(idx.count_overlapping(&closed(0.0, 10.5)), 1);
    }

    #[test]
    fn incremental_record_resorts() {
        let mut idx = RangeIndex::new();
        idx.record(&closed(0.0, 1.0));
        assert_eq!(idx.count_overlapping(&closed(0.0, 5.0)), 1);
        idx.record(&closed(2.0, 3.0));
        assert_eq!(idx.count_overlapping(&closed(0.0, 5.0)), 2);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    // Property-based tests live behind the off-by-default `slow-tests`
    // feature: the `proptest` dev-dependency is not vendored, so the
    // default (hermetic) build must not resolve it. See docs/LINTS.md.
    #[cfg(feature = "slow-tests")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The index agrees with brute-force overlap counting for
            /// arbitrary closed/open ranges and labels.
            #[test]
            fn prop_matches_bruteforce(
                ranges in proptest::collection::vec(
                    (-50i32..50, 0i32..40, any::<bool>(), any::<bool>()), 0..40),
                label_lo in -60i32..60,
                label_len in 0i32..40,
                label_inc in any::<[bool; 2]>(),
            ) {
                let ranges: Vec<NumericRange> = ranges
                    .into_iter()
                    .map(|(lo, len, li, hi_inc)| NumericRange {
                        lo: lo as f64,
                        lo_inclusive: li,
                        hi: (lo + len) as f64,
                        hi_inclusive: hi_inc,
                    })
                    .filter(|r| !r.is_empty())
                    .collect();
                let label = NumericRange {
                    lo: label_lo as f64,
                    lo_inclusive: label_inc[0],
                    hi: (label_lo + label_len) as f64,
                    hi_inclusive: label_inc[1],
                };
                let mut idx = RangeIndex::new();
                for r in &ranges {
                    idx.record(r);
                }
                let expected = ranges.iter().filter(|r| r.overlaps(&label)).count();
                prop_assert_eq!(idx.count_overlapping(&label), expected);
            }
        }
    }
}
