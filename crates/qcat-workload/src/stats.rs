//! The aggregate workload statistics object.

use crate::config::PreprocessConfig;
use crate::correlation::CorrelationIndex;
use crate::log::WorkloadLog;
use crate::occurrence::OccurrenceCounts;
use crate::range_index::RangeIndex;
use crate::splitpoints::{SplitPoint, SplitPointTable};
use crate::usage::AttributeUsageCounts;
use qcat_data::{AttrId, AttrType, Schema};
use qcat_sql::NumericRange;
use std::collections::HashMap;

/// Everything the categorizer needs to know about past user behavior.
///
/// Built once per workload (the paper's offline preprocessing phase);
/// immutable and cheap to query afterwards. One instance serves every
/// categorization request until the workload is refreshed.
#[derive(Debug, Clone)]
pub struct WorkloadStatistics {
    schema: Schema,
    usage: AttributeUsageCounts,
    occurrence: OccurrenceCounts,
    splitpoints: HashMap<AttrId, SplitPointTable>,
    ranges: HashMap<AttrId, RangeIndex>,
    correlation: Option<CorrelationIndex>,
}

impl WorkloadStatistics {
    /// Scan the workload once and materialize all count tables.
    ///
    /// Numeric attributes missing a separation interval in `config`
    /// get no splitpoint table (and therefore can never be chosen by
    /// the cost-based numeric partitioner); call
    /// [`PreprocessConfig::infer_missing`] first to avoid that.
    pub fn build(log: &WorkloadLog, schema: &Schema, config: &PreprocessConfig) -> Self {
        Self::build_inner(log, schema, config, false)
    }

    /// Like [`WorkloadStatistics::build`], but additionally retains a
    /// [`CorrelationIndex`] over the normalized queries so estimators
    /// can condition probabilities on a node's path (the paper's
    /// future-work extension; costs one clone of the query log).
    pub fn build_with_correlation(
        log: &WorkloadLog,
        schema: &Schema,
        config: &PreprocessConfig,
    ) -> Self {
        Self::build_inner(log, schema, config, true)
    }

    fn build_inner(
        log: &WorkloadLog,
        schema: &Schema,
        config: &PreprocessConfig,
        correlation: bool,
    ) -> Self {
        let mut span = qcat_obs::span!(
            "workload.stats.build",
            queries = log.queries().len(),
            with_correlation = correlation,
        );
        let (usage, occurrence) = {
            let _s = qcat_obs::span!("workload.stats.counts");
            (
                AttributeUsageCounts::build(log.queries(), schema),
                OccurrenceCounts::build(log.queries(), schema),
            )
        };

        let range_span = qcat_obs::span!("workload.stats.ranges");
        let mut splitpoints: HashMap<AttrId, SplitPointTable> = schema
            .attr_ids()
            .filter(|&a| schema.type_of(a).is_numeric())
            .filter_map(|a| config.interval(a).map(|iv| (a, SplitPointTable::new(iv))))
            .collect();
        let mut ranges: HashMap<AttrId, RangeIndex> = schema
            .attr_ids()
            .filter(|&a| schema.type_of(a).is_numeric())
            .map(|a| (a, RangeIndex::new()))
            .collect();

        for q in log.queries() {
            for (&attr, cond) in &q.conditions {
                if schema.type_of(attr).is_numeric() {
                    if let Some(range) = cond.covering_range() {
                        if range.is_empty() {
                            continue;
                        }
                        if let Some(t) = splitpoints.get_mut(&attr) {
                            t.record_range(&range);
                        }
                        if let Some(idx) = ranges.get_mut(&attr) {
                            idx.record(&range);
                        }
                    }
                }
            }
        }
        for idx in ranges.values_mut() {
            idx.seal();
        }
        drop(range_span);
        let correlation = correlation.then(|| {
            let _s = qcat_obs::span!("workload.stats.correlation");
            CorrelationIndex::build(log.queries())
        });
        if qcat_obs::active() {
            span.set("numeric_attrs_indexed", ranges.len());
            qcat_obs::event!(
                "workload.stats.built",
                queries = log.queries().len(),
                splitpoint_tables = splitpoints.len(),
            );
        }
        WorkloadStatistics {
            schema: schema.clone(),
            usage,
            occurrence,
            splitpoints,
            ranges,
            correlation,
        }
    }

    /// Absorb `queries` into the statistics incrementally — no full
    /// rebuild. Every component is additive over queries: usage and
    /// occurrence counts sum, splitpoint grids record more endpoint
    /// ranges, and range indexes record then re-seal. The result is
    /// identical to [`WorkloadStatistics::build`] over the
    /// concatenated workload, at cost proportional to the delta (plus
    /// one re-sort per touched range index).
    ///
    /// All-or-nothing: the `workload.stats.delta` fault site is
    /// checked *before* any component mutates, so a refused absorb
    /// leaves the statistics exactly as they were. The correlation
    /// index (when present) is **not** extended — callers that keep
    /// one must rebuild via
    /// [`WorkloadStatistics::build_with_correlation`].
    pub fn absorb(&mut self, queries: &[qcat_sql::NormalizedQuery]) -> Result<(), qcat_fault::Fault> {
        if let Some(fault) = qcat_fault::point("workload.stats.delta") {
            return Err(fault);
        }
        let mut span = qcat_obs::span!("workload.stats.absorb", queries = queries.len());
        self.usage.absorb(queries);
        self.occurrence.absorb(queries);
        let mut touched = 0usize;
        for q in queries {
            for (&attr, cond) in &q.conditions {
                if self.schema.type_of(attr).is_numeric() {
                    if let Some(range) = cond.covering_range() {
                        if range.is_empty() {
                            continue;
                        }
                        if let Some(t) = self.splitpoints.get_mut(&attr) {
                            t.record_range(&range);
                        }
                        if let Some(idx) = self.ranges.get_mut(&attr) {
                            idx.record(&range);
                            touched += 1;
                        }
                    }
                }
            }
        }
        if touched > 0 {
            for idx in self.ranges.values_mut() {
                idx.seal();
            }
        }
        if qcat_obs::active() {
            span.set("ranges_recorded", touched);
        }
        Ok(())
    }

    /// The correlation index, when built with
    /// [`WorkloadStatistics::build_with_correlation`].
    pub fn correlation_index(&self) -> Option<&CorrelationIndex> {
        self.correlation.as_ref()
    }

    /// The schema the statistics were built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The usage-count component (persistence).
    pub fn usage_counts(&self) -> &AttributeUsageCounts {
        &self.usage
    }

    /// The occurrence-count component (persistence).
    pub fn occurrence_counts(&self) -> &OccurrenceCounts {
        &self.occurrence
    }

    /// All splitpoint tables, by attribute (persistence).
    pub fn splitpoint_tables(&self) -> impl Iterator<Item = (AttrId, &SplitPointTable)> {
        self.splitpoints.iter().map(|(&a, t)| (a, t))
    }

    /// All range indexes, by attribute (persistence).
    pub fn range_indexes(&self) -> impl Iterator<Item = (AttrId, &RangeIndex)> {
        self.ranges.iter().map(|(&a, i)| (a, i))
    }

    /// Reassemble statistics from persisted components. The
    /// correlation index is not persisted (rebuild from the log with
    /// [`WorkloadStatistics::build_with_correlation`] when needed).
    pub fn from_parts(
        schema: Schema,
        usage: AttributeUsageCounts,
        occurrence: OccurrenceCounts,
        splitpoints: HashMap<AttrId, SplitPointTable>,
        ranges: HashMap<AttrId, RangeIndex>,
    ) -> Self {
        WorkloadStatistics {
            schema,
            usage,
            occurrence,
            splitpoints,
            ranges,
            correlation: None,
        }
    }

    /// Workload size `N`.
    pub fn n_queries(&self) -> usize {
        self.usage.n_total()
    }

    /// `NAttr(A)`.
    pub fn n_attr(&self, attr: AttrId) -> usize {
        self.usage.n_attr(attr)
    }

    /// `NAttr(A) / N`.
    pub fn usage_fraction(&self, attr: AttrId) -> f64 {
        self.usage.usage_fraction(attr)
    }

    /// The attribute-elimination step (Section 5.1.1): attributes with
    /// usage fraction ≥ `threshold`, in schema order.
    pub fn retained_attrs(&self, threshold: f64) -> Vec<AttrId> {
        self.usage.attrs_above(threshold)
    }

    /// `occ(v)` for a categorical attribute.
    pub fn occ(&self, attr: AttrId, value: &str) -> usize {
        qcat_obs::counter("workload.occ_lookups", 1);
        self.occurrence.occ(attr, value)
    }

    /// Occurrence counts for every code of an interned dictionary in
    /// one bulk pass (see [`OccurrenceCounts::occ_by_code`]). The
    /// categorizer's hot path builds this once per attribute and then
    /// reads counts by code, instead of hashing a value string per
    /// dictionary entry per level.
    pub fn occ_by_code(
        &self,
        attr: AttrId,
        resolve: impl Fn(&str) -> Option<u32>,
        n_codes: usize,
    ) -> Vec<usize> {
        qcat_obs::counter("workload.occ_bulk_lookups", 1);
        self.occurrence.occ_by_code(attr, resolve, n_codes)
    }

    /// `NOverlap` for a categorical label `A ∈ B` (sum of per-value
    /// occurrence counts; exact for singletons).
    pub fn n_overlap_values<'a, I>(&self, attr: AttrId, values: I) -> usize
    where
        I: IntoIterator<Item = &'a str>,
    {
        qcat_obs::counter("workload.overlap_value_lookups", 1);
        self.occurrence.occ_set(attr, values)
    }

    /// `NOverlap` for a numeric label interval.
    pub fn n_overlap_range(&self, attr: AttrId, label: &NumericRange) -> usize {
        qcat_obs::counter("workload.overlap_range_lookups", 1);
        self.ranges
            .get(&attr)
            .map_or(0, |idx| idx.count_overlapping_sealed(label))
    }

    /// Values of a categorical attribute sorted by descending
    /// occurrence count.
    pub fn values_by_occurrence(&self, attr: AttrId) -> Vec<(&str, usize)> {
        self.occurrence.sorted_by_count(attr)
    }

    /// The splitpoint table of a numeric attribute, if configured.
    pub fn splitpoint_table(&self, attr: AttrId) -> Option<&SplitPointTable> {
        self.splitpoints.get(&attr)
    }

    /// Candidate splitpoints inside `(vmin, vmax)` by descending
    /// goodness.
    pub fn splitpoints_by_goodness(&self, attr: AttrId, vmin: f64, vmax: f64) -> Vec<SplitPoint> {
        qcat_obs::counter("workload.splitpoint_lookups", 1);
        self.splitpoints
            .get(&attr)
            .map(|t| t.by_goodness(vmin, vmax))
            .unwrap_or_default()
    }

    /// True when the attribute can be partitioned by the cost-based
    /// partitioner: categorical attributes always, numeric attributes
    /// only when a splitpoint table exists.
    pub fn partitionable(&self, attr: AttrId) -> bool {
        match self.schema.type_of(attr) {
            AttrType::Categorical => true,
            AttrType::Int | AttrType::Float => self.splitpoints.contains_key(&attr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("beds", AttrType::Int),
        ])
        .unwrap()
    }

    fn stats(sqls: &[&str]) -> WorkloadStatistics {
        let s = schema();
        let log = WorkloadLog::parse(sqls.iter().copied(), &s, None);
        let cfg = PreprocessConfig::new()
            .with_interval(AttrId(1), 1000.0)
            .with_interval(AttrId(2), 1.0);
        WorkloadStatistics::build(&log, &s, &cfg)
    }

    #[test]
    fn end_to_end_counts() {
        let st = stats(&[
            "SELECT * FROM t WHERE neighborhood IN ('Bellevue','Redmond') AND price BETWEEN 2000 AND 5000",
            "SELECT * FROM t WHERE price BETWEEN 5000 AND 8000",
            "SELECT * FROM t WHERE neighborhood = 'Bellevue'",
            "SELECT * FROM t",
        ]);
        assert_eq!(st.n_queries(), 4);
        assert_eq!(st.n_attr(AttrId(0)), 2);
        assert_eq!(st.n_attr(AttrId(1)), 2);
        assert_eq!(st.n_attr(AttrId(2)), 0);
        assert_eq!(st.occ(AttrId(0), "Bellevue"), 2);
        assert_eq!(st.n_overlap_values(AttrId(0), ["Bellevue", "Redmond"]), 3);
        // Splitpoint 5000 has start=1 end=1.
        let sp = st.splitpoint_table(AttrId(1)).unwrap().at(5000.0);
        assert_eq!((sp.start, sp.end), (1, 1));
        // Ranges overlapping [4000, 6000): both price queries.
        assert_eq!(
            st.n_overlap_range(AttrId(1), &NumericRange::half_open(4000.0, 6000.0)),
            2
        );
        // [8000, 9000]: only the second (closed at 8000).
        assert_eq!(
            st.n_overlap_range(AttrId(1), &NumericRange::closed(8000.0, 9000.0)),
            1
        );
    }

    #[test]
    fn retained_attrs_by_threshold() {
        let st = stats(&[
            "SELECT * FROM t WHERE price > 0",
            "SELECT * FROM t WHERE price > 0 AND neighborhood = 'a'",
        ]);
        assert_eq!(st.retained_attrs(0.6), vec![AttrId(1)]);
        assert_eq!(st.retained_attrs(0.4), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn partitionable_requires_splitpoint_table() {
        let s = schema();
        let log = WorkloadLog::parse(["SELECT * FROM t WHERE beds = 3"], &s, None);
        // No interval configured for beds.
        let cfg = PreprocessConfig::new().with_interval(AttrId(1), 1000.0);
        let st = WorkloadStatistics::build(&log, &s, &cfg);
        assert!(st.partitionable(AttrId(0)));
        assert!(st.partitionable(AttrId(1)));
        assert!(!st.partitionable(AttrId(2)));
    }

    #[test]
    fn values_by_occurrence_order() {
        let st = stats(&[
            "SELECT * FROM t WHERE neighborhood IN ('a','b')",
            "SELECT * FROM t WHERE neighborhood IN ('b')",
        ]);
        let vals = st.values_by_occurrence(AttrId(0));
        assert_eq!(vals, vec![("b", 2), ("a", 1)]);
    }

    #[test]
    fn numeric_in_list_contributes_covering_range() {
        let st = stats(&["SELECT * FROM t WHERE beds IN (2, 4)"]);
        // Covering range [2,4] starts at 2, ends at 4 on the beds grid.
        let t = st.splitpoint_table(AttrId(2)).unwrap();
        assert_eq!(t.at(2.0).start, 1);
        assert_eq!(t.at(4.0).end, 1);
        assert_eq!(
            st.n_overlap_range(AttrId(2), &NumericRange::closed(3.0, 5.0)),
            1
        );
    }

    #[test]
    fn empty_workload_statistics() {
        let st = stats(&[]);
        assert_eq!(st.n_queries(), 0);
        assert_eq!(st.usage_fraction(AttrId(0)), 0.0);
        assert_eq!(
            st.n_overlap_range(AttrId(1), &NumericRange::closed(0.0, 1.0)),
            0
        );
        assert!(st.splitpoints_by_goodness(AttrId(1), 0.0, 1e9).is_empty());
    }

    #[test]
    fn absorb_matches_rebuild_over_concatenated_workload() {
        let first = &[
            "SELECT * FROM t WHERE neighborhood IN ('Bellevue') AND price BETWEEN 2000 AND 5000",
            "SELECT * FROM t WHERE beds = 3",
        ];
        let second = &[
            "SELECT * FROM t WHERE neighborhood IN ('Bellevue','Redmond')",
            "SELECT * FROM t WHERE price BETWEEN 4000 AND 9000",
        ];
        let mut incremental = stats(first);
        let s = schema();
        let delta = WorkloadLog::parse(second.iter().copied(), &s, None);
        incremental.absorb(delta.queries()).unwrap();
        let all: Vec<&str> = first.iter().chain(second.iter()).copied().collect();
        let rebuilt = stats(&all);
        assert_eq!(incremental.n_queries(), rebuilt.n_queries());
        for a in [AttrId(0), AttrId(1), AttrId(2)] {
            assert_eq!(incremental.n_attr(a), rebuilt.n_attr(a), "{a:?}");
        }
        assert_eq!(
            incremental.occ(AttrId(0), "Bellevue"),
            rebuilt.occ(AttrId(0), "Bellevue")
        );
        assert_eq!(
            incremental.occ(AttrId(0), "Redmond"),
            rebuilt.occ(AttrId(0), "Redmond")
        );
        for probe in [
            NumericRange::half_open(1000.0, 3000.0),
            NumericRange::closed(4500.0, 8000.0),
            NumericRange::closed(9000.0, 9999.0),
        ] {
            assert_eq!(
                incremental.n_overlap_range(AttrId(1), &probe),
                rebuilt.n_overlap_range(AttrId(1), &probe),
                "{probe:?}"
            );
        }
        let (si, sr) = (
            incremental.splitpoint_table(AttrId(1)).unwrap(),
            rebuilt.splitpoint_table(AttrId(1)).unwrap(),
        );
        assert_eq!(si.ranges_recorded(), sr.ranges_recorded());
        for v in [2000.0, 4000.0, 5000.0, 9000.0] {
            let (a, b) = (si.at(v), sr.at(v));
            assert_eq!((a.start, a.end), (b.start, b.end), "splitpoint {v}");
        }
    }

    #[test]
    fn absorb_fault_leaves_statistics_untouched() {
        let mut st = stats(&["SELECT * FROM t WHERE price > 100"]);
        let s = schema();
        let delta = WorkloadLog::parse(
            ["SELECT * FROM t WHERE neighborhood = 'a'"].into_iter(),
            &s,
            None,
        );
        let plan = qcat_fault::FaultPlan::parse("workload.stats.delta:error").unwrap();
        let err = qcat_fault::with_plan(&plan, || st.absorb(delta.queries()).unwrap_err());
        assert_eq!(err.site, "workload.stats.delta");
        assert_eq!(st.n_queries(), 1, "refused absorb must not tally");
        assert_eq!(st.occ(AttrId(0), "a"), 0);
        // Without the fault the same delta lands.
        st.absorb(delta.queries()).unwrap();
        assert_eq!(st.n_queries(), 2);
        assert_eq!(st.occ(AttrId(0), "a"), 1);
    }

    #[test]
    fn unsatisfiable_conditions_skipped() {
        // price < 10 AND price > 20 folds to an empty range; it still
        // counts for NAttr (the user expressed interest in price) but
        // contributes no endpoints.
        let st = stats(&["SELECT * FROM t WHERE price < 10 AND price > 20"]);
        assert_eq!(st.n_attr(AttrId(1)), 1);
        assert_eq!(st.splitpoint_table(AttrId(1)).unwrap().ranges_recorded(), 0);
    }
}
