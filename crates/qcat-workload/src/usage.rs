//! The AttributeUsageCounts table (paper Figure 4a).

use qcat_data::{AttrId, Schema};
use qcat_sql::NormalizedQuery;

/// Per-attribute selection-condition counts.
///
/// `NAttr(A)` is the number of workload queries that place *any*
/// selection condition on `A`; `N` is the workload size. Their ratio
/// is the probability that a random user is interested in only a few
/// values of `A` — the SHOWCAT probability of a node subcategorized by
/// `A` (Section 4.2).
#[derive(Debug, Clone)]
pub struct AttributeUsageCounts {
    counts: Vec<usize>,
    total_queries: usize,
}

impl AttributeUsageCounts {
    /// Scan `queries` and tally usage per attribute of `schema`.
    pub fn build<'a, I>(queries: I, schema: &Schema) -> Self
    where
        I: IntoIterator<Item = &'a NormalizedQuery>,
    {
        let mut counts = vec![0usize; schema.len()];
        let mut total = 0usize;
        for q in queries {
            total += 1;
            for &attr in q.conditions.keys() {
                if attr.index() < counts.len() {
                    counts[attr.index()] += 1;
                }
            }
        }
        AttributeUsageCounts {
            counts,
            total_queries: total,
        }
    }

    /// Tally additional `queries` into the existing counts — the
    /// incremental complement of [`AttributeUsageCounts::build`].
    /// Usage counts are plain sums over queries, so absorbing a delta
    /// equals rebuilding over the concatenated workload.
    pub fn absorb<'a, I>(&mut self, queries: I)
    where
        I: IntoIterator<Item = &'a NormalizedQuery>,
    {
        for q in queries {
            self.total_queries += 1;
            for &attr in q.conditions.keys() {
                if attr.index() < self.counts.len() {
                    self.counts[attr.index()] += 1;
                }
            }
        }
    }

    /// `NAttr(A)`.
    pub fn n_attr(&self, attr: AttrId) -> usize {
        self.counts.get(attr.index()).copied().unwrap_or(0)
    }

    /// The workload size `N`.
    pub fn n_total(&self) -> usize {
        self.total_queries
    }

    /// `NAttr(A) / N`, the fraction of queries constraining `A`
    /// (0 when the workload is empty).
    pub fn usage_fraction(&self, attr: AttrId) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.n_attr(attr) as f64 / self.total_queries as f64
        }
    }

    /// Raw per-attribute counts, for persistence.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Rebuild from persisted counts.
    pub fn from_counts(counts: Vec<usize>, total_queries: usize) -> Self {
        AttributeUsageCounts {
            counts,
            total_queries,
        }
    }

    /// Attributes whose usage fraction is at least `threshold` — the
    /// attribute-elimination step of Section 5.1.1 keeps exactly
    /// these.
    pub fn attrs_above(&self, threshold: f64) -> Vec<AttrId> {
        (0..self.counts.len() as u32)
            .map(AttrId)
            .filter(|&a| self.usage_fraction(a) >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field};
    use qcat_sql::parse_and_normalize;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("beds", AttrType::Int),
        ])
        .unwrap()
    }

    fn queries(sqls: &[&str]) -> Vec<NormalizedQuery> {
        let s = schema();
        sqls.iter()
            .map(|q| parse_and_normalize(q, &s).unwrap())
            .collect()
    }

    #[test]
    fn counts_presence_not_multiplicity() {
        // Two conditions on price in one query still count once.
        let qs = queries(&[
            "SELECT * FROM t WHERE price > 1 AND price < 9",
            "SELECT * FROM t WHERE neighborhood IN ('a') AND price < 5",
            "SELECT * FROM t",
        ]);
        let u = AttributeUsageCounts::build(&qs, &schema());
        assert_eq!(u.n_total(), 3);
        assert_eq!(u.n_attr(AttrId(0)), 1);
        assert_eq!(u.n_attr(AttrId(1)), 2);
        assert_eq!(u.n_attr(AttrId(2)), 0);
        assert!((u.usage_fraction(AttrId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn attrs_above_threshold() {
        let qs = queries(&[
            "SELECT * FROM t WHERE price > 1",
            "SELECT * FROM t WHERE price > 1 AND neighborhood = 'a'",
        ]);
        let u = AttributeUsageCounts::build(&qs, &schema());
        assert_eq!(u.attrs_above(0.9), vec![AttrId(1)]);
        assert_eq!(u.attrs_above(0.5), vec![AttrId(0), AttrId(1)]);
        assert_eq!(u.attrs_above(0.0).len(), 3);
    }

    #[test]
    fn empty_workload_is_all_zeros() {
        let u = AttributeUsageCounts::build(&[], &schema());
        assert_eq!(u.n_total(), 0);
        assert_eq!(u.usage_fraction(AttrId(0)), 0.0);
        assert!(u.attrs_above(0.1).is_empty());
    }
}
