//! Access-path planning: scan vs. index, decided per conjunct, with
//! per-shard pruning and morsel-parallel scans.
//!
//! The executor's historical strategy — compile the predicate and
//! scan every row — costs `O(N)` per query regardless of
//! selectivity. When the relation carries an
//! [`IndexSet`](qcat_data::IndexSet), this planner answers each
//! conjunct from the matching index instead:
//!
//! - `IN` / `=` on a categorical attribute → union of the postings
//!   lists of the accepted dictionary codes;
//! - a numeric interval → a binary-searched slice of the sorted
//!   projection;
//! - a numeric `IN` → union of per-value equal-ranges.
//!
//! Costing uses **exact** cardinalities, read from the indexes for
//! free: postings lengths and slice widths. The plan is: sort the
//! index-answerable conjuncts by cardinality; if even the cheapest
//! selects more than [`SCAN_FALLBACK_NUM`]/[`SCAN_FALLBACK_DEN`] of
//! the relation, scan (the scan touches each row once; materializing
//! near-total row-id lists costs more than it saves). Otherwise start
//! from the smallest list and intersect larger lists smallest-first
//! (galloping kicks in for skewed sizes); a conjunct whose list would
//! dwarf the running candidate set ([`INTERSECT_RATIO`]×) is cheaper
//! to apply as a **residual** row-at-a-time filter over the candidate
//! list, exactly like any conjunct no index can answer.
//!
//! **Sharded relations.** When the relation is split into horizontal
//! shards (see `qcat_data::shard`), both paths work per shard:
//!
//! - the scan path fans one morsel per shard through `qcat-pool`
//!   (budget `Gas` polled per shard and every
//!   `CANCEL_STRIDE` rows inside one, caller's recorder/trace
//!   propagated, results concatenated by shard index — byte-identical
//!   to the serial scan at any thread count);
//! - the index path reads each conjunct's per-shard lists and
//!   concatenates them in shard order (global row ids over disjoint
//!   increasing ranges need no merge);
//! - both paths first **prune** shards the relation's
//!   [`ShardSummaries`](qcat_data::ShardSummaries) prove cannot match
//!   — numeric `[min, max]` disjoint from the interval, or no
//!   accepted dictionary code present. Pruning is proof-based, so it
//!   changes how much work runs, never which rows come back; exact
//!   index cardinalities are summed over surviving shards only.
//!
//! Every path yields ascending row ids, so index output is
//! bit-compatible with scan output; `tests` pin that equality on
//! every fixture, sharded and not.

use crate::executor::ExecError;
use qcat_data::{intersect_sorted, union_sorted, AttrId, IndexSet, Relation, ShardIndexes};
use qcat_fault::BudgetExceeded;
use qcat_pool::{PoolError, ThreadPool};
use qcat_sql::eval::CompiledPredicate;
use qcat_sql::normalize::{AttrCondition, NumericRange};
use qcat_sql::NormalizedQuery;

/// Which access path `execute_normalized_with` may take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPath {
    /// Cost-based choice: index when present and selective, else scan.
    #[default]
    Auto,
    /// Always scan, even when indexes exist (baseline / differential
    /// testing).
    ForceScan,
    /// Use every index-answerable conjunct regardless of selectivity
    /// (exercises the kernels; still falls back to scan when the
    /// relation has no indexes).
    ForceIndex,
}

/// Auto falls back to a scan when the cheapest index conjunct selects
/// more than `SCAN_FALLBACK_NUM / SCAN_FALLBACK_DEN` of the relation.
const SCAN_FALLBACK_NUM: usize = 1;
/// See [`SCAN_FALLBACK_NUM`].
const SCAN_FALLBACK_DEN: usize = 4;

/// A further index list is intersected eagerly only while its
/// cardinality is below this multiple of the current candidate size;
/// beyond that, probing the candidate rows directly (residual filter)
/// touches less memory.
const INTERSECT_RATIO: usize = 8;

/// How a query's rows were produced, for spans and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanExplain {
    /// True when any conjunct was answered from an index.
    pub used_index: bool,
    /// Conjuncts answered from indexes.
    pub index_conjuncts: usize,
    /// Conjuncts applied as a row-at-a-time residual filter.
    pub residual_conjuncts: usize,
    /// Total row ids fetched from index lists.
    pub rows_fetched: usize,
    /// Shards skipped outright because the relation's summaries prove
    /// no row of theirs can match (0 for unsharded relations).
    pub shards_pruned: usize,
}

impl PlanExplain {
    fn scan(conjuncts: usize, shards_pruned: usize) -> PlanExplain {
        PlanExplain {
            used_index: false,
            index_conjuncts: 0,
            residual_conjuncts: conjuncts,
            rows_fetched: 0,
            shards_pruned,
        }
    }
}

/// One index-answerable conjunct with its exact result cardinality
/// (summed over surviving shards).
struct IndexConjunct {
    attr: AttrId,
    est: usize,
    fetch: Fetch,
}

enum Fetch {
    /// Union of postings lists for these dictionary codes.
    Codes(Vec<u32>),
    /// Sorted-projection slice for this interval.
    Range(NumericRange),
    /// Union of per-value equal-ranges.
    Values(Vec<f64>),
}

/// Select the matching row ids of `query` against `relation` along
/// `path` at auto thread width. Rows come back ascending (table
/// order) on every path.
pub fn select_rows(
    relation: &Relation,
    query: &NormalizedQuery,
    path: AccessPath,
) -> Result<(Vec<u32>, PlanExplain), ExecError> {
    select_rows_with_threads(relation, query, path, 0)
}

/// [`select_rows`] at an explicit thread width (`0` = auto via
/// `QCAT_THREADS`). Threads only change how sharded scans and index
/// builds are scheduled; the returned rows are byte-identical at
/// every width.
pub fn select_rows_with_threads(
    relation: &Relation,
    query: &NormalizedQuery,
    path: AccessPath,
    threads: usize,
) -> Result<(Vec<u32>, PlanExplain), ExecError> {
    if let Some(fault) = qcat_fault::point("exec.plan") {
        return Err(fault.into());
    }
    // Check once before any work: small relations may finish under
    // the scan's poll stride, but an already-expired deadline must
    // still refuse deterministically.
    if let Some(g) = qcat_fault::current_gas() {
        g.check()?;
    }
    let indexes = match path {
        AccessPath::ForceScan => None,
        AccessPath::Auto | AccessPath::ForceIndex => relation.indexes(),
    };
    let Some(indexes) = indexes else {
        let (rows, pruned) = scan_rows(relation, query, None, threads)?;
        return Ok((rows, PlanExplain::scan(query.conditions.len(), pruned)));
    };

    let mut plan_span = qcat_obs::span!("exec.plan", conjuncts = query.conditions.len());
    // Shard pruning mask: which shards could hold a match at all,
    // judged per condition against the relation's summaries. The AND
    // semantics of a conjunction let any conjunct's proven miss
    // exclude the shard for the whole query.
    let alive_mask: Option<Vec<bool>> = if relation.shards().is_single() {
        None
    } else {
        CompiledPredicate::compile(query, relation)
            .map_err(qcat_sql::SqlError::from)?
            .shard_survival(relation)
    };
    let alive = alive_mask.as_deref();
    let shards_pruned = alive.map_or(0, |a| a.iter().filter(|&&live| !live).count());
    if shards_pruned > 0 {
        qcat_obs::counter("exec.plan.shards_pruned", shards_pruned as i64);
    }

    let mut eligible: Vec<IndexConjunct> = Vec::with_capacity(query.conditions.len());
    let mut residual: Vec<AttrId> = Vec::new();
    for (&attr, cond) in &query.conditions {
        match classify(relation, indexes, attr, cond, alive) {
            Some(c) => eligible.push(c),
            None => residual.push(attr),
        }
    }
    eligible.sort_by_key(|c| c.est);

    let n = relation.len();
    let selective = eligible.first().is_some_and(|c| {
        c.est == 0 || c.est.saturating_mul(SCAN_FALLBACK_DEN) <= n.saturating_mul(SCAN_FALLBACK_NUM)
    });
    let use_index = match path {
        AccessPath::ForceIndex => !eligible.is_empty(),
        _ => selective,
    };
    if qcat_obs::active() {
        plan_span.set("eligible", eligible.len());
        plan_span.set("shards_pruned", shards_pruned);
        plan_span.set("path", if use_index { "index" } else { "scan" });
    }
    drop(plan_span);
    if !use_index {
        qcat_obs::counter("exec.plan.scan_fallback", 1);
        let (rows, pruned) = scan_rows(relation, query, None, threads)?;
        return Ok((rows, PlanExplain::scan(query.conditions.len(), pruned)));
    }

    let mut span = qcat_obs::span!("exec.index.select", conjuncts = eligible.len());
    let mut explain = PlanExplain {
        used_index: true,
        index_conjuncts: 0,
        residual_conjuncts: residual.len(),
        rows_fetched: 0,
        shards_pruned,
    };
    // An unsatisfiable conjunct (cardinality 0) decides the query.
    if eligible.first().is_some_and(|c| c.est == 0) {
        explain.index_conjuncts = 1;
        if qcat_obs::active() {
            span.set("rows_matched", 0usize);
        }
        return Ok((Vec::new(), explain));
    }

    let gas = qcat_fault::current_gas();
    let mut rows: Vec<u32> = Vec::new();
    for (i, c) in eligible.iter().enumerate() {
        // One checkpoint per conjunct: fetching and intersecting a
        // posting list is the unit of work between cancellation polls.
        if let Some(g) = &gas {
            g.check()?;
        }
        if let Some(fault) = qcat_fault::point("exec.fetch") {
            return Err(fault.into());
        }
        let eager = i == 0
            || path == AccessPath::ForceIndex
            || c.est <= rows.len().saturating_mul(INTERSECT_RATIO);
        if !eager {
            residual.push(c.attr);
            continue;
        }
        let list = fetch_rows(indexes, c, alive);
        explain.rows_fetched += list.len();
        explain.index_conjuncts += 1;
        rows = if i == 0 {
            list
        } else {
            intersect_sorted(&rows, &list)
        };
        if rows.is_empty() {
            break;
        }
    }
    qcat_obs::counter("exec.index.used", 1);
    qcat_obs::counter("exec.index.rows_fetched", explain.rows_fetched as i64);

    explain.residual_conjuncts = residual.len();
    if !rows.is_empty() && !residual.is_empty() {
        let (filtered, _) = scan_rows(relation, query, Some((&residual, rows)), threads)?;
        rows = filtered;
    }
    if qcat_obs::active() {
        span.set("rows_matched", rows.len());
    }
    Ok((rows, explain))
}

/// Scan-side evaluation: compile (a subset of) the conditions and
/// filter row-at-a-time. `restrict` = `(attrs to keep, candidates)`;
/// `None` compiles everything and scans the whole relation — as one
/// pass on a single-shard relation, as per-shard pool morsels on a
/// sharded one. Returns the matching rows plus how many shards were
/// pruned.
fn scan_rows(
    relation: &Relation,
    query: &NormalizedQuery,
    restrict: Option<(&[AttrId], Vec<u32>)>,
    threads: usize,
) -> Result<(Vec<u32>, usize), ExecError> {
    if let Some(fault) = qcat_fault::point("exec.scan") {
        return Err(fault.into());
    }
    let (predicate, candidates) = match &restrict {
        None => (CompiledPredicate::compile(query, relation)?, None),
        Some((attrs, candidates)) => (
            CompiledPredicate::compile_where(query, relation, |a| attrs.contains(&a))?,
            Some(candidates.as_slice()),
        ),
    };
    if candidates.is_none() && !relation.shards().is_single() {
        return morsel_scan(relation, &predicate, threads);
    }
    let rows = match qcat_fault::current_gas() {
        None => predicate.filter(relation, candidates),
        Some(gas) => {
            // filter_cancellable polls this closure every
            // CANCEL_STRIDE rows; a trip mid-scan discards the
            // partial result so callers never see truncated rows.
            let mut cancel = || !gas.checkpoint();
            predicate
                .filter_cancellable(relation, candidates, &mut cancel)
                .ok_or_else(|| {
                    ExecError::Budget(gas.exceeded().unwrap_or(BudgetExceeded::Cancelled))
                })?
        }
    };
    Ok((rows, 0))
}

/// Full scan of a sharded relation: prune shards the summaries rule
/// out, then filter each survivor as one `qcat-pool` morsel and
/// concatenate the per-shard matches by shard index. Shard ranges are
/// disjoint and increasing, so the concatenation is the same
/// ascending list the serial scan produces.
fn morsel_scan(
    relation: &Relation,
    predicate: &CompiledPredicate,
    threads: usize,
) -> Result<(Vec<u32>, usize), ExecError> {
    let map = relation.shards();
    let alive = predicate.shard_survival(relation);
    let shard_ids: Vec<usize> = (0..map.shard_count())
        .filter(|&s| {
            alive
                .as_ref()
                .is_none_or(|a| a.get(s).copied().unwrap_or(true))
        })
        .collect();
    let pruned = map.shard_count() - shard_ids.len();
    if pruned > 0 {
        qcat_obs::counter("exec.scan.shards_pruned", pruned as i64);
    }
    let pool = ThreadPool::new(threads);
    let mut span = qcat_obs::span!(
        "exec.scan.morsels",
        shards = shard_ids.len(),
        threads = pool.threads()
    );
    let parts = pool
        .try_map(&shard_ids, |_, &s| {
            let (start, end) = map.bounds(s);
            let _item = qcat_obs::span!("exec.scan.shard", shard = s, rows = end - start);
            // The worker sees the caller's gas via pool propagation;
            // polling it inside the shard bounds deadline overshoot
            // to CANCEL_STRIDE rows, same as the serial scan.
            match qcat_fault::current_gas() {
                None => predicate.filter_range_cancellable(relation, start, end, &mut || false),
                Some(gas) => {
                    let mut cancel = || !gas.checkpoint();
                    predicate.filter_range_cancellable(relation, start, end, &mut cancel)
                }
            }
        })
        .map_err(pool_to_exec)?;
    let mut rows = Vec::new();
    for part in parts {
        match part {
            Some(p) => rows.extend_from_slice(&p),
            // A shard aborted mid-filter on a tripped budget; discard
            // everything — truncated results never leave the executor.
            None => {
                let reason = qcat_fault::current_gas()
                    .and_then(|g| g.exceeded())
                    .unwrap_or(BudgetExceeded::Cancelled);
                return Err(ExecError::Budget(reason));
            }
        }
    }
    if qcat_obs::active() {
        span.set("rows_matched", rows.len());
    }
    Ok((rows, pruned))
}

/// Map a pool failure out of a scan/index-build morsel onto the
/// executor's error taxonomy.
fn pool_to_exec(e: PoolError) -> ExecError {
    match e {
        PoolError::Cancelled(reason) => ExecError::Budget(reason),
        PoolError::Fault(fault) => ExecError::Fault(fault),
        PoolError::TaskPanicked { index, message } => {
            ExecError::Internal(format!("scan morsel {index} panicked: {message}"))
        }
    }
}

/// Iterate the shards of `indexes` that survive `alive` (`None` =
/// everything survives).
fn live_shards<'a>(
    indexes: &'a IndexSet,
    alive: Option<&'a [bool]>,
) -> impl Iterator<Item = &'a ShardIndexes> + 'a {
    indexes
        .shards()
        .iter()
        .enumerate()
        .filter(move |(i, _)| alive.is_none_or(|a| a.get(*i).copied().unwrap_or(true)))
        .map(|(_, sh)| &**sh)
}

/// Can `cond` be answered by an index on `attr`? Returns the conjunct
/// with its exact cardinality summed over surviving shards; `None`
/// routes it to the residual filter (which also surfaces any
/// type-drift error the scan path would report).
fn classify(
    relation: &Relation,
    indexes: &IndexSet,
    attr: AttrId,
    cond: &AttrCondition,
    alive: Option<&[bool]>,
) -> Option<IndexConjunct> {
    // Every shard indexes the same columns; shard 0 (always present)
    // answers "is this attribute indexed in the right shape?".
    let shape = &indexes.shards()[0];
    match cond {
        AttrCondition::InStr(values) => {
            shape.postings(attr)?;
            let (dict, _) = relation.column(attr).categorical()?;
            let codes: Vec<u32> = values.iter().filter_map(|v| dict.lookup(v)).collect();
            let est = live_shards(indexes, alive)
                .map(|sh| {
                    sh.postings(attr).map_or(0, |p| {
                        codes.iter().map(|&c| p.count_for_code(c)).sum::<usize>()
                    })
                })
                .sum();
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Codes(codes),
            })
        }
        AttrCondition::Range(r) => {
            shape.sorted(attr)?;
            let est = if r.is_empty() {
                0
            } else {
                live_shards(indexes, alive)
                    .map(|sh| {
                        sh.sorted(attr)
                            .map_or(0, |s| s.count_in(r.lo, r.lo_inclusive, r.hi, r.hi_inclusive))
                    })
                    .sum()
            };
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Range(*r),
            })
        }
        AttrCondition::InNum(values) => {
            shape.sorted(attr)?;
            let est = live_shards(indexes, alive)
                .map(|sh| {
                    sh.sorted(attr).map_or(0, |s| {
                        values.iter().map(|&v| s.count_eq(v)).sum::<usize>()
                    })
                })
                .sum();
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Values(values.clone()),
            })
        }
    }
}

/// Materialize the ascending row-id list of one index conjunct:
/// per-shard lists (borrowed from the index wherever possible),
/// concatenated in shard order. Row ids are global and shard ranges
/// increase, so the concatenation is globally ascending.
fn fetch_rows(indexes: &IndexSet, c: &IndexConjunct, alive: Option<&[bool]>) -> Vec<u32> {
    let mut out = Vec::new();
    for sh in live_shards(indexes, alive) {
        match &c.fetch {
            Fetch::Codes(codes) => {
                let Some(postings) = sh.postings(c.attr) else {
                    continue;
                };
                // Postings of distinct codes are disjoint; union =
                // merge of borrowed lists.
                let lists: Vec<&[u32]> =
                    codes.iter().map(|&cd| postings.rows_for_code(cd)).collect();
                out.extend_from_slice(&union_sorted(&lists));
            }
            Fetch::Range(r) => {
                let Some(sorted) = sh.sorted(c.attr) else {
                    continue;
                };
                if r.is_empty() {
                    continue;
                }
                // The projection slice is value-ordered; one copy +
                // sort per (probe, shard) restores table order. This
                // is the only copy an index probe makes.
                let from = out.len();
                out.extend_from_slice(sorted.slice_in(r.lo, r.lo_inclusive, r.hi, r.hi_inclusive));
                out[from..].sort_unstable();
            }
            Fetch::Values(values) => {
                let Some(sorted) = sh.sorted(c.attr) else {
                    continue;
                };
                // Equal-range slices are already row-ascending (the
                // sort tiebreaks on row id), so they merge borrowed.
                let lists: Vec<&[u32]> = values.iter().map(|&v| sorted.slice_eq(v)).collect();
                out.extend_from_slice(&union_sorted(&lists));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, RelationBuilder, Schema};
    use qcat_sql::parse_and_normalize;

    /// Small fixture with one attribute of every index shape plus a
    /// single-distinct-value attribute (`city` is always "Seattle").
    /// `shard_rows` = 0 keeps it unsharded.
    fn homes_sharded(indexed: bool, shard_rows: usize) -> Relation {
        let schema = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
            Field::new("city", AttrType::Categorical),
        ])
        .unwrap();
        let rows: &[(&str, f64, i64)] = &[
            ("Redmond", 210_000.0, 3),
            ("Bellevue", 260_000.0, 4),
            ("Seattle", 305_000.0, 2),
            ("Redmond", 199_000.0, 5),
            ("Issaquah", 250_000.0, 3),
            ("Bellevue", 149_000.0, 1),
            ("Seattle", 411_000.0, 4),
            ("Redmond", 230_000.0, 3),
        ];
        let mut b = RelationBuilder::with_capacity(schema, rows.len()).with_shard_rows(shard_rows);
        for (n, p, beds) in rows {
            b.push_row(&[(*n).into(), (*p).into(), (*beds).into(), "Seattle".into()])
                .unwrap();
        }
        if indexed {
            b = b.with_indexes();
        }
        b.finish().unwrap()
    }

    fn homes(indexed: bool) -> Relation {
        homes_sharded(indexed, 0)
    }

    /// Every query must match the same rows on every path, every
    /// shard layout, and every thread width; `Auto` on an indexed
    /// relation must additionally agree with `Auto` on an unindexed
    /// one.
    fn assert_paths_agree(sql: &str) -> Vec<u32> {
        let plain = homes(false);
        let q = parse_and_normalize(sql, plain.schema()).unwrap();
        let (scan, se) = select_rows(&plain, &q, AccessPath::Auto).unwrap();
        assert!(!se.used_index, "unindexed relation must scan: {sql}");
        for shard_rows in [0, 3] {
            for indexed in [false, true] {
                let rel = homes_sharded(indexed, shard_rows);
                for path in [AccessPath::Auto, AccessPath::ForceScan, AccessPath::ForceIndex] {
                    for threads in [1, 2, 8] {
                        let (rows, _) =
                            select_rows_with_threads(&rel, &q, path, threads).unwrap();
                        assert_eq!(
                            rows, scan,
                            "{path:?} diverged on {sql} (shard_rows={shard_rows}, \
                             indexed={indexed}, threads={threads})"
                        );
                    }
                }
            }
        }
        let indexed = homes(true);
        let (_, fe) = select_rows(&indexed, &q, AccessPath::ForceIndex).unwrap();
        assert!(
            fe.used_index || q.conditions.is_empty(),
            "ForceIndex should engage indexes when conjuncts exist: {sql}"
        );
        scan
    }

    #[test]
    fn selective_in_list_uses_index() {
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Issaquah')",
            rel.schema(),
        )
        .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows, vec![4]);
        assert!(e.used_index);
        assert_eq!(e.index_conjuncts, 1);
        assert_eq!(e.residual_conjuncts, 0);
        assert_eq!(e.shards_pruned, 0, "single shard: nothing to prune");
    }

    #[test]
    fn unselective_conjunct_falls_back_to_scan() {
        // `city = 'Seattle'` matches every row; Auto must refuse the
        // index, ForceIndex must still give identical rows.
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE city IN ('Seattle')",
            rel.schema(),
        )
        .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows.len(), rel.len());
        assert!(!e.used_index);
        let (rows, e) = select_rows(&rel, &q, AccessPath::ForceIndex).unwrap();
        assert_eq!(rows.len(), rel.len());
        assert!(e.used_index);
    }

    #[test]
    fn sharded_paths_prune_and_agree() {
        // Shards of 3 over 8 rows: [0..3), [3..6), [6..8). Issaquah
        // (row 4) lives only in shard 1; price > 400000 only in
        // shard 2.
        let rel = homes_sharded(true, 3);
        assert_eq!(rel.shards().shard_count(), 3);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Issaquah')",
            rel.schema(),
        )
        .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows, vec![4]);
        assert!(e.used_index);
        assert_eq!(e.shards_pruned, 2, "code 'Issaquah' absent from shards 0 and 2");
        let q = parse_and_normalize("SELECT * FROM homes WHERE price > 400000", rel.schema())
            .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows, vec![6]);
        assert_eq!(e.shards_pruned, 2);
        // The scan path prunes identically.
        let unindexed = homes_sharded(false, 3);
        let (rows, e) = select_rows(&unindexed, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows, vec![6]);
        assert!(!e.used_index);
        assert_eq!(e.shards_pruned, 2);
    }

    #[test]
    fn conjunction_intersects_smallest_first() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond','Bellevue') \
             AND price BETWEEN 200000 AND 300000 AND bedroomcount = 3",
        );
        assert_eq!(rows, vec![0, 7]);
    }

    #[test]
    fn empty_result_set() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond') AND price > 1000000",
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_in_value_matches_nothing() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE neighborhood IN ('Atlantis')");
        assert!(rows.is_empty());
    }

    #[test]
    fn degenerate_range_matches_nothing() {
        // lo > hi: NumericRange::is_empty, cardinality 0 on the index
        // side, CompiledCondition::Nothing on the scan side.
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price BETWEEN 500000 AND 100000");
        assert!(rows.is_empty());
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price < 100 AND price > 200");
        assert!(rows.is_empty());
    }

    #[test]
    fn select_every_row() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price >= 0");
        assert_eq!(rows.len(), homes(false).len());
        let rows = assert_paths_agree("SELECT * FROM homes");
        assert_eq!(rows.len(), homes(false).len());
    }

    #[test]
    fn single_distinct_value_attribute() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE city IN ('Seattle') AND bedroomcount >= 4",
        );
        assert_eq!(rows, vec![1, 3, 6]);
    }

    #[test]
    fn numeric_in_set_via_sorted_index() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE bedroomcount IN (2, 5)");
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn range_boundaries_inclusive_and_exclusive() {
        assert_paths_agree("SELECT * FROM homes WHERE price <= 210000");
        assert_paths_agree("SELECT * FROM homes WHERE price < 210000");
        assert_paths_agree("SELECT * FROM homes WHERE price >= 411000");
        assert_paths_agree("SELECT * FROM homes WHERE price > 411000");
        assert_paths_agree("SELECT * FROM homes WHERE bedroomcount BETWEEN 3 AND 3");
    }

    #[test]
    fn index_path_honors_fault_points_and_deadline() {
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Issaquah')",
            rel.schema(),
        )
        .unwrap();
        let plan = qcat_fault::FaultPlan::parse("exec.fetch:error").unwrap();
        let err = qcat_fault::with_plan(&plan, || {
            select_rows(&rel, &q, AccessPath::Auto).unwrap_err()
        });
        assert_eq!(err, ExecError::Fault(qcat_fault::Fault { site: "exec.fetch" }));

        let budget =
            qcat_fault::Budget::UNLIMITED.with_deadline(std::time::Duration::ZERO);
        let gas = budget.start();
        let err = qcat_fault::with_budget(&gas, || {
            select_rows(&rel, &q, AccessPath::Auto).unwrap_err()
        });
        assert_eq!(err, ExecError::Budget(BudgetExceeded::Deadline));
    }

    #[test]
    fn morsel_scan_honors_budget_and_pool_faults() {
        let rel = homes_sharded(false, 3);
        let q = parse_and_normalize("SELECT * FROM homes WHERE price >= 0", rel.schema())
            .unwrap();
        // An expired deadline refuses at every thread width.
        let gas = qcat_fault::Budget::UNLIMITED
            .with_deadline(std::time::Duration::ZERO)
            .start();
        for threads in [1, 2, 8] {
            let err = qcat_fault::with_budget(&gas, || {
                select_rows_with_threads(&rel, &q, AccessPath::Auto, threads).unwrap_err()
            });
            assert_eq!(err, ExecError::Budget(BudgetExceeded::Deadline), "threads={threads}");
        }
        // A pool.task error fault inside a scan morsel surfaces as a
        // structured executor fault.
        let plan = qcat_fault::FaultPlan::parse("pool.task:error").unwrap();
        let err = qcat_fault::with_plan(&plan, || {
            select_rows_with_threads(&rel, &q, AccessPath::Auto, 2).unwrap_err()
        });
        assert_eq!(err, ExecError::Fault(qcat_fault::Fault { site: "pool.task" }));
    }

    #[test]
    fn rows_are_ascending_on_every_path() {
        for shard_rows in [0, 3] {
            let rel = homes_sharded(true, shard_rows);
            let q = parse_and_normalize(
                "SELECT * FROM homes WHERE neighborhood IN ('Redmond','Seattle','Bellevue')",
                rel.schema(),
            )
            .unwrap();
            for path in [AccessPath::Auto, AccessPath::ForceScan, AccessPath::ForceIndex] {
                let (rows, _) = select_rows(&rel, &q, path).unwrap();
                assert!(rows.windows(2).all(|w| w[0] < w[1]), "{path:?}");
            }
        }
    }
}
