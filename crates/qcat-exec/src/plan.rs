//! Access-path planning: scan vs. index, decided per conjunct.
//!
//! The executor's historical strategy — compile the predicate and
//! scan every row — costs `O(N)` per query regardless of
//! selectivity. When the relation carries an
//! [`IndexSet`](qcat_data::IndexSet), this planner answers each
//! conjunct from the matching index instead:
//!
//! - `IN` / `=` on a categorical attribute → union of the postings
//!   lists of the accepted dictionary codes;
//! - a numeric interval → a binary-searched slice of the sorted
//!   projection;
//! - a numeric `IN` → union of per-value equal-ranges.
//!
//! Costing uses **exact** cardinalities, read from the indexes for
//! free: postings lengths and slice widths. The plan is: sort the
//! index-answerable conjuncts by cardinality; if even the cheapest
//! selects more than [`SCAN_FALLBACK_NUM`]/[`SCAN_FALLBACK_DEN`] of
//! the relation, scan (the scan touches each row once; materializing
//! near-total row-id lists costs more than it saves). Otherwise start
//! from the smallest list and intersect larger lists smallest-first
//! (galloping kicks in for skewed sizes); a conjunct whose list would
//! dwarf the running candidate set ([`INTERSECT_RATIO`]×) is cheaper
//! to apply as a **residual** row-at-a-time filter over the candidate
//! list, exactly like any conjunct no index can answer.
//!
//! Every path yields ascending row ids, so index output is
//! bit-compatible with scan output; `tests` pin that equality on
//! every fixture.

use crate::executor::ExecError;
use qcat_data::{intersect_sorted, union_sorted, AttrId, IndexSet, Relation};
use qcat_fault::BudgetExceeded;
use qcat_sql::eval::CompiledPredicate;
use qcat_sql::normalize::{AttrCondition, NumericRange};
use qcat_sql::NormalizedQuery;

/// Which access path `execute_normalized_with` may take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPath {
    /// Cost-based choice: index when present and selective, else scan.
    #[default]
    Auto,
    /// Always scan, even when indexes exist (baseline / differential
    /// testing).
    ForceScan,
    /// Use every index-answerable conjunct regardless of selectivity
    /// (exercises the kernels; still falls back to scan when the
    /// relation has no indexes).
    ForceIndex,
}

/// Auto falls back to a scan when the cheapest index conjunct selects
/// more than `SCAN_FALLBACK_NUM / SCAN_FALLBACK_DEN` of the relation.
const SCAN_FALLBACK_NUM: usize = 1;
/// See [`SCAN_FALLBACK_NUM`].
const SCAN_FALLBACK_DEN: usize = 4;

/// A further index list is intersected eagerly only while its
/// cardinality is below this multiple of the current candidate size;
/// beyond that, probing the candidate rows directly (residual filter)
/// touches less memory.
const INTERSECT_RATIO: usize = 8;

/// How a query's rows were produced, for spans and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanExplain {
    /// True when any conjunct was answered from an index.
    pub used_index: bool,
    /// Conjuncts answered from indexes.
    pub index_conjuncts: usize,
    /// Conjuncts applied as a row-at-a-time residual filter.
    pub residual_conjuncts: usize,
    /// Total row ids fetched from index lists.
    pub rows_fetched: usize,
}

impl PlanExplain {
    fn scan(conjuncts: usize) -> PlanExplain {
        PlanExplain {
            used_index: false,
            index_conjuncts: 0,
            residual_conjuncts: conjuncts,
            rows_fetched: 0,
        }
    }
}

/// One index-answerable conjunct with its exact result cardinality.
struct IndexConjunct {
    attr: AttrId,
    est: usize,
    fetch: Fetch,
}

enum Fetch {
    /// Union of postings lists for these dictionary codes.
    Codes(Vec<u32>),
    /// Sorted-projection slice for this interval.
    Range(NumericRange),
    /// Union of per-value equal-ranges.
    Values(Vec<f64>),
}

/// Select the matching row ids of `query` against `relation` along
/// `path`. Rows come back ascending (table order) on every path.
pub fn select_rows(
    relation: &Relation,
    query: &NormalizedQuery,
    path: AccessPath,
) -> Result<(Vec<u32>, PlanExplain), ExecError> {
    if let Some(fault) = qcat_fault::point("exec.plan") {
        return Err(fault.into());
    }
    // Check once before any work: small relations may finish under
    // the scan's poll stride, but an already-expired deadline must
    // still refuse deterministically.
    if let Some(g) = qcat_fault::current_gas() {
        g.check()?;
    }
    let indexes = match path {
        AccessPath::ForceScan => None,
        AccessPath::Auto | AccessPath::ForceIndex => relation.indexes(),
    };
    let Some(indexes) = indexes else {
        return Ok((
            scan_rows(relation, query, None)?,
            PlanExplain::scan(query.conditions.len()),
        ));
    };

    let mut plan_span = qcat_obs::span!("exec.plan", conjuncts = query.conditions.len());
    let mut eligible: Vec<IndexConjunct> = Vec::with_capacity(query.conditions.len());
    let mut residual: Vec<AttrId> = Vec::new();
    for (&attr, cond) in &query.conditions {
        match classify(relation, indexes, attr, cond) {
            Some(c) => eligible.push(c),
            None => residual.push(attr),
        }
    }
    eligible.sort_by_key(|c| c.est);

    let n = relation.len();
    let selective = eligible.first().is_some_and(|c| {
        c.est == 0 || c.est.saturating_mul(SCAN_FALLBACK_DEN) <= n.saturating_mul(SCAN_FALLBACK_NUM)
    });
    let use_index = match path {
        AccessPath::ForceIndex => !eligible.is_empty(),
        _ => selective,
    };
    if qcat_obs::active() {
        plan_span.set("eligible", eligible.len());
        plan_span.set("path", if use_index { "index" } else { "scan" });
    }
    drop(plan_span);
    if !use_index {
        qcat_obs::counter("exec.plan.scan_fallback", 1);
        return Ok((
            scan_rows(relation, query, None)?,
            PlanExplain::scan(query.conditions.len()),
        ));
    }

    let mut span = qcat_obs::span!("exec.index.select", conjuncts = eligible.len());
    let mut explain = PlanExplain {
        used_index: true,
        index_conjuncts: 0,
        residual_conjuncts: residual.len(),
        rows_fetched: 0,
    };
    // An unsatisfiable conjunct (cardinality 0) decides the query.
    if eligible.first().is_some_and(|c| c.est == 0) {
        explain.index_conjuncts = 1;
        if qcat_obs::active() {
            span.set("rows_matched", 0usize);
        }
        return Ok((Vec::new(), explain));
    }

    let gas = qcat_fault::current_gas();
    let mut rows: Vec<u32> = Vec::new();
    for (i, c) in eligible.iter().enumerate() {
        // One checkpoint per conjunct: fetching and intersecting a
        // posting list is the unit of work between cancellation polls.
        if let Some(g) = &gas {
            g.check()?;
        }
        if let Some(fault) = qcat_fault::point("exec.fetch") {
            return Err(fault.into());
        }
        let eager = i == 0
            || path == AccessPath::ForceIndex
            || c.est <= rows.len().saturating_mul(INTERSECT_RATIO);
        if !eager {
            residual.push(c.attr);
            continue;
        }
        let list = fetch_rows(indexes, c);
        explain.rows_fetched += list.len();
        explain.index_conjuncts += 1;
        rows = if i == 0 {
            list
        } else {
            intersect_sorted(&rows, &list)
        };
        if rows.is_empty() {
            break;
        }
    }
    qcat_obs::counter("exec.index.used", 1);
    qcat_obs::counter("exec.index.rows_fetched", explain.rows_fetched as i64);

    explain.residual_conjuncts = residual.len();
    if !rows.is_empty() && !residual.is_empty() {
        rows = scan_rows(relation, query, Some((&residual, rows)))?;
    }
    if qcat_obs::active() {
        span.set("rows_matched", rows.len());
    }
    Ok((rows, explain))
}

/// Scan-side evaluation: compile (a subset of) the conditions and
/// filter row-at-a-time. `restrict` = `(attrs to keep, candidates)`;
/// `None` compiles everything and scans the whole relation.
fn scan_rows(
    relation: &Relation,
    query: &NormalizedQuery,
    restrict: Option<(&[AttrId], Vec<u32>)>,
) -> Result<Vec<u32>, ExecError> {
    if let Some(fault) = qcat_fault::point("exec.scan") {
        return Err(fault.into());
    }
    let (predicate, candidates) = match &restrict {
        None => (CompiledPredicate::compile(query, relation)?, None),
        Some((attrs, candidates)) => (
            CompiledPredicate::compile_where(query, relation, |a| attrs.contains(&a))?,
            Some(candidates.as_slice()),
        ),
    };
    match qcat_fault::current_gas() {
        None => Ok(predicate.filter(relation, candidates)),
        Some(gas) => {
            // filter_cancellable polls this closure every
            // CANCEL_STRIDE rows; a trip mid-scan discards the
            // partial result so callers never see truncated rows.
            let mut cancel = || !gas.checkpoint();
            predicate
                .filter_cancellable(relation, candidates, &mut cancel)
                .ok_or_else(|| {
                    ExecError::Budget(gas.exceeded().unwrap_or(BudgetExceeded::Cancelled))
                })
        }
    }
}

/// Can `cond` be answered by an index on `attr`? Returns the conjunct
/// with its exact cardinality; `None` routes it to the residual
/// filter (which also surfaces any type-drift error the scan path
/// would report).
fn classify(
    relation: &Relation,
    indexes: &IndexSet,
    attr: AttrId,
    cond: &AttrCondition,
) -> Option<IndexConjunct> {
    match cond {
        AttrCondition::InStr(values) => {
            let postings = indexes.postings(attr)?;
            let (dict, _) = relation.column(attr).categorical()?;
            let codes: Vec<u32> = values.iter().filter_map(|v| dict.lookup(v)).collect();
            let est = codes.iter().map(|&c| postings.count_for_code(c)).sum();
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Codes(codes),
            })
        }
        AttrCondition::Range(r) => {
            let sorted = indexes.sorted(attr)?;
            let est = if r.is_empty() {
                0
            } else {
                sorted.count_in(r.lo, r.lo_inclusive, r.hi, r.hi_inclusive)
            };
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Range(*r),
            })
        }
        AttrCondition::InNum(values) => {
            let sorted = indexes.sorted(attr)?;
            let est = values.iter().map(|&v| sorted.count_eq(v)).sum();
            Some(IndexConjunct {
                attr,
                est,
                fetch: Fetch::Values(values.clone()),
            })
        }
    }
}

/// Materialize the ascending row-id list of one index conjunct.
fn fetch_rows(indexes: &IndexSet, c: &IndexConjunct) -> Vec<u32> {
    match &c.fetch {
        Fetch::Codes(codes) => {
            let Some(postings) = indexes.postings(c.attr) else {
                return Vec::new();
            };
            // Postings of distinct codes are disjoint; union = merge.
            let lists: Vec<&[u32]> = codes.iter().map(|&cd| postings.rows_for_code(cd)).collect();
            union_sorted(&lists)
        }
        Fetch::Range(r) => {
            let Some(sorted) = indexes.sorted(c.attr) else {
                return Vec::new();
            };
            if r.is_empty() {
                Vec::new()
            } else {
                sorted.rows_in(r.lo, r.lo_inclusive, r.hi, r.hi_inclusive)
            }
        }
        Fetch::Values(values) => {
            let Some(sorted) = indexes.sorted(c.attr) else {
                return Vec::new();
            };
            let lists: Vec<Vec<u32>> = values.iter().map(|&v| sorted.rows_eq(v)).collect();
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            union_sorted(&refs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, RelationBuilder, Schema};
    use qcat_sql::parse_and_normalize;

    /// Small fixture with one attribute of every index shape plus a
    /// single-distinct-value attribute (`city` is always "Seattle").
    fn homes(indexed: bool) -> Relation {
        let schema = Schema::new(vec![
            Field::new("neighborhood", AttrType::Categorical),
            Field::new("price", AttrType::Float),
            Field::new("bedroomcount", AttrType::Int),
            Field::new("city", AttrType::Categorical),
        ])
        .unwrap();
        let rows: &[(&str, f64, i64)] = &[
            ("Redmond", 210_000.0, 3),
            ("Bellevue", 260_000.0, 4),
            ("Seattle", 305_000.0, 2),
            ("Redmond", 199_000.0, 5),
            ("Issaquah", 250_000.0, 3),
            ("Bellevue", 149_000.0, 1),
            ("Seattle", 411_000.0, 4),
            ("Redmond", 230_000.0, 3),
        ];
        let mut b = RelationBuilder::with_capacity(schema, rows.len());
        for (n, p, beds) in rows {
            b.push_row(&[(*n).into(), (*p).into(), (*beds).into(), "Seattle".into()])
                .unwrap();
        }
        if indexed {
            b = b.with_indexes();
        }
        b.finish().unwrap()
    }

    /// Every query must match the same rows on every path; `Auto` on
    /// an indexed relation must additionally agree with `Auto` on an
    /// unindexed one.
    fn assert_paths_agree(sql: &str) -> Vec<u32> {
        let plain = homes(false);
        let indexed = homes(true);
        let q = parse_and_normalize(sql, plain.schema()).unwrap();
        let (scan, se) = select_rows(&plain, &q, AccessPath::Auto).unwrap();
        assert!(!se.used_index, "unindexed relation must scan: {sql}");
        for path in [AccessPath::Auto, AccessPath::ForceScan, AccessPath::ForceIndex] {
            let (rows, _) = select_rows(&indexed, &q, path).unwrap();
            assert_eq!(rows, scan, "path {path:?} diverged on {sql}");
        }
        let (_, fe) = select_rows(&indexed, &q, AccessPath::ForceIndex).unwrap();
        assert!(
            fe.used_index || q.conditions.is_empty(),
            "ForceIndex should engage indexes when conjuncts exist: {sql}"
        );
        scan
    }

    #[test]
    fn selective_in_list_uses_index() {
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Issaquah')",
            rel.schema(),
        )
        .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows, vec![4]);
        assert!(e.used_index);
        assert_eq!(e.index_conjuncts, 1);
        assert_eq!(e.residual_conjuncts, 0);
    }

    #[test]
    fn unselective_conjunct_falls_back_to_scan() {
        // `city = 'Seattle'` matches every row; Auto must refuse the
        // index, ForceIndex must still give identical rows.
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE city IN ('Seattle')",
            rel.schema(),
        )
        .unwrap();
        let (rows, e) = select_rows(&rel, &q, AccessPath::Auto).unwrap();
        assert_eq!(rows.len(), rel.len());
        assert!(!e.used_index);
        let (rows, e) = select_rows(&rel, &q, AccessPath::ForceIndex).unwrap();
        assert_eq!(rows.len(), rel.len());
        assert!(e.used_index);
    }

    #[test]
    fn conjunction_intersects_smallest_first() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond','Bellevue') \
             AND price BETWEEN 200000 AND 300000 AND bedroomcount = 3",
        );
        assert_eq!(rows, vec![0, 7]);
    }

    #[test]
    fn empty_result_set() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond') AND price > 1000000",
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn unknown_in_value_matches_nothing() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE neighborhood IN ('Atlantis')");
        assert!(rows.is_empty());
    }

    #[test]
    fn degenerate_range_matches_nothing() {
        // lo > hi: NumericRange::is_empty, cardinality 0 on the index
        // side, CompiledCondition::Nothing on the scan side.
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price BETWEEN 500000 AND 100000");
        assert!(rows.is_empty());
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price < 100 AND price > 200");
        assert!(rows.is_empty());
    }

    #[test]
    fn select_every_row() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE price >= 0");
        assert_eq!(rows.len(), homes(false).len());
        let rows = assert_paths_agree("SELECT * FROM homes");
        assert_eq!(rows.len(), homes(false).len());
    }

    #[test]
    fn single_distinct_value_attribute() {
        let rows = assert_paths_agree(
            "SELECT * FROM homes WHERE city IN ('Seattle') AND bedroomcount >= 4",
        );
        assert_eq!(rows, vec![1, 3, 6]);
    }

    #[test]
    fn numeric_in_set_via_sorted_index() {
        let rows = assert_paths_agree("SELECT * FROM homes WHERE bedroomcount IN (2, 5)");
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn range_boundaries_inclusive_and_exclusive() {
        assert_paths_agree("SELECT * FROM homes WHERE price <= 210000");
        assert_paths_agree("SELECT * FROM homes WHERE price < 210000");
        assert_paths_agree("SELECT * FROM homes WHERE price >= 411000");
        assert_paths_agree("SELECT * FROM homes WHERE price > 411000");
        assert_paths_agree("SELECT * FROM homes WHERE bedroomcount BETWEEN 3 AND 3");
    }

    #[test]
    fn index_path_honors_fault_points_and_deadline() {
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Issaquah')",
            rel.schema(),
        )
        .unwrap();
        let plan = qcat_fault::FaultPlan::parse("exec.fetch:error").unwrap();
        let err = qcat_fault::with_plan(&plan, || {
            select_rows(&rel, &q, AccessPath::Auto).unwrap_err()
        });
        assert_eq!(err, ExecError::Fault(qcat_fault::Fault { site: "exec.fetch" }));

        let budget =
            qcat_fault::Budget::UNLIMITED.with_deadline(std::time::Duration::ZERO);
        let gas = budget.start();
        let err = qcat_fault::with_budget(&gas, || {
            select_rows(&rel, &q, AccessPath::Auto).unwrap_err()
        });
        assert_eq!(err, ExecError::Budget(BudgetExceeded::Deadline));
    }

    #[test]
    fn rows_are_ascending_on_every_path() {
        let rel = homes(true);
        let q = parse_and_normalize(
            "SELECT * FROM homes WHERE neighborhood IN ('Redmond','Seattle','Bellevue')",
            rel.schema(),
        )
        .unwrap();
        for path in [AccessPath::Auto, AccessPath::ForceScan, AccessPath::ForceIndex] {
            let (rows, _) = select_rows(&rel, &q, path).unwrap();
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "{path:?}");
        }
    }
}
