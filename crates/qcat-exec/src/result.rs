//! Result sets: a relation handle plus matching row ids.

use qcat_data::{AttrId, DataError, Relation, Schema, Value};

/// The result of a selection query.
///
/// Holds the *base* relation (cheap `Arc` clone) and the ids of the
/// rows that matched, in table order. The categorizer's root node is
/// exactly `rows()`.
#[derive(Debug, Clone)]
pub struct ResultSet {
    relation: Relation,
    rows: Vec<u32>,
    projection: Option<Vec<AttrId>>,
}

impl ResultSet {
    /// Build a result set. Row ids must be valid for `relation`.
    pub fn new(relation: Relation, rows: Vec<u32>, projection: Option<Vec<AttrId>>) -> Self {
        debug_assert!(rows.iter().all(|&r| (r as usize) < relation.len()));
        ResultSet {
            relation,
            rows,
            projection,
        }
    }

    /// A result set covering the whole relation.
    pub fn whole(relation: Relation) -> Self {
        let rows = relation.all_row_ids();
        ResultSet {
            relation,
            rows,
            projection: None,
        }
    }

    /// The base relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Schema of the base relation.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Matching row ids in table order.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of matching rows — the paper's `|Result(Q)|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The projected attributes (`None` = all).
    pub fn projection(&self) -> Option<&[AttrId]> {
        self.projection.as_deref()
    }

    /// Attributes visible in this result, honoring the projection.
    pub fn visible_attrs(&self) -> Vec<AttrId> {
        match &self.projection {
            Some(p) => p.clone(),
            None => self.relation.schema().attr_ids().collect(),
        }
    }

    /// The `i`th matching row's visible values.
    pub fn row_values(&self, i: usize) -> Result<Vec<Value>, DataError> {
        let row = *self.rows.get(i).ok_or(DataError::RowOutOfRange {
            row: i,
            len: self.rows.len(),
        })? as usize;
        self.visible_attrs()
            .iter()
            .map(|&a| self.relation.value(row, a))
            .collect()
    }

    /// Consume into the row-id vector.
    pub fn into_rows(self) -> Vec<u32> {
        self.rows
    }

    /// Estimated owned heap footprint in bytes: the row-id vector plus
    /// the projection list. The relation handle is shared (`Arc`) and
    /// deliberately not counted — a cached result set must account for
    /// what *it* pins, not the table everyone pins. Used by the
    /// serving layer's byte-budgeted caches.
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<u32>()
            + self
                .projection
                .as_ref()
                .map_or(0, |p| p.capacity() * std::mem::size_of::<AttrId>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcat_data::{AttrType, Field, RelationBuilder};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Field::new("n", AttrType::Categorical),
            Field::new("p", AttrType::Float),
        ])
        .unwrap();
        let mut b = RelationBuilder::new(schema);
        for (n, p) in [("a", 1.0), ("b", 2.0), ("c", 3.0)] {
            b.push_row(&[n.into(), p.into()]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn whole_covers_everything() {
        let rs = ResultSet::whole(rel());
        assert_eq!(rs.len(), 3);
        assert!(!rs.is_empty());
        assert_eq!(rs.rows(), &[0, 1, 2]);
        assert_eq!(rs.visible_attrs(), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn projection_limits_visible_values() {
        let rs = ResultSet::new(rel(), vec![1, 2], Some(vec![AttrId(1)]));
        assert_eq!(rs.row_values(0).unwrap(), vec![Value::Float(2.0)]);
        assert_eq!(rs.row_values(1).unwrap(), vec![Value::Float(3.0)]);
        assert!(rs.row_values(2).is_err());
        assert_eq!(rs.projection(), Some(&[AttrId(1)][..]));
    }

    #[test]
    fn into_rows_consumes() {
        let rs = ResultSet::new(rel(), vec![2, 0], None);
        assert_eq!(rs.into_rows(), vec![2, 0]);
    }

    #[test]
    fn heap_bytes_counts_rows_and_projection() {
        let rs = ResultSet::new(rel(), vec![0, 1, 2], None);
        assert!(rs.heap_bytes() >= 3 * 4);
        let projected = ResultSet::new(rel(), vec![0, 1, 2], Some(vec![AttrId(1)]));
        assert!(projected.heap_bytes() > rs.heap_bytes() - 1);
        let empty = ResultSet::new(rel(), Vec::new(), None);
        assert_eq!(empty.heap_bytes(), 0);
    }
}
