#![warn(missing_docs)]

//! Query execution for the qcat workspace.
//!
//! The paper categorizes *the result set of a query Q*. This crate
//! turns a SQL string (or a pre-normalized query) into a
//! [`ResultSet`]: the base relation plus the matching row ids, which
//! is precisely the representation the categorizer consumes as the
//! root `tset`.

pub mod executor;
pub mod plan;
pub mod result;

pub use executor::{
    execute, execute_normalized, execute_normalized_with, execute_normalized_with_threads,
    execute_residual, execute_with, ExecError, Executor,
};
pub use plan::{AccessPath, PlanExplain};
pub use result::ResultSet;
