#![warn(missing_docs)]

//! Query execution for the qcat workspace.
//!
//! The paper categorizes *the result set of a query Q*. This crate
//! turns a SQL string (or a pre-normalized query) into a
//! [`ResultSet`]: the base relation plus the matching row ids, which
//! is precisely the representation the categorizer consumes as the
//! root `tset`.

pub mod executor;
pub mod result;

pub use executor::{execute, execute_normalized, ExecError, Executor};
pub use result::ResultSet;
